"""Quickstart: discover the motif of a trajectory in a few lines.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import Trajectory, discover_motif

# A random walk that revisits its own path (we plant the revisit so the
# motif is meaningful).
rng = np.random.default_rng(7)
steps = rng.normal(size=(400, 2))
points = steps.cumsum(axis=0)
points[300:340] = points[100:140] + rng.normal(0, 0.02, size=(40, 2))
trajectory = Trajectory(points)

# The motif: the pair of non-overlapping subtrajectories (each spanning
# more than `min_length` steps) with the smallest discrete Frechet
# distance.  `gtm` is the fastest exact algorithm from the paper.
result = discover_motif(trajectory, min_length=20, algorithm="gtm")

i, ie, j, je = result.indices
print(f"motif:       S[{i}..{ie}]  ~  S[{j}..{je}]")
print(f"DFD:         {result.distance:.4f}")
print("planted at:  S[100..139] ~ S[300..339]")
print()
print(result.stats.summary())

# The exact answer is the same for every algorithm; only the work done
# differs.  (BruteDP is orders of magnitude slower -- try it on 400
# points and watch the subset counter.)
for algorithm in ("btm", "gtm_star"):
    check = discover_motif(trajectory, min_length=20, algorithm=algorithm)
    assert abs(check.distance - result.distance) < 1e-9
    print(f"{algorithm:>8}: same distance, "
          f"{check.stats.subsets_expanded} subsets expanded, "
          f"{check.stats.time_total:.3f}s")
