"""Cross-trajectory motifs and similarity joins on a truck fleet.

Two trucks serve overlapping construction sites from nearby depots.
The cross-trajectory variant of the motif problem finds the stretch of
road both trucks drove most similarly; the DFD similarity join then
groups a whole fleet's routes.

Run with::

    python examples/truck_delivery.py
"""

import time

from repro import discover_motif
from repro.datasets import get_dataset
from repro.extensions import similarity_join
from repro.trajectory import sliding_windows

N = 700
XI = 14

print(f"simulating two trucks, {N} samples each (~30s period)")
truck_a, truck_b = get_dataset("truck", seed=3).generate_pair(N)

start = time.perf_counter()
result = discover_motif(truck_a, truck_b, min_length=XI, algorithm="gtm")
elapsed = time.perf_counter() - start

i, ie, j, je = result.indices
print(f"shared route segment found in {elapsed:.2f}s:")
print(f"  truck A samples {i}..{ie} ~ truck B samples {j}..{je}")
print(f"  discrete Frechet distance: {result.distance:.1f} m")
print(f"  pruning: {result.stats.pruning_ratio:.1%} of "
      f"{result.stats.subsets_total} candidate subsets")
print()

# Fleet-level analysis: a self-join of truck A's route segments.  The
# truck repeats depot-site loops, so distinct segments retrace the same
# roads and match at a tight threshold.
segments = [w for w in sliding_windows(truck_a, length=40, step=20)]
theta = 800.0  # metres

start = time.perf_counter()
matches, stats = similarity_join(segments, segments, theta=theta,
                                 metric="haversine")
elapsed = time.perf_counter() - start
repeats = [(a, b) for a, b in matches if a < b]

print(f"self-join of {len(segments)} route segments of truck A "
      f"at theta={theta:.0f} m ({elapsed:.2f}s):")
print(f"  repeated-route pairs: {len(repeats)}")
print(f"  filter cascade: {stats.pruned_endpoint} endpoint, "
      f"{stats.pruned_bbox} bbox, {stats.pruned_hausdorff} hausdorff "
      f"pruned; {stats.decisions} exact decisions")
for a, b in repeats[:5]:
    print(f"    A[{a * 20}..{a * 20 + 39}] ~ A[{b * 20}..{b * 20 + 39}]")
if len(repeats) > 5:
    print(f"    ... and {len(repeats) - 5} more")
