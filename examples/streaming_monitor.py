"""Exact motif monitoring over a live sliding window.

A collar/GPS stream is monitored for recurring movement: the
:class:`~repro.extensions.StreamingMotif` keeps the last ``window``
samples and maintains the exact motif after every sample, reusing the
previous answer as the search seed so steady-state updates expand
almost nothing.

Run with::

    python examples/streaming_monitor.py
"""

from repro.datasets import make_trajectory
from repro.extensions import StreamingMotif

WINDOW = 160
XI = 10

trajectory = make_trajectory("baboon", 420, seed=5)
points = trajectory.points  # lat/lon; monitor in local metres instead
local = (points - points[0]) * 111_320.0

stream = StreamingMotif(window=WINDOW, min_length=XI)
print(f"streaming {local.shape[0]} samples through a {WINDOW}-sample window")
print(f"{'t':>5}  {'motif':>24}  {'DFD (m)':>9}  {'expanded':>9}")

last_reported = None
for t, point in enumerate(local):
    result = stream.append(point)
    if result is None:
        continue
    key = (result.indices, round(result.distance, 3))
    if key == last_reported:
        continue  # only print when the motif changes
    last_reported = key
    i, ie, j, je = result.indices
    print(f"{t:>5}  W[{i:>3}..{ie:<3}] ~ W[{j:>3}..{je:<3}]  "
          f"{result.distance:9.2f}  {stream.subsets_expanded_total:>9}")

print()
print(f"total subset expansions across the whole stream: "
      f"{stream.subsets_expanded_total}")
print("(a fresh search per step would expand orders of magnitude more)")
