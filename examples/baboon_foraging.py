"""Top-k motifs and subtrajectory clustering on 1 Hz collar data.

Wild-baboon collars sample at exactly 1 Hz; foraging animals retrace
paths between food patches and the sleep tree.  Beyond the single best
motif, the top-k generalisation surfaces several recurring movements,
and DFD clustering groups recurring window shapes.

Run with::

    python examples/baboon_foraging.py
"""

import time

from repro.datasets import make_trajectory
from repro.extensions import cluster_subtrajectories, discover_top_k_motifs

N = 900
XI = 18

print(f"simulating a baboon collar: n={N} samples at 1 Hz")
trajectory = make_trajectory("baboon", N, seed=11)

start = time.perf_counter()
top = discover_top_k_motifs(trajectory, min_length=XI, k=5)
elapsed = time.perf_counter() - start

print(f"top-{len(top)} motifs ({elapsed:.2f}s):")
for motif in top:
    i, ie, j, je = motif.indices
    print(f"  #{motif.rank}: S[{i}..{ie}] ~ S[{j}..{je}]  "
          f"DFD = {motif.distance:.1f} m")
print()

# Cluster one-minute windows by DFD connectivity.
start = time.perf_counter()
clusters = cluster_subtrajectories(
    trajectory, window_length=60, theta=25.0, stride=30,
    min_cluster_size=2, metric="haversine",
)
elapsed = time.perf_counter() - start

print(f"DFD clustering of 60s windows at theta=25 m ({elapsed:.2f}s):")
if not clusters:
    print("  no recurring window shapes at this threshold")
for k, cluster in enumerate(clusters[:4]):
    starts = ", ".join(f"t={s}s" for s in cluster.members[:6])
    print(f"  cluster {k}: {len(cluster)} windows ({starts}"
          f"{', ...' if len(cluster) > 6 else ''})")
