"""Why the discrete Frechet distance?  (Paper Table 1 / Figures 2-4.)

Demonstrates, on constructed data, the three arguments the paper makes
for DFD over the alternatives:

1. lock-step ED ignores the movement pattern (Figure 2);
2. DTW is fooled by non-uniform sampling (Figure 3);
3. symbolic encodings ignore geography entirely (Figure 4).

Run with::

    python examples/measure_comparison.py
"""

import numpy as np

from repro.bench.experiments import (
    fig02_ed_vs_dfd,
    fig03_dtw_vs_dfd,
    fig04_symbolic,
    table1_measures,
)
from repro.distances import continuous_frechet, discrete_frechet

for experiment in (table1_measures, fig02_ed_vs_dfd, fig03_dtw_vs_dfd,
                   fig04_symbolic):
    print(experiment(scale="smoke"))
    print()

# Bonus: discrete vs continuous Frechet.  The discrete variant is what
# the paper uses on sampled trajectories; the continuous one ignores
# sampling density entirely (but needs polyline geometry).
sparse = np.column_stack([np.linspace(0, 100, 4), np.zeros(4)])
dense = np.column_stack([np.linspace(0, 100, 80), np.zeros(80)])
print("discrete vs continuous Frechet on the same line, resampled:")
print(f"  DFD(sparse, dense) = {discrete_frechet(sparse, dense):.2f}  "
      "(forced vertex matching)")
print(f"  F(sparse, dense)   = {continuous_frechet(sparse, dense):.4f}  "
      "(reparameterisation-invariant)")
