"""The paper's Figure 1 scenario: find a commuter's repeated route.

A GeoLife-like pedestrian log (repeated daily anchor-to-anchor routes,
mixed sampling rates, dropped samples, GPS jitter) is searched for its
motif: the pair of time-disjoint subtrajectories with the smallest
discrete Frechet distance -- i.e. the same walk done twice.

Run with::

    python examples/geolife_commute.py
"""

import time

from repro import discover_motif
from repro.datasets import make_trajectory

N = 1200
XI = 24  # the paper's xi, scaled with n (2%)

print(f"simulating a GeoLife-like pedestrian log: n={N} samples")
trajectory = make_trajectory("geolife", N, seed=42)
span_h = trajectory.duration / 3600.0
print(f"  covers {span_h:.1f} hours; sampling periods vary "
      f"{min(trajectory.timestamps[1:] - trajectory.timestamps[:-1]):.0f}s"
      f"-{max(trajectory.timestamps[1:] - trajectory.timestamps[:-1]):.0f}s")
print()

start = time.perf_counter()
result = discover_motif(trajectory, min_length=XI, algorithm="gtm")
elapsed = time.perf_counter() - start

i, ie, j, je = result.indices
t0, t1 = result.first.time_interval
u0, u1 = result.second.time_interval
print(f"motif found in {elapsed:.2f}s (exact, GTM):")
print(f"  first  visit: samples {i:>4}..{ie:<4} "
      f"t = {t0/60:7.1f}..{t1/60:7.1f} min")
print(f"  second visit: samples {j:>4}..{je:<4} "
      f"t = {u0/60:7.1f}..{u1/60:7.1f} min")
print(f"  discrete Frechet distance: {result.distance:.1f} m")
print()
print("search statistics:")
stats = result.stats
print(f"  candidate subsets: {stats.subsets_total}")
print(f"  pruned without DFD: {stats.subsets_pruned} "
      f"({stats.pruning_ratio:.1%})")
print(f"  exact DFD expansions: {stats.subsets_expanded}")
print(f"  group pairs pruned: "
      f"{stats.group_pairs_pruned_pattern + stats.group_pairs_pruned_glb}")

# The same query through the space-efficient GTM*: no precomputed
# ground matrix, bounded row cache, one grouping level.
start = time.perf_counter()
star = discover_motif(trajectory, min_length=XI, algorithm="gtm_star", tau=8)
print()
print(f"GTM* agrees: distance {star.distance:.1f} m "
      f"in {time.perf_counter() - start:.2f}s, "
      f"peak space {star.stats.space_mb():.1f} MB "
      f"(vs {stats.space_mb():.1f} MB for GTM)")
assert abs(star.distance - result.distance) < 1e-6
