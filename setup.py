"""Setup shim.

Metadata lives in ``setup.cfg``.  A ``setup.py`` is kept so that
``pip install -e .`` works in offline environments without the
``wheel`` package (pip falls back to the legacy develop install).
"""

from setuptools import setup

setup()
