"""Setup shim.

Metadata lives in ``setup.cfg`` (declarative setuptools config; the
packages are found under ``src/``).  A ``setup.py`` is kept so that
``python setup.py develop`` works in offline environments without the
``wheel`` package (``pip install -e .`` needs ``wheel`` for its PEP 660
editable build; both paths read the same setup.cfg metadata).
"""

from setuptools import setup

setup()
