"""Randomized serial/parallel parity: the engine must be byte-identical.

Property suite locking down the engine's core contract across all four
public APIs -- ``discover``, ``discover_many``, ``top_k`` and ``join``:
whatever the worker count or executor, the answer equals the serial
algorithm's, *including under distance ties*.  Tie pressure comes from
integer-grid trajectories (many equal ground distances), and coverage
rotates through algorithms, metrics (``euclidean`` / ``chebyshev``) and
self- vs cross-space queries.

Determinism: every case derives from ``REPRO_TEST_SEED`` (default 0).
CI runs the suite under two different seed values so nondeterminism in
the parallel paths surfaces there rather than in serving.  The bulk of
the sweep uses the inline executor (same partition/merge machinery,
fully deterministic); a smaller sweep repeats each API against a real
fork process pool.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import discover_motif
from repro.engine import MotifEngine
from repro.extensions import discover_top_k_motifs
from repro.extensions.clustering import cluster_subtrajectories
from repro.extensions.join import join_top_k, similarity_join
from repro.trajectory import Trajectory

SEED_BASE = int(os.environ.get("REPRO_TEST_SEED", "0"))
N_SEEDS = 20
SEEDS = [SEED_BASE * 100_003 + s for s in range(N_SEEDS)]
WORKER_COUNTS = (1, 2, 4)
ALGORITHMS = ("btm", "gtm", "gtm_star", "brute")
METRICS = ("euclidean", "chebyshev")


def make_trajectory(rng: np.random.Generator, n: int, tie_heavy: bool) -> Trajectory:
    """A float random walk, or a tie-heavy small-integer-grid walk."""
    if tie_heavy:
        pts = rng.integers(0, 6, size=(n, 2)).astype(np.float64)
    else:
        pts = rng.normal(size=(n, 2)).cumsum(axis=0)
    return Trajectory(pts)


def make_case(seed: int):
    """One randomized discover query: (traj_a, traj_b, xi, algo, metric)."""
    rng = np.random.default_rng(seed)
    tie_heavy = seed % 2 == 0
    cross = seed % 3 == 0
    n = int(rng.integers(30, 44))
    traj_a = make_trajectory(rng, n, tie_heavy)
    traj_b = (
        make_trajectory(rng, int(rng.integers(30, 44)), tie_heavy)
        if cross
        else None
    )
    xi = int(rng.integers(2, 5))
    algo = ALGORITHMS[seed % len(ALGORITHMS)]
    metric = METRICS[seed % len(METRICS)]
    return traj_a, traj_b, xi, algo, metric


def make_collections(seed: int):
    """One randomized join case: (left, right, theta, metric)."""
    rng = np.random.default_rng(seed + 7)
    tie_heavy = seed % 2 == 1
    n_left = 1 if seed % 5 == 0 else int(rng.integers(2, 6))
    n_right = int(rng.integers(2, 7))
    size = int(rng.integers(8, 16))
    left = [make_trajectory(rng, size, tie_heavy) for _ in range(n_left)]
    right = [make_trajectory(rng, size, tie_heavy) for _ in range(n_right)]
    theta = float(rng.uniform(0.5, 6.0))
    return left, right, theta, METRICS[seed % len(METRICS)]


@pytest.fixture(scope="module")
def inline_engine():
    # No result cache: every call must actually recompute, so the test
    # compares independent executions rather than one memoised answer.
    return MotifEngine(executor="inline", result_cache_size=0)


@pytest.fixture(scope="module")
def pool_engine():
    with MotifEngine(workers=2, result_cache_size=0) as eng:
        yield eng


def assert_motif_equal(got, ref):
    assert got.distance == ref.distance
    assert got.indices == ref.indices


# ----------------------------------------------------------------------
# Inline sweep: every API, every worker count, 20+ seeds
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_discover_parity(inline_engine, seed):
    traj_a, traj_b, xi, algo, metric = make_case(seed)
    ref = discover_motif(traj_a, traj_b, min_length=xi, algorithm=algo,
                         metric=metric)
    for workers in WORKER_COUNTS:
        got = inline_engine.discover(
            traj_a, traj_b, min_length=xi, algorithm=algo, metric=metric,
            workers=workers, cacheable=False,
        )
        assert_motif_equal(got, ref)


@pytest.mark.parametrize("seed", SEEDS)
def test_discover_many_parity(inline_engine, seed):
    cases = [make_case(seed), make_case(seed + 1)]
    _, _, xi, algo, metric = cases[0]
    items = [(c[0], c[1]) if c[1] is not None else c[0] for c in cases]
    refs = [
        discover_motif(c[0], c[1], min_length=xi, algorithm=algo, metric=metric)
        for c in cases
    ]
    for workers in WORKER_COUNTS:
        batch = inline_engine.discover_many(
            items, min_length=xi, algorithm=algo, metric=metric,
            workers=workers, dedupe=False,
        )
        for got, ref in zip(batch, refs):
            assert_motif_equal(got, ref)


@pytest.mark.parametrize("seed", SEEDS)
def test_top_k_parity(inline_engine, seed):
    traj_a, traj_b, xi, _algo, metric = make_case(seed)
    k = 1 + seed % 5
    ref = discover_top_k_motifs(traj_a, traj_b, min_length=xi, k=k,
                                metric=metric)
    for workers in WORKER_COUNTS:
        got = inline_engine.top_k(
            traj_a, traj_b, min_length=xi, k=k, metric=metric, workers=workers
        )
        assert [r.indices for r in got] == [r.indices for r in ref]
        assert [r.distance for r in got] == [r.distance for r in ref]
        assert [r.rank for r in got] == [r.rank for r in ref]


@pytest.mark.parametrize("seed", SEEDS)
def test_join_parity(inline_engine, seed):
    left, right, theta, metric = make_collections(seed)
    ref_matches, ref_stats = similarity_join(left, right, theta, metric)
    for workers in WORKER_COUNTS:
        got_matches, got_stats = inline_engine.join(
            left, right, theta, metric, workers=workers
        )
        assert got_matches == ref_matches
        assert got_stats.pairs_total == ref_stats.pairs_total
        assert got_stats.pruned_endpoint == ref_stats.pruned_endpoint
        assert got_stats.pruned_bbox == ref_stats.pruned_bbox
        assert got_stats.pruned_hausdorff == ref_stats.pruned_hausdorff
        assert got_stats.decisions == ref_stats.decisions
        assert got_stats.matches == ref_stats.matches


# ----------------------------------------------------------------------
# Indexed corpus paths: admissible pruning must not change any answer
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_indexed_join_parity(inline_engine, seed):
    """Indexed join == unindexed serial join, for every worker count.

    The matches must be identical (the index only removes provably
    non-matching pairs) and the indexed statistics must be
    workers-independent (identical to the serial indexed reference).
    """
    left, right, theta, metric = make_collections(seed)
    ref_matches, _ = similarity_join(left, right, theta, metric)
    idx_matches, idx_stats = similarity_join(left, right, theta, metric,
                                             index=True)
    assert idx_matches == ref_matches
    for workers in WORKER_COUNTS:
        got_matches, got_stats = inline_engine.join(
            left, right, theta, metric, workers=workers, index=True
        )
        assert got_matches == ref_matches
        assert got_stats.pairs_total == idx_stats.pairs_total
        assert got_stats.pruned_index == idx_stats.pruned_index
        assert got_stats.pruned_endpoint == idx_stats.pruned_endpoint
        assert got_stats.pruned_bbox == idx_stats.pruned_bbox
        assert got_stats.pruned_hausdorff == idx_stats.pruned_hausdorff
        assert got_stats.decisions == idx_stats.decisions
        assert got_stats.matches == idx_stats.matches


@pytest.mark.parametrize("seed", SEEDS)
def test_join_top_k_parity(inline_engine, seed):
    """Indexed/sharded top-k closest pairs == the serial reference."""
    left, right, _theta, metric = make_collections(seed)
    k = 1 + seed % 6
    ref = join_top_k(left, right, k, metric)
    for workers in WORKER_COUNTS:
        for use_index in (False, True):
            got = inline_engine.join_top_k(
                left, right, k, metric, workers=workers, index=use_index
            )
            assert got == ref, (workers, use_index)


@pytest.mark.parametrize("seed", SEEDS[:10])
def test_cluster_parity(inline_engine, seed):
    """Engine-tiled (and indexed) clustering == the serial extension."""
    rng = np.random.default_rng(seed + 13)
    tie_heavy = seed % 2 == 0
    traj = make_trajectory(rng, int(rng.integers(40, 70)), tie_heavy)
    window = int(rng.integers(5, 10))
    stride = int(rng.integers(1, 4))
    theta = float(rng.uniform(0.5, 4.0))
    ref = cluster_subtrajectories(
        traj, window_length=window, theta=theta, stride=stride
    )
    for workers in WORKER_COUNTS:
        for use_index in (False, True):
            got = inline_engine.cluster(
                traj, window_length=window, theta=theta, stride=stride,
                workers=workers, index=use_index,
            )
            assert got == ref, (workers, use_index)


# ----------------------------------------------------------------------
# Process-pool sweep: the same contract against real fork workers
# ----------------------------------------------------------------------
POOL_SEEDS = SEEDS[:4]


@pytest.mark.parametrize("seed", POOL_SEEDS)
def test_pool_discover_parity(pool_engine, seed):
    traj_a, traj_b, xi, algo, metric = make_case(seed)
    ref = discover_motif(traj_a, traj_b, min_length=xi, algorithm=algo,
                         metric=metric)
    got = pool_engine.discover(
        traj_a, traj_b, min_length=xi, algorithm=algo, metric=metric,
        cacheable=False,
    )
    assert_motif_equal(got, ref)


@pytest.mark.parametrize("seed", POOL_SEEDS)
def test_pool_discover_many_parity(pool_engine, seed):
    cases = [make_case(seed), make_case(seed + 2), make_case(seed + 3)]
    _, _, xi, algo, metric = cases[0]
    items = [(c[0], c[1]) if c[1] is not None else c[0] for c in cases]
    refs = [
        discover_motif(c[0], c[1], min_length=xi, algorithm=algo, metric=metric)
        for c in cases
    ]
    batch = pool_engine.discover_many(
        items, min_length=xi, algorithm=algo, metric=metric, dedupe=False
    )
    for got, ref in zip(batch, refs):
        assert_motif_equal(got, ref)


@pytest.mark.parametrize("seed", POOL_SEEDS)
def test_pool_top_k_parity(pool_engine, seed):
    traj_a, traj_b, xi, _algo, metric = make_case(seed)
    k = 1 + seed % 5
    ref = discover_top_k_motifs(traj_a, traj_b, min_length=xi, k=k,
                                metric=metric)
    got = pool_engine.top_k(traj_a, traj_b, min_length=xi, k=k, metric=metric)
    assert [r.indices for r in got] == [r.indices for r in ref]
    assert [r.distance for r in got] == [r.distance for r in ref]


@pytest.mark.parametrize("seed", POOL_SEEDS)
def test_pool_join_parity(pool_engine, seed):
    left, right, theta, metric = make_collections(seed)
    ref_matches, ref_stats = similarity_join(left, right, theta, metric)
    got_matches, got_stats = pool_engine.join(left, right, theta, metric)
    assert got_matches == ref_matches
    assert got_stats.matches == ref_stats.matches
    assert got_stats.pairs_total == ref_stats.pairs_total


@pytest.mark.parametrize("seed", POOL_SEEDS)
def test_pool_indexed_join_parity(pool_engine, seed):
    left, right, theta, metric = make_collections(seed)
    ref_matches, _ = similarity_join(left, right, theta, metric)
    got_matches, got_stats = pool_engine.join(
        left, right, theta, metric, index=True
    )
    assert got_matches == ref_matches
    assert got_stats.pairs_total == len(left) * len(right)


@pytest.mark.parametrize("seed", POOL_SEEDS)
def test_pool_join_top_k_parity(pool_engine, seed):
    left, right, _theta, metric = make_collections(seed)
    k = 1 + seed % 6
    ref = join_top_k(left, right, k, metric)
    assert pool_engine.join_top_k(left, right, k, metric) == ref
    assert pool_engine.join_top_k(left, right, k, metric, index=True) == ref


@pytest.mark.parametrize("seed", POOL_SEEDS[:2])
def test_pool_cluster_parity(pool_engine, seed):
    rng = np.random.default_rng(seed + 13)
    traj = make_trajectory(rng, 60, seed % 2 == 0)
    ref = cluster_subtrajectories(traj, window_length=8, theta=2.5, stride=2)
    got = pool_engine.cluster(
        traj, window_length=8, theta=2.5, stride=2, index=True
    )
    assert got == ref
