"""Tests for the benchmark harness and the experiment shape claims."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench import (
    SCALES,
    Table,
    default_xi,
    pair_for,
    run_motif,
    trajectory_for,
)
from repro.bench.experiments import (
    EXPERIMENTS,
    fig03_dtw_vs_dfd,
    fig04_symbolic,
    sampling_testbed,
    table1_measures,
)


class TestTable:
    def test_add_and_render(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2.5)
        t.add_row("x", None)
        text = t.render()
        assert "demo" in text and "2.5" in text and "-" in text

    def test_row_length_validation(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_column_accessor(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2)
        t.add_row(3, 4)
        assert t.column("b") == [2, 4]

    def test_json_round_trip(self, tmp_path):
        t = Table("demo", ["a"], notes=["n1"])
        t.add_row(1.5)
        path = tmp_path / "out" / "t.json"
        t.save_json(path)
        doc = json.loads(path.read_text())
        assert doc["title"] == "demo"
        assert doc["rows"] == [[1.5]]
        assert doc["notes"] == ["n1"]

    def test_formatting_special_values(self):
        t = Table("demo", ["v"])
        t.add_row(float("nan"))
        t.add_row(12345.678)
        t.add_row(0.0000001)
        text = t.render()
        assert "-" in text and "1.23e+04" in text and "1e-07" in text

    def test_charts_from_series_table(self):
        t = Table("demo", ["dataset", "n", "btm", "gtm"])
        t.add_row("geo", 100, 0.5, 0.2)
        t.add_row("geo", 200, 2.0, 0.8)
        t.add_row("truck", 100, 0.7, None)
        t.add_row("truck", 200, 2.4, 1.1)
        art = t.charts()
        assert "demo -- geo" in art and "demo -- truck" in art
        assert "o=btm" in art and "x=gtm" in art

    def test_charts_empty_for_non_series_table(self):
        t = Table("demo", ["pair", "ED"])
        t.add_row("a", 1.0)
        assert t.charts() == ""


class TestHarness:
    def test_default_xi_ratio(self):
        assert default_xi(5000) == 100  # the paper's setting
        assert default_xi(100) == 4     # floor

    def test_trajectory_cache(self):
        a = trajectory_for("geolife", 120, 0)
        b = trajectory_for("geolife", 120, 0)
        assert a is b  # lru cache hit

    def test_pair_cache_distinct(self):
        a, b = pair_for("truck", 100, 0)
        assert not np.array_equal(a.points, b.points)

    def test_run_motif_record(self):
        rec = run_motif("btm", "geolife", 120, seed=0)
        assert rec.algorithm == "btm"
        assert rec.seconds is not None and rec.seconds > 0
        assert rec.distance is not None and rec.distance >= 0
        assert not rec.timed_out
        assert rec.space_mb > 0

    def test_run_motif_timeout(self):
        rec = run_motif("brute", "geolife", 200, timeout=0.0)
        assert rec.timed_out
        assert rec.seconds is None

    def test_run_motif_cross(self):
        rec = run_motif("btm", "truck", 100, cross=True)
        assert rec.distance is not None

    def test_scales_defined(self):
        assert {"smoke", "quick", "full"} <= set(SCALES)


class TestExperimentShapes:
    """The reproduction's headline claims, asserted at smoke scale."""

    def test_registry_complete(self):
        for fig in ("table1", "fig2", "fig3", "fig4", "fig13", "fig15",
                    "fig16", "fig17", "fig18", "fig19", "fig20", "fig21"):
            assert fig in EXPERIMENTS

    def test_sampling_testbed_structure(self):
        s_a, s_b, s_c, s_d = sampling_testbed(n=100, seed=0)
        assert s_a.n == 100 and s_b.n == 100
        assert s_c.n > 2 * s_a.n  # oversampled
        assert s_d.n == s_a.n + 30

    def test_fig3_rankings(self):
        table = fig03_dtw_vs_dfd(seed=0)
        by_measure = {row[0]: row for row in table.rows}
        assert by_measure["DTW"][3] == "no"   # DTW misranks
        assert by_measure["DFD"][3] == "yes"  # DFD ranks correctly

    def test_table1_dfd_tolerates_both(self):
        table = table1_measures(seed=0)
        rows = {row[0]: row for row in table.rows}
        assert rows["DFD"][1] == "yes" and rows["DFD"][2] == "yes"
        assert rows["ED"][1] == "no"
        assert rows["DTW"][1] == "no"

    def test_fig4_strings_equal_but_far(self):
        table = fig04_symbolic(seed=0)
        translated = table.rows[1]
        assert translated[2] == "yes"          # identical strings
        assert translated[3] > 100.0           # > 100 km apart

    def test_relaxed_dominates_tight_runtime(self):
        # Figure 13's claim at one point: same data, both variants.
        tight = run_motif("btm", "geolife", 140, seed=0, variant="tight")
        relaxed = run_motif("btm", "geolife", 140, seed=0, variant="relaxed")
        assert relaxed.distance == pytest.approx(tight.distance)
        assert relaxed.seconds < tight.seconds
        # Tight bounds prune at least as well.
        assert tight.stats.pruning_ratio >= relaxed.stats.pruning_ratio - 1e-9

    def test_fig18_ordering(self):
        # BruteDP must be slowest; the bounded methods agree on the answer.
        brute = run_motif("brute", "geolife", 130, seed=0)
        btm = run_motif("btm", "geolife", 130, seed=0)
        gtm = run_motif("gtm", "geolife", 130, seed=0, tau=16)
        star = run_motif("gtm_star", "geolife", 130, seed=0, tau=16)
        assert btm.distance == pytest.approx(brute.distance)
        assert gtm.distance == pytest.approx(brute.distance)
        assert star.distance == pytest.approx(brute.distance)
        assert brute.seconds > btm.seconds
        assert brute.seconds > gtm.seconds

    def test_fig19_gtm_star_uses_less_space(self):
        gtm = run_motif("gtm", "baboon", 400, seed=0)
        star = run_motif("gtm_star", "baboon", 400, seed=0)
        assert star.space_mb < gtm.space_mb

    def test_pruning_ratio_is_high(self):
        # The paper reports > 92% of candidates pruned collectively.
        rec = run_motif("btm", "geolife", 200, seed=0)
        assert rec.stats.pruning_ratio > 0.92
