"""Fleet serving and corpus sharding: parity, hot-reload, survival.

The PR 7 tentpole contracts, end to end:

* ``shard_bounds`` / sharded snapshots round-trip the corpus exactly
  and keep ``summary_builds == 0`` on load (persisted summaries);
* the engine's sharded join / join-top-k scatter-and-merge answers are
  byte-identical to the unsharded calls (the canonical
  ``(distance, indices)`` order survives the merge);
* a :class:`~repro.service.MotifService` over a shard-set snapshot
  answers exactly what the same service over the plain snapshot does;
* snapshot hot-reload swaps a rebuilt corpus in without dropping the
  request already in flight (the old registration's mapped views
  outlive the swap);
* a pre-fork :class:`~repro.service.ServiceFleet` answers exactly what
  one process answers -- for 1, 2 and 4 workers -- keeps serving
  through a rebuilt snapshot under live traffic, and survives a
  ``SIGKILL``-ed worker (the supervisor replaces it).
"""

from __future__ import annotations

import http.client
import json
import os
import shutil
import signal
import threading
import time

import numpy as np
import pytest

from repro.extensions.join import join_top_k, similarity_join
from repro.index import CorpusIndex
from repro.engine import MotifEngine
from repro.service import MotifService, ServiceFleet
from repro.store import (
    SnapshotError,
    is_shard_set,
    load_snapshot,
    load_snapshot_shards,
    save_snapshot,
    shard_bounds,
    snapshot_fingerprint,
)
from repro.trajectory import Trajectory


def make_corpus(seed: int = 0, count: int = 6, n: int = 18):
    rng = np.random.default_rng(seed)
    return [
        Trajectory(rng.normal(size=(n, 2)).cumsum(axis=0) + [i * 8.0, 0.0])
        for i in range(count)
    ]


def write_snapshot(path, corpus, shards=1):
    if os.path.exists(path):
        shutil.rmtree(path)
    return save_snapshot(CorpusIndex(corpus, "euclidean"), path, shards=shards)


# ----------------------------------------------------------------------
# HTTP plumbing (raw, so one connection can serve several requests)
# ----------------------------------------------------------------------
def _post(port, op, params, timeout=60):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps({"params": params}).encode()
        conn.request("POST", f"/v1/{op}", body,
                     {"Content-Type": "application/json"})
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


def _get(port, path, timeout=60):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


def wait_for_fleet(port, deadline=30.0):
    """Block until some fleet worker answers /healthz."""
    end = time.monotonic() + deadline
    last = None
    while time.monotonic() < end:
        try:
            status, _ = _get(port, "/healthz", timeout=5)
            if status == 200:
                return
            last = status
        except OSError as exc:
            last = exc
        time.sleep(0.05)
    raise AssertionError(f"fleet never became healthy: {last!r}")


# ----------------------------------------------------------------------
# Sharded snapshots (store layer)
# ----------------------------------------------------------------------
class TestShardedStore:
    def test_shard_bounds_partition(self):
        for n in (1, 2, 5, 7, 12):
            for k in range(1, n + 1):
                bounds = shard_bounds(n, k)
                assert bounds[0][0] == 0 and bounds[-1][1] == n
                sizes = [stop - start for start, stop in bounds]
                assert sum(sizes) == n
                assert max(sizes) - min(sizes) <= 1
                for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                    assert stop == start

    def test_shard_bounds_rejects_bad_counts(self):
        with pytest.raises(SnapshotError):
            shard_bounds(5, 0)
        with pytest.raises(SnapshotError):
            shard_bounds(5, 6)

    def test_shard_set_roundtrip(self, tmp_path):
        corpus = make_corpus(seed=7, count=7)
        target = tmp_path / "set"
        manifest = write_snapshot(target, corpus, shards=3)
        assert is_shard_set(target)
        assert manifest["content_key"] == snapshot_fingerprint(target)
        indexes = load_snapshot_shards(target)
        assert [ix.n for ix in indexes] == [3, 2, 2]
        flat = [
            ix.points(i) for ix in indexes for i in range(ix.n)
        ]
        for got, want in zip(flat, corpus):
            np.testing.assert_array_equal(got, want.points)
        # Persisted summaries: no simplification DPs ran on load.
        assert all(ix.summary_builds == 0 for ix in indexes)

    def test_plain_loader_refuses_shard_set(self, tmp_path):
        target = tmp_path / "set"
        write_snapshot(target, make_corpus(), shards=2)
        with pytest.raises(SnapshotError, match="load_snapshot_shards"):
            load_snapshot(target)

    def test_single_snapshot_loads_as_one_shard(self, tmp_path):
        target = tmp_path / "one"
        write_snapshot(target, make_corpus())
        indexes = load_snapshot_shards(target)
        assert len(indexes) == 1 and indexes[0].n == 6


# ----------------------------------------------------------------------
# Scatter/merge parity (engine layer)
# ----------------------------------------------------------------------
class TestShardedEngine:
    def test_join_sharded_matches_unsharded(self):
        corpus = make_corpus(seed=3, count=7)
        bounds = shard_bounds(len(corpus), 3)
        parts = [corpus[start:stop] for start, stop in bounds]
        with MotifEngine(workers=1) as engine:
            matches, stats = engine.join(corpus, corpus, 6.0)
            sharded, sh_stats = engine.join_sharded(parts, parts, 6.0)
        assert sharded == matches
        assert sh_stats.matches == stats.matches
        assert sh_stats.details["shards"] == {"left": 3, "right": 3}

    def test_join_top_k_sharded_matches_unsharded(self):
        corpus = make_corpus(seed=4, count=7)
        bounds = shard_bounds(len(corpus), 2)
        parts = [corpus[start:stop] for start, stop in bounds]
        with MotifEngine(workers=1) as engine:
            ranked = engine.join_top_k(corpus, corpus, k=5)
            sharded = engine.join_top_k_sharded(parts, parts, k=5)
        assert sharded == ranked


# ----------------------------------------------------------------------
# Sharded snapshots through the service
# ----------------------------------------------------------------------
class TestShardedService:
    def test_sharded_snapshot_answers_match_plain(self, tmp_path):
        corpus = make_corpus(seed=5, count=7)
        plain, sharded = tmp_path / "plain", tmp_path / "sharded"
        write_snapshot(plain, corpus)
        write_snapshot(sharded, corpus, shards=3)
        with MotifService(workers=1) as service:
            one = service.load_snapshot("one", plain)
            many = service.load_snapshot("many", sharded)
            assert (one["shards"], many["shards"]) == (1, 3)
            spec_one = {"snapshot": "one"}
            spec_many = {"snapshot": "many"}
            j1, _ = service.submit(
                "join", {"left": spec_one, "right": spec_one, "theta": 6.0}
            )
            j2, _ = service.submit(
                "join", {"left": spec_many, "right": spec_many, "theta": 6.0}
            )
            assert j1["matches"] == j2["matches"]
            # Every shard reused its persisted summaries.
            assert j2["stats"]["details"]["index"]["summary_builds"] == 0
            t1, _ = service.submit(
                "join_top_k", {"left": spec_one, "right": spec_one, "k": 4}
            )
            t2, _ = service.submit(
                "join_top_k", {"left": spec_many, "right": spec_many, "k": 4}
            )
            assert t1 == t2

    def test_item_subset_spans_shard_boundaries(self, tmp_path):
        corpus = make_corpus(seed=6, count=6)
        target = tmp_path / "sharded"
        write_snapshot(target, corpus, shards=3)
        picks = [1, 2, 4]  # crosses shard 0/1 and 1/2 boundaries
        ref, _ = similarity_join(
            [corpus[i] for i in picks], [corpus[i] for i in picks], 6.0,
            index=True,
        )
        with MotifService(workers=1) as service:
            service.load_snapshot("c", target)
            spec = {"snapshot": "c", "items": picks}
            out, _ = service.submit(
                "join", {"left": spec, "right": spec, "theta": 6.0}
            )
        assert [tuple(p) for p in out["matches"]] == ref


# ----------------------------------------------------------------------
# Hot reload
# ----------------------------------------------------------------------
class TestHotReload:
    def test_swap_preserves_inflight_request(self, tmp_path):
        old_corpus = make_corpus(seed=10, count=6)
        new_corpus = make_corpus(seed=11, count=5)
        target = tmp_path / "snap"
        write_snapshot(target, old_corpus, shards=2)
        old_ref, _ = similarity_join(old_corpus, old_corpus, 6.0, index=True)
        new_ref, _ = similarity_join(new_corpus, new_corpus, 6.0, index=True)
        assert old_ref != new_ref  # the swap must be observable

        gate = threading.Event()
        entered = threading.Event()

        def hold(request):
            entered.set()
            assert gate.wait(30.0)

        with MotifService(workers=1) as service:
            service.load_snapshot("c", target)
            service._before_execute = hold
            spec = {"snapshot": "c"}
            result = {}

            def submit():
                result["join"], _ = service.submit(
                    "join", {"left": spec, "right": spec, "theta": 6.0}
                )

            worker = threading.Thread(target=submit)
            worker.start()
            assert entered.wait(30.0)
            # Rebuild the snapshot under the in-flight request, swap.
            write_snapshot(target, new_corpus, shards=2)
            assert service.check_snapshots() == ["c"]
            service._before_execute = None
            gate.set()
            worker.join(timeout=30.0)
            assert not worker.is_alive()
            # The in-flight request answered against the corpus it was
            # admitted under; a fresh request sees the new corpus.
            assert [tuple(p) for p in result["join"]["matches"]] == old_ref
            fresh, _ = service.submit(
                "join", {"left": spec, "right": spec, "theta": 6.0}
            )
            assert [tuple(p) for p in fresh["matches"]] == new_ref
            stats = service.stats()
            assert stats["counters"]["snapshot_reloads"] == 1
            assert stats["snapshots"]["c"]["generation"] == 1
            assert (
                stats["snapshots"]["c"]["content_key"]
                == snapshot_fingerprint(target)
            )

    def test_unchanged_snapshot_is_not_reloaded(self, tmp_path):
        target = tmp_path / "snap"
        write_snapshot(target, make_corpus())
        with MotifService(workers=1) as service:
            service.load_snapshot("c", target)
            assert service.check_snapshots() == []
            assert service.stats()["counters"]["snapshot_reloads"] == 0

    def test_watcher_thread_swaps_in_background(self, tmp_path):
        target = tmp_path / "snap"
        write_snapshot(target, make_corpus(seed=20))
        with MotifService(
            workers=1, snapshot_watch_interval=0.05
        ) as service:
            service.load_snapshot("c", target)
            write_snapshot(target, make_corpus(seed=21))
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                if service.stats()["counters"]["snapshot_reloads"]:
                    break
                time.sleep(0.05)
            stats = service.stats()
            assert stats["counters"]["snapshot_reloads"] >= 1
            assert stats["snapshots"]["c"]["generation"] >= 1


# ----------------------------------------------------------------------
# The pre-fork fleet
# ----------------------------------------------------------------------
class TestFleet:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_fleet_parity_with_single_process(self, tmp_path, workers):
        corpus = make_corpus(seed=30, count=6)
        target = tmp_path / "snap"
        write_snapshot(target, corpus, shards=2)
        with MotifService(workers=1) as service:
            service.load_snapshot("c", target)
            spec = {"snapshot": "c"}
            ref, _ = service.submit(
                "join", {"left": spec, "right": spec, "theta": 6.0}
            )
            ref_topk, _ = service.submit(
                "join_top_k", {"left": spec, "right": spec, "k": 4}
            )
        with ServiceFleet(
            workers=workers, snapshots=[("c", target)],
            service_kwargs={"workers": 1},
        ) as fleet:
            wait_for_fleet(fleet.port)
            params = {
                "left": {"snapshot": "c"},
                "right": {"snapshot": "c"},
                "theta": 6.0,
            }
            answering = set()
            for _ in range(3 * workers):
                status, out = _post(fleet.port, "join", params)
                assert status == 200
                assert out["result"]["matches"] == ref["matches"]
                status, stats = _get(fleet.port, "/stats")
                answering.add(stats["stats"]["pid"])
            status, out = _post(
                fleet.port, "join_top_k",
                {"left": {"snapshot": "c"}, "right": {"snapshot": "c"},
                 "k": 4},
            )
            assert status == 200 and out["result"] == ref_topk
            assert answering <= set(fleet.pids())

    def test_fleet_hot_reload_under_traffic(self, tmp_path):
        old_corpus = make_corpus(seed=40, count=6)
        new_corpus = make_corpus(seed=41, count=5)
        target = tmp_path / "snap"
        write_snapshot(target, old_corpus, shards=2)
        old_ref, _ = similarity_join(old_corpus, old_corpus, 6.0, index=True)
        new_ref, _ = similarity_join(new_corpus, new_corpus, 6.0, index=True)
        old_m = [[a, b] for a, b in old_ref]
        new_m = [[a, b] for a, b in new_ref]
        assert old_m != new_m
        params = {
            "left": {"snapshot": "c"}, "right": {"snapshot": "c"},
            "theta": 6.0,
        }
        failures = []
        answers = []
        stop = threading.Event()

        with ServiceFleet(
            workers=2, snapshots=[("c", target)],
            service_kwargs={"workers": 1, "snapshot_watch_interval": 0.05},
        ) as fleet:
            wait_for_fleet(fleet.port)

            def traffic():
                while not stop.is_set():
                    try:
                        status, out = _post(fleet.port, "join", params)
                    except OSError as exc:  # noqa: PERF203 - per-request guard
                        failures.append(repr(exc))
                        continue
                    if status != 200:
                        failures.append((status, out))
                    else:
                        answers.append(out["result"]["matches"])

            thread = threading.Thread(target=traffic)
            thread.start()
            try:
                deadline = time.monotonic() + 5.0
                while not answers and time.monotonic() < deadline:
                    time.sleep(0.05)
                write_snapshot(target, new_corpus, shards=2)
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    if answers and answers[-1] == new_m:
                        break
                    time.sleep(0.1)
            finally:
                stop.set()
                thread.join(timeout=30.0)
            # Zero failed requests through the swap, and every answer
            # was exactly the old corpus's or the new corpus's.
            assert not failures
            assert answers and answers[-1] == new_m
            assert all(m in (old_m, new_m) for m in answers)

    def test_fleet_survives_killed_worker(self, tmp_path):
        target = tmp_path / "snap"
        write_snapshot(target, make_corpus(seed=50))
        params = {
            "left": {"snapshot": "c"}, "right": {"snapshot": "c"},
            "theta": 6.0,
        }
        with ServiceFleet(
            workers=2, snapshots=[("c", target)],
            service_kwargs={"workers": 1},
        ) as fleet:
            wait_for_fleet(fleet.port)
            status, ref = _post(fleet.port, "join", params)
            assert status == 200
            os.kill(fleet.pids()[0], signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while fleet.restarts == 0 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert fleet.restarts >= 1
            status, out = _post(fleet.port, "join", params)
            assert status == 200
            assert out["result"]["matches"] == ref["result"]["matches"]
            assert len(fleet.pids()) == 2

    def test_fleet_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ServiceFleet(workers=0)
        with pytest.raises(ValueError):
            ServiceFleet(
                service_factory=MotifService, service_kwargs={"workers": 1}
            )
