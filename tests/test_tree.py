"""Hierarchical trajectory index: admissible node bounds, exact
range/knn, tree-mode join parity, snapshot persistence.

The tentpole contract under test (ISSUE 9 acceptance):

* every node-aggregate lower bound (endpoint balls, box / hull gaps,
  representative simplification) is admissible -- it never exceeds the
  exact DFD of any trajectory pair covered by the node pair
  (property-tested on seeded corpora over euclidean, chebyshev and
  haversine);
* ``range`` / ``knn`` answers are byte-identical to the brute-force
  scans, including tie-heavy integer-lattice corpora where many
  distances coincide exactly;
* tree-mode ``join`` / ``join_top_k`` equal the flat-grid and
  unindexed answers across workers {1, 2, 4};
* a snapshot roundtrip reattaches the persisted node arrays with zero
  bulk loads and zero summary rebuilds;
* sharded joins skip provably-far shard blocks and record the skips in
  ``details["shards"]["blocks_skipped"]``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.distances.frechet import discrete_frechet
from repro.distances.ground import get_metric
from repro.engine import MotifEngine
from repro.engine.planner import normalize_index_mode
from repro.errors import ReproError
from repro.index import (
    CorpusIndex,
    TREE_ARRAY_FIELDS,
    TrajectoryTree,
)
from repro.store import load_snapshot, save_snapshot
from repro.trajectory import Trajectory

SEED_BASE = int(os.environ.get("REPRO_TEST_SEED", "0"))
SEEDS = [SEED_BASE * 100_003 + s for s in range(6)]
METRICS = ("euclidean", "chebyshev", "haversine")


def make_corpus(seed: int, n_items=None, geo: bool = False,
                clustered: bool = False):
    """A seeded random corpus; ``geo`` keeps coordinates lat/lon-sized."""
    rng = np.random.default_rng(seed)
    corpus = []
    count = int(rng.integers(6, 14)) if n_items is None else n_items
    for i in range(count):
        n = int(rng.integers(6, 20))
        pts = rng.normal(size=(n, 2)).cumsum(axis=0)
        if clustered:
            pts = pts + np.array([(i % 3) * 40.0, (i // 3) * 40.0])
        if geo:
            pts = pts * 0.05 + np.array([8.0, 47.0])
        corpus.append(Trajectory(pts))
    return corpus


def lattice_corpus(seed: int, count: int = 12):
    """Integer-lattice trajectories: exact distance ties everywhere."""
    rng = np.random.default_rng(seed)
    corpus = []
    for _ in range(count):
        n = int(rng.integers(4, 8))
        pts = rng.integers(0, 4, size=(n, 2)).astype(np.float64)
        corpus.append(Trajectory(pts))
    return corpus


def exact_dfd(a, b, metric) -> float:
    return float(discrete_frechet(a, b, metric))


# ----------------------------------------------------------------------
# Node-aggregate bound admissibility
# ----------------------------------------------------------------------
class TestNodeBoundsAdmissible:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("metric", METRICS)
    def test_pair_bounds_never_exceed_exact_dfd(self, seed, metric):
        """Property: for every node pair, every aggregated lower bound
        is <= the exact DFD of every covered trajectory pair."""
        geo = metric == "haversine"
        corpus = make_corpus(seed, geo=geo)
        index = CorpusIndex(corpus, metric)
        tree = index.ensure_tree(fanout=3)
        resolved = get_metric(metric)
        nodes = np.arange(tree.n_nodes)
        for na in nodes:
            items_a = tree.node_items(int(na))
            nb_arr = np.repeat(nodes, 1)
            lbs = tree.pair_lower_bounds(
                tree, np.full(len(nodes), na), nb_arr
            )
            for nb, lb in zip(nodes, lbs):
                items_b = tree.node_items(int(nb))
                exact = min(
                    exact_dfd(corpus[i], corpus[j], resolved)
                    for i in items_a for j in items_b
                )
                assert lb <= exact + 1e-9, (na, nb, lb, exact)
                rep = tree.rep_pair_bound(tree, int(na), int(nb))
                assert rep <= exact + 1e-9, (na, nb, rep, exact)

    @pytest.mark.parametrize("seed", SEEDS[:3])
    @pytest.mark.parametrize("metric", METRICS)
    def test_query_bounds_never_exceed_exact_dfd(self, seed, metric):
        geo = metric == "haversine"
        corpus = make_corpus(seed, geo=geo)
        rng = np.random.default_rng(seed + 77)
        query = rng.normal(size=(9, 2)).cumsum(axis=0)
        if geo:
            query = query * 0.05 + np.array([8.0, 47.0])
        index = CorpusIndex(corpus, metric)
        tree = index.ensure_tree(fanout=3)
        summary = index.summarize_query(query)
        resolved = get_metric(metric)
        nodes = np.arange(tree.n_nodes)
        lbs = tree.query_lower_bounds(summary, nodes)
        for node, lb in zip(nodes, lbs):
            exact = min(
                exact_dfd(query, corpus[i], resolved)
                for i in tree.node_items(int(node))
            )
            assert lb <= exact + 1e-9, (node, lb, exact)
            rep = tree.rep_query_bound(summary, int(node))
            assert rep <= exact + 1e-9, (node, rep, exact)

    @pytest.mark.parametrize("fanout", (2, 3, 8))
    def test_structure_invariants(self, fanout):
        corpus = make_corpus(SEEDS[0], n_items=17)
        tree = TrajectoryTree.build(CorpusIndex(corpus, "euclidean"),
                                    fanout=fanout)
        assert sorted(tree.item_order.tolist()) == list(range(17))
        for node in range(tree.n_nodes):
            lo, hi = tree.item_lo[node], tree.item_hi[node]
            assert lo < hi
            if not tree.is_leaf(node):
                clo, chi = tree.child_lo[node], tree.child_hi[node]
                assert tree.item_lo[clo] == lo
                assert tree.item_hi[chi - 1] == hi
        # Root covers everything.
        assert tree.item_lo[0] == 0 and tree.item_hi[0] == 17


# ----------------------------------------------------------------------
# Range / knn byte parity
# ----------------------------------------------------------------------
class TestRangeKnnParity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("metric", METRICS)
    def test_range_matches_brute_force(self, seed, metric):
        geo = metric == "haversine"
        corpus = make_corpus(seed, geo=geo)
        rng = np.random.default_rng(seed + 31)
        query = rng.normal(size=(8, 2)).cumsum(axis=0)
        if geo:
            query = query * 0.05 + np.array([8.0, 47.0])
        index = CorpusIndex(corpus, metric)
        resolved = get_metric(metric)
        dists = [exact_dfd(query, t, resolved) for t in corpus]
        for radius in (np.percentile(dists, 25), np.median(dists),
                       max(dists)):
            brute, _ = index.range_scan(query, radius, use_tree=False)
            tree, _ = index.range_scan(query, radius, use_tree=True)
            assert brute == tree

    @pytest.mark.parametrize("seed", SEEDS)
    def test_range_radius_ties_survive(self, seed):
        """A radius equal to an exact distance keeps the tied item --
        the traversal prunes on strict excess only."""
        corpus = lattice_corpus(seed)
        query = corpus[0].points.copy()
        index = CorpusIndex(corpus, "euclidean")
        resolved = get_metric("euclidean")
        dists = sorted(exact_dfd(query, t, resolved) for t in corpus)
        radius = dists[len(dists) // 2]  # an exact realised distance
        brute, _ = index.range_scan(query, radius, use_tree=False)
        tree, _ = index.range_scan(query, radius, use_tree=True)
        assert brute == tree
        assert any(abs(d - radius) < 1e-15 for _, d in tree)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("metric", METRICS)
    def test_knn_matches_brute_force(self, seed, metric):
        geo = metric == "haversine"
        corpus = make_corpus(seed, geo=geo)
        rng = np.random.default_rng(seed + 53)
        query = rng.normal(size=(7, 2)).cumsum(axis=0)
        if geo:
            query = query * 0.05 + np.array([8.0, 47.0])
        index = CorpusIndex(corpus, metric)
        for k in (1, 3, len(corpus), len(corpus) + 4):
            brute, _ = index.knn_scan(query, k, use_tree=False)
            tree, _ = index.knn_scan(query, k, use_tree=True)
            assert brute == tree

    @pytest.mark.parametrize("seed", SEEDS)
    def test_knn_tie_heavy_lattice(self, seed):
        """Ties broken by corpus index, byte-identical to sorted()[:k]."""
        corpus = lattice_corpus(seed, count=16)
        query = lattice_corpus(seed + 999, count=1)[0]
        index = CorpusIndex(corpus, "euclidean")
        for k in (1, 4, 9, 16):
            brute, _ = index.knn_scan(query, k, use_tree=False)
            tree, _ = index.knn_scan(query, k, use_tree=True)
            assert brute == tree

    def test_traversal_stats_accounted(self):
        corpus = make_corpus(SEEDS[0], n_items=20, clustered=True)
        index = CorpusIndex(corpus, "euclidean")
        query = corpus[0].points + 0.01
        _, stats = index.range_scan(query, 1.0, use_tree=True)
        d = stats.as_dict()
        for key in ("nodes_visited", "nodes_pruned", "leaves_scanned"):
            assert key in d
        assert stats.nodes_visited > 0


# ----------------------------------------------------------------------
# Tree-mode join parity
# ----------------------------------------------------------------------
class TestTreeJoinParity:
    @pytest.mark.parametrize("seed", SEEDS[:4])
    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_join_matches_grid_and_unindexed(self, seed, workers):
        rng = np.random.default_rng(seed)
        corpus = make_corpus(seed, n_items=14)
        left, right = corpus[:7], corpus[7:]
        theta = float(rng.uniform(1.0, 6.0))
        with MotifEngine(workers=workers, executor="inline") as engine:
            plain, _ = engine.join(left, right, theta, index=False)
            grid, _ = engine.join(left, right, theta, index="grid")
            tree, tstats = engine.join(left, right, theta, index="tree")
        assert plain == grid == tree
        detail = tstats.details["index"]
        assert detail["nodes_visited"] > 0

    @pytest.mark.parametrize("seed", SEEDS[:4])
    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_join_top_k_matches_grid_and_unindexed(self, seed, workers):
        corpus = make_corpus(seed, n_items=14)
        left, right = corpus[:7], corpus[7:]
        for k in (1, 5, 60):
            with MotifEngine(workers=workers, executor="inline") as engine:
                plain = engine.join_top_k(left, right, k, index=False)
            with MotifEngine(workers=workers, executor="inline") as engine:
                tree = engine.join_top_k(left, right, k, index="tree")
            assert plain == tree

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_join_top_k_lattice_ties(self, seed):
        corpus = lattice_corpus(seed, count=10)
        left, right = corpus[:5], corpus[5:]
        with MotifEngine(workers=1, executor="inline") as engine:
            plain = engine.join_top_k(left, right, 8, index=False)
        with MotifEngine(workers=1, executor="inline") as engine:
            tree = engine.join_top_k(left, right, 8, index="tree")
        assert plain == tree

    def test_cluster_tree_mode_parity(self):
        rng = np.random.default_rng(SEEDS[0] + 5)
        traj = rng.normal(size=(80, 2)).cumsum(axis=0)
        with MotifEngine(workers=1, executor="inline") as engine:
            plain = engine.cluster(traj, window_length=16, theta=3.0,
                                   stride=5, index=False)
            tree = engine.cluster(traj, window_length=16, theta=3.0,
                                  stride=5, index="tree")
        assert plain == tree

    def test_index_mode_validation(self):
        assert normalize_index_mode(None) is False
        assert normalize_index_mode(False) is False
        assert normalize_index_mode(True) is True
        assert normalize_index_mode("grid") is True
        assert normalize_index_mode("tree") == "tree"
        with pytest.raises(ReproError):
            normalize_index_mode("rtree")


# ----------------------------------------------------------------------
# Sharded block pruning
# ----------------------------------------------------------------------
class TestShardBlockPruning:
    def _far_shards(self, seed):
        rng = np.random.default_rng(seed)
        shards = []
        for c in range(3):
            base = np.array([c * 400.0, 0.0])
            shards.append([
                Trajectory(base + rng.normal(size=(8, 2)).cumsum(axis=0))
                for _ in range(5)
            ])
        return shards

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_sharded_join_skips_far_blocks(self, seed):
        shards = self._far_shards(seed)
        with MotifEngine(workers=1, executor="inline") as engine:
            plain, _ = engine.join_sharded(shards, shards, 3.0, index=False)
            tree, stats = engine.join_sharded(shards, shards, 3.0,
                                              index="tree")
        assert plain == tree
        shard_info = stats.details["shards"]
        assert shard_info["blocks_skipped"] > 0
        # Skipped blocks still account their pairs as index-pruned.
        assert stats.pairs_total == sum(len(s) for s in shards) ** 2

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_sharded_join_top_k_parity(self, seed):
        shards = self._far_shards(seed)
        for k in (2, 7):
            with MotifEngine(workers=1, executor="inline") as engine:
                plain = engine.join_top_k_sharded(shards, shards, k,
                                                  index=False)
            with MotifEngine(workers=1, executor="inline") as engine:
                tree = engine.join_top_k_sharded(shards, shards, k,
                                                 index="tree")
            assert plain == tree


# ----------------------------------------------------------------------
# Snapshot persistence
# ----------------------------------------------------------------------
class TestTreeSnapshot:
    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_tree_arrays_roundtrip(self, seed, tmp_path):
        corpus = make_corpus(seed, n_items=12)
        index = CorpusIndex(corpus, "euclidean")
        tree = index.ensure_tree()
        save_snapshot(index, tmp_path / "snap")
        restored = load_snapshot(tmp_path / "snap")
        # The tree arrives attached -- no bulk load ran on restore.
        assert restored._tree is not None
        assert restored.summary_builds == 0
        for name in TREE_ARRAY_FIELDS:
            np.testing.assert_array_equal(
                getattr(tree, name), getattr(restored._tree, name),
                err_msg=name,
            )

    def test_restored_tree_answers_identically(self, tmp_path):
        corpus = make_corpus(SEEDS[0], n_items=12)
        index = CorpusIndex(corpus, "euclidean")
        save_snapshot(index, tmp_path / "snap")
        restored = load_snapshot(tmp_path / "snap")
        rng = np.random.default_rng(SEEDS[0] + 7)
        query = rng.normal(size=(9, 2)).cumsum(axis=0)
        live_r, _ = index.range_scan(query, 4.0, use_tree=True)
        snap_r, snap_stats = restored.range_scan(query, 4.0, use_tree=True)
        assert live_r == snap_r
        assert snap_stats.summary_builds == 0
        live_k, _ = index.knn_scan(query, 5, use_tree=True)
        snap_k, _ = restored.knn_scan(query, 5, use_tree=True)
        assert live_k == snap_k
