"""Unit tests for trajectory readers/writers (PLT, CSV, JSON)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrajectoryError
from repro.trajectory import (
    Trajectory,
    load_directory,
    read_csv,
    read_json,
    read_plt,
    write_csv,
    write_json,
    write_plt,
)


@pytest.fixture
def latlon_traj():
    rng = np.random.default_rng(0)
    pts = np.column_stack(
        [39.9 + rng.random(20) * 0.01, 116.4 + rng.random(20) * 0.01]
    )
    return Trajectory(pts, np.arange(20) * 5.0, crs="latlon", trajectory_id="t0")


@pytest.fixture
def plane_traj():
    rng = np.random.default_rng(1)
    return Trajectory(rng.normal(size=(15, 2)), np.arange(15.0), trajectory_id="p0")


class TestPlt:
    def test_round_trip(self, latlon_traj, tmp_path):
        path = tmp_path / "track.plt"
        write_plt(latlon_traj, path)
        back = read_plt(path)
        assert back.n == latlon_traj.n
        assert np.allclose(back.points, latlon_traj.points, atol=1e-6)
        assert np.allclose(back.timestamps, latlon_traj.timestamps, atol=1e-3)
        assert back.crs == "latlon"
        assert back.trajectory_id == "track"

    def test_write_requires_latlon(self, plane_traj, tmp_path):
        with pytest.raises(TrajectoryError):
            write_plt(plane_traj, tmp_path / "x.plt")

    def test_read_rejects_headers_only(self, tmp_path):
        path = tmp_path / "empty.plt"
        path.write_text("\n".join(["h"] * 6) + "\n")
        with pytest.raises(TrajectoryError):
            read_plt(path)

    def test_read_rejects_malformed_record(self, tmp_path):
        path = tmp_path / "bad.plt"
        path.write_text("\n".join(["h"] * 6 + ["1.0,2.0"]) + "\n")
        with pytest.raises(TrajectoryError):
            read_plt(path)

    def test_duplicate_second_timestamps_are_nudged(self, tmp_path):
        path = tmp_path / "dup.plt"
        day = 25569.0
        rows = ["h"] * 6 + [
            f"39.9,116.4,0,0,{day:.10f},,",
            f"39.9,116.5,0,0,{day:.10f},,",  # identical timestamp
        ]
        path.write_text("\n".join(rows) + "\n")
        traj = read_plt(path)
        assert traj.n == 2
        assert traj.timestamps[1] > traj.timestamps[0]


class TestCsv:
    def test_round_trip_with_header(self, plane_traj, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(plane_traj, path)
        back = read_csv(path)
        assert np.allclose(back.points, plane_traj.points)
        assert np.allclose(back.timestamps, plane_traj.timestamps)

    def test_round_trip_without_header(self, plane_traj, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(plane_traj, path, header=False)
        back = read_csv(path)  # auto-detect: no header
        assert back.n == plane_traj.n

    def test_header_autodetect_explicit(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("t,x,y\n0,1,2\n1,3,4\n")
        assert read_csv(path).n == 2
        assert read_csv(path, has_header=True).n == 2

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "e.csv"
        path.write_text("")
        with pytest.raises(TrajectoryError):
            read_csv(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("t,x,y\n")
        with pytest.raises(TrajectoryError):
            read_csv(path)

    def test_too_few_columns_rejected(self, tmp_path):
        path = tmp_path / "c.csv"
        path.write_text("0,1\n1,2\n")
        with pytest.raises(TrajectoryError):
            read_csv(path)

    def test_three_dimensional_round_trip(self, tmp_path):
        traj = Trajectory(np.arange(12.0).reshape(4, 3), np.arange(4.0))
        path = tmp_path / "t3.csv"
        write_csv(traj, path)
        back = read_csv(path)
        assert back.dimensions == 3
        assert np.allclose(back.points, traj.points)


class TestJson:
    def test_round_trip(self, latlon_traj, tmp_path):
        path = tmp_path / "t.json"
        write_json(latlon_traj, path)
        back = read_json(path)
        assert back == latlon_traj
        assert back.trajectory_id == latlon_traj.trajectory_id

    def test_missing_key_rejected(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text('{"points": [[0,0],[1,1]]}')
        with pytest.raises(TrajectoryError):
            read_json(path)


class TestLoadDirectory:
    def test_loads_sorted(self, latlon_traj, tmp_path):
        write_plt(latlon_traj.with_id("b"), tmp_path / "b.plt")
        write_plt(latlon_traj.with_id("a"), tmp_path / "a.plt")
        out = load_directory(tmp_path)
        assert [t.trajectory_id for t in out] == ["a", "b"]

    def test_pattern_filtering(self, latlon_traj, plane_traj, tmp_path):
        write_plt(latlon_traj, tmp_path / "x.plt")
        write_csv(plane_traj, tmp_path / "y.csv")
        assert len(load_directory(tmp_path, "*.plt")) == 1
        assert len(load_directory(tmp_path, "*.csv")) == 1

    def test_unknown_format_rejected(self, tmp_path):
        (tmp_path / "z.xyz").write_text("nope")
        with pytest.raises(TrajectoryError):
            load_directory(tmp_path, "*.xyz")
