"""Unit tests for trajectory transformations (repro.trajectory.ops)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrajectoryError
from repro.trajectory import (
    Trajectory,
    add_gaussian_noise,
    concatenate,
    douglas_peucker,
    drop_samples,
    path_length,
    resample_uniform,
    scale,
    sliding_windows,
    translate,
)


def line(n=10, dt=1.0):
    pts = np.column_stack([np.arange(n, dtype=float), np.zeros(n)])
    return Trajectory(pts, np.arange(n) * dt)


class TestConcatenate:
    def test_lengths_and_order(self):
        a, b = line(5), line(7)
        c = concatenate([a, b], time_gap=2.0)
        assert c.n == 12
        assert np.array_equal(c.points[:5], a.points)
        assert np.array_equal(c.points[5:], b.points)

    def test_timestamps_ascending_with_gap(self):
        c = concatenate([line(3), line(3)], time_gap=5.0)
        assert (np.diff(c.timestamps) > 0).all()
        assert c.timestamps[3] - c.timestamps[2] == 5.0

    def test_single_input(self):
        c = concatenate([line(4)])
        assert c.n == 4

    def test_empty_rejected(self):
        with pytest.raises(TrajectoryError):
            concatenate([])

    def test_mixed_crs_rejected(self):
        a = line(3)
        b = Trajectory(a.points, a.timestamps, crs="latlon")
        with pytest.raises(TrajectoryError):
            concatenate([a, b])

    def test_nonpositive_gap_rejected(self):
        with pytest.raises(TrajectoryError):
            concatenate([line(3), line(3)], time_gap=0.0)

    def test_mixed_dims_rejected(self):
        a = line(3)
        b = Trajectory(np.zeros((3, 3)) + np.arange(3)[:, None])
        with pytest.raises(TrajectoryError):
            concatenate([a, b])


class TestResample:
    def test_uniform_grid(self):
        t = line(10, dt=2.0)
        r = resample_uniform(t, period=1.0)
        assert np.allclose(np.diff(r.timestamps), 1.0)
        # Linear motion: interpolation is exact.
        assert np.allclose(r.points[:, 0], r.timestamps / 2.0)

    def test_downsample(self):
        r = resample_uniform(line(10), period=3.0)
        assert r.n == 4  # t = 0, 3, 6, 9

    def test_invalid_period(self):
        with pytest.raises(TrajectoryError):
            resample_uniform(line(5), period=0.0)


class TestDropSamples:
    def test_keeps_endpoints(self):
        t = line(100)
        d = drop_samples(t, 0.5, rng=np.random.default_rng(0))
        assert np.array_equal(d.points[0], t.points[0])
        assert np.array_equal(d.points[-1], t.points[-1])
        assert d.n < t.n

    def test_zero_fraction_is_identity(self):
        t = line(20)
        d = drop_samples(t, 0.0, rng=np.random.default_rng(0))
        assert d.n == t.n

    def test_invalid_fraction(self):
        with pytest.raises(TrajectoryError):
            drop_samples(line(5), 1.0)

    def test_timestamps_stay_ascending(self):
        d = drop_samples(line(200), 0.7, rng=np.random.default_rng(3))
        assert (np.diff(d.timestamps) > 0).all()


class TestNoiseAndAffine:
    def test_noise_changes_points_not_times(self):
        t = line(30)
        noisy = add_gaussian_noise(t, 0.5, rng=np.random.default_rng(1))
        assert not np.array_equal(noisy.points, t.points)
        assert np.array_equal(noisy.timestamps, t.timestamps)

    def test_zero_sigma_identity(self):
        t = line(5)
        assert np.array_equal(add_gaussian_noise(t, 0.0).points, t.points)

    def test_negative_sigma_rejected(self):
        with pytest.raises(TrajectoryError):
            add_gaussian_noise(line(5), -1.0)

    def test_translate(self):
        t = translate(line(4), (2.0, -1.0))
        assert np.array_equal(t.points[0], [2.0, -1.0])

    def test_translate_wrong_shape(self):
        with pytest.raises(TrajectoryError):
            translate(line(4), (1.0, 2.0, 3.0))

    def test_scale_about_centroid(self):
        t = line(5)
        s = scale(t, 2.0)
        assert np.allclose(s.points.mean(axis=0), t.points.mean(axis=0))
        assert np.allclose(s.points[-1] - s.points[0], 2 * (t.points[-1] - t.points[0]))

    def test_scale_requires_plane(self):
        t = Trajectory(line(5).points, crs="latlon")
        with pytest.raises(TrajectoryError):
            scale(t, 2.0)

    def test_scale_rejects_nonpositive(self):
        with pytest.raises(TrajectoryError):
            scale(line(5), 0.0)


class TestPathLength:
    def test_straight_line(self):
        assert path_length(line(11)) == pytest.approx(10.0)

    def test_latlon_uses_haversine(self):
        pts = np.array([[0.0, 0.0], [0.0, 1.0]])  # 1 degree longitude at equator
        t = Trajectory(pts, crs="latlon")
        assert path_length(t) == pytest.approx(111_195, rel=0.01)


class TestSlidingWindows:
    def test_count_and_shape(self):
        wins = list(sliding_windows(line(10), length=4, step=2))
        assert len(wins) == 4
        assert all(w.n == 4 for w in wins)

    def test_stride_one(self):
        assert len(list(sliding_windows(line(10), length=3))) == 8

    def test_invalid_args(self):
        with pytest.raises(TrajectoryError):
            list(sliding_windows(line(10), length=1))
        with pytest.raises(TrajectoryError):
            list(sliding_windows(line(10), length=3, step=0))


class TestDouglasPeucker:
    def test_straight_line_collapses(self):
        simplified = douglas_peucker(line(50), epsilon=0.01)
        assert simplified.n == 2

    def test_zigzag_preserved(self):
        n = 21
        pts = np.column_stack([np.arange(n, dtype=float), np.zeros(n)])
        pts[1::2, 1] = 5.0  # tall zigzag
        t = Trajectory(pts)
        simplified = douglas_peucker(t, epsilon=1.0)
        assert simplified.n == n  # every vertex deviates > epsilon

    def test_endpoints_kept(self):
        t = line(30)
        s = douglas_peucker(t, epsilon=100.0)
        assert np.array_equal(s.points[0], t.points[0])
        assert np.array_equal(s.points[-1], t.points[-1])

    def test_negative_epsilon_rejected(self):
        with pytest.raises(TrajectoryError):
            douglas_peucker(line(5), -0.5)

    def test_epsilon_monotone(self):
        rng = np.random.default_rng(5)
        pts = rng.normal(size=(60, 2)).cumsum(axis=0)
        t = Trajectory(pts)
        sizes = [douglas_peucker(t, eps).n for eps in (0.1, 0.5, 2.0, 8.0)]
        assert sizes == sorted(sizes, reverse=True)
