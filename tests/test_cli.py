"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.trajectory import Trajectory, write_csv


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestInfoAndDatasets:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "EDBT 2017" in out
        assert "gtm" in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "geolife" in out and "baboon" in out


class TestDiscover:
    def test_synthetic_dataset(self, capsys):
        rc = main([
            "discover", "--dataset", "random_walk", "--n", "80",
            "--min-length", "4", "--algorithm", "btm", "--stats",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "motif:" in out
        assert "Frechet distance" in out
        assert "pruned" in out  # --stats line

    def test_cross_pair(self, capsys):
        rc = main([
            "discover", "--dataset", "random_walk", "--n", "60",
            "--min-length", "3", "--cross", "--algorithm", "btm",
        ])
        assert rc == 0
        assert "T[" in capsys.readouterr().out

    def test_csv_input(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        traj = Trajectory(rng.normal(size=(60, 2)).cumsum(axis=0))
        path = tmp_path / "walk.csv"
        write_csv(traj, path)
        rc = main([
            "discover", "--input", str(path), "--min-length", "3",
            "--algorithm", "gtm", "--tau", "4",
        ])
        assert rc == 0

    def test_requires_exactly_one_source(self):
        with pytest.raises(SystemExit):
            main(["discover", "--min-length", "3"])
        with pytest.raises(SystemExit):
            main([
                "discover", "--dataset", "random_walk", "--input", "x.csv",
                "--min-length", "3",
            ])

    def test_unsupported_format(self, tmp_path):
        path = tmp_path / "x.gpx"
        path.write_text("<gpx/>")
        with pytest.raises(SystemExit):
            main(["discover", "--input", str(path), "--min-length", "3"])


class TestExtensionsCli:
    def test_topk(self, capsys):
        rc = main([
            "topk", "--dataset", "random_walk", "--n", "60",
            "--min-length", "3", "--k", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("#") == 3
        assert "DFD" in out

    def test_cluster(self, capsys):
        rc = main([
            "cluster", "--dataset", "figure_eight", "--n", "200",
            "--window", "16", "--theta", "0.5", "--stride", "8",
        ])
        assert rc == 0
        assert "cluster 0" in capsys.readouterr().out

    def test_cluster_none_found(self, capsys):
        rc = main([
            "cluster", "--dataset", "random_walk", "--n", "100",
            "--window", "16", "--theta", "0.0001", "--stride", "8",
        ])
        assert rc == 0
        assert "no clusters" in capsys.readouterr().out

    def test_plot_flag(self, capsys):
        rc = main([
            "discover", "--dataset", "figure_eight", "--n", "150",
            "--min-length", "6", "--plot",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "A" in out and "B" in out


class TestBench:
    def test_single_experiment(self, capsys):
        rc = main(["bench", "fig3", "--scale", "smoke"])
        assert rc == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_chart_flag(self, capsys):
        rc = main(["bench", "fig19", "--scale", "smoke", "--chart"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "log10" in out  # chart rendered
        assert "o=btm" in out

    def test_json_output(self, tmp_path, capsys):
        rc = main([
            "bench", "fig4", "--scale", "smoke", "--output", str(tmp_path),
        ])
        assert rc == 0
        assert (tmp_path / "fig4.json").exists()

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["bench", "fig99"])


class TestSnapshotCli:
    def test_build_and_inspect(self, tmp_path, capsys):
        out_dir = tmp_path / "snap"
        rc = main([
            "snapshot", "build", "--dataset", "random_walk", "--count", "4",
            "--n", "40", "--output", str(out_dir),
        ])
        assert rc == 0
        built = capsys.readouterr().out
        assert "content_key:" in built
        rc = main(["snapshot", "inspect", str(out_dir)])
        assert rc == 0
        inspected = capsys.readouterr().out
        assert "digests verified" in inspected
        assert "4 trajectories" in inspected
        # The two commands report the same fingerprint.
        key = built.split("content_key: ")[1].split()[0]
        assert key in inspected

    def test_build_from_files(self, tmp_path, capsys):
        rng = np.random.default_rng(3)
        paths = []
        for i in range(2):
            traj = Trajectory(rng.normal(size=(30, 2)).cumsum(axis=0))
            path = tmp_path / f"t{i}.csv"
            write_csv(traj, path)
            paths.append(str(path))
        rc = main([
            "snapshot", "build", "--inputs", *paths,
            "--output", str(tmp_path / "snap"),
        ])
        assert rc == 0
        assert "2 trajectories" in capsys.readouterr().out

    def test_inspect_rejects_corruption(self, tmp_path, capsys):
        out_dir = tmp_path / "snap"
        main([
            "snapshot", "build", "--dataset", "random_walk", "--count", "2",
            "--n", "30", "--output", str(out_dir),
        ])
        capsys.readouterr()
        payload = bytearray((out_dir / "points.bin").read_bytes())
        payload[0] ^= 0xFF
        (out_dir / "points.bin").write_bytes(bytes(payload))
        with pytest.raises(SystemExit, match="inspect failed"):
            main(["snapshot", "inspect", str(out_dir)])
        # size checks alone still pass without digest verification
        assert main(["snapshot", "inspect", str(out_dir), "--no-verify"]) == 0


class TestServeCli:
    def test_bad_snapshot_mount_spec(self):
        with pytest.raises(SystemExit, match="NAME=PATH"):
            main(["serve", "--snapshot", "not-a-mount", "--port", "0"])

    def test_missing_snapshot_dir(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot load snapshot"):
            main([
                "serve", "--snapshot", f"x={tmp_path / 'nope'}",
                "--port", "0",
            ])


class TestStatsFlags:
    def test_join_stats_prints_index_line(self, capsys):
        rc = main([
            "join", "--dataset", "random_walk", "--count", "4", "--n", "40",
            "--theta", "5", "--index", "--stats",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "index: " in out
        assert "summary_builds=" in out

    def test_cluster_stats_prints_counts(self, capsys):
        rc = main([
            "cluster", "--dataset", "figure_eight", "--n", "150",
            "--window", "16", "--theta", "0.5", "--stride", "8",
            "--index", "--stats",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "windows=" in out and "candidates=" in out
        assert "index: " in out
