"""Service layer: client <-> server over a real socket.

End-to-end coverage of the serving contracts (ISSUE 5 satellite): the
wire protocol answers match the serial algorithms exactly, identical
in-flight requests coalesce onto one computation, admission overflow
answers 429, deadlines expire as 504 (queued, in-flight, and through
the algorithms' MotifTimeout budget), and a restarted service serving
the same snapshot gives the same answers.  Everything runs against a
real ``ThreadingHTTPServer`` bound to an ephemeral localhost port --
the exact deployment shape of ``repro-motif serve``.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro import discover_motif
from repro.extensions.join import join_top_k, similarity_join
from repro.extensions.clustering import cluster_subtrajectories
from repro.index import CorpusIndex
from repro.service import (
    BadRequestError,
    DeadlineExceededError,
    MotifService,
    OverloadedError,
    ServiceClient,
    ServiceUnavailableError,
    UnknownSnapshotError,
    make_server,
)
from repro.store import save_snapshot
from repro.trajectory import Trajectory


def make_corpus(seed: int = 0, count: int = 6, n: int = 22):
    rng = np.random.default_rng(seed)
    return [
        Trajectory(rng.normal(size=(n, 2)).cumsum(axis=0) + [i * 10.0, 0.0])
        for i in range(count)
    ]


@pytest.fixture(scope="module")
def snapshot_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("snapshots") / "fleet"
    save_snapshot(CorpusIndex(make_corpus(), "euclidean"), root)
    return root


class running_service:
    """Context manager: a started service behind a live HTTP server."""

    def __init__(self, snapshot_dir=None, **service_kwargs):
        self.snapshot_dir = snapshot_dir
        self.service_kwargs = service_kwargs

    def __enter__(self):
        self.service = MotifService(**self.service_kwargs)
        if self.snapshot_dir is not None:
            self.service.load_snapshot("fleet", self.snapshot_dir)
        self.service.start()
        self.httpd = make_server(self.service)
        self.thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self.thread.start()
        # retries=0: these tests assert exact counter values per request
        # (one wire attempt each); retry behaviour is covered by
        # test_faults.py.
        client = ServiceClient(port=self.httpd.server_address[1], retries=0)
        return self.service, client

    def __exit__(self, *exc_info):
        self.httpd.shutdown()
        self.httpd.server_close()
        self.thread.join(timeout=10.0)
        self.service.stop()


class TestWireParity:
    def test_discover_matches_serial(self, snapshot_dir):
        rng = np.random.default_rng(42)
        traj = Trajectory(rng.normal(size=(50, 2)).cumsum(axis=0))
        with running_service(snapshot_dir) as (_, client):
            out = client.discover(traj, min_length=4, algorithm="btm")
        ref = discover_motif(traj, min_length=4, algorithm="btm")
        assert out["distance"] == ref.distance
        assert tuple(out["indices"]) == ref.indices

    def test_snapshot_join_matches_serial(self, snapshot_dir):
        corpus = make_corpus()
        ref_matches, _ = similarity_join(corpus, corpus, 6.0, index=True)
        with running_service(snapshot_dir) as (_, client):
            out = client.join(
                {"snapshot": "fleet"}, {"snapshot": "fleet"}, theta=6.0
            )
        assert [tuple(p) for p in out["matches"]] == ref_matches
        # Snapshot hit: the candidate pass ran zero simplification DPs.
        assert out["stats"]["details"]["index"]["summary_builds"] == 0

    def test_snapshot_join_top_k_matches_serial(self, snapshot_dir):
        corpus = make_corpus()
        ref = join_top_k(corpus, corpus, k=4)
        with running_service(snapshot_dir) as (_, client):
            out = client.join_top_k(
                {"snapshot": "fleet"}, {"snapshot": "fleet"}, k=4
            )
        assert [
            (entry["distance"], tuple(entry["pair"])) for entry in out
        ] == [(dist, pair) for dist, pair in ref]

    def test_snapshot_item_and_cluster(self, snapshot_dir):
        corpus = make_corpus()
        with running_service(snapshot_dir) as (_, client):
            out = client.discover(
                {"snapshot": "fleet", "item": 1}, min_length=4,
                algorithm="btm",
            )
            ref = discover_motif(corpus[1], min_length=4, algorithm="btm")
            assert out["distance"] == ref.distance
            rng = np.random.default_rng(5)
            traj = Trajectory(rng.normal(size=(90, 2)).cumsum(axis=0))
            clustered = client.cluster(
                traj, window_length=10, theta=1.5, stride=5
            )
        ref_clusters = cluster_subtrajectories(
            traj, window_length=10, theta=1.5, stride=5
        )
        assert [
            tuple(c["members"]) for c in clustered["clusters"]
        ] == [c.members for c in ref_clusters]

    def test_discover_many_and_top_k(self, snapshot_dir):
        rng = np.random.default_rng(9)
        trajs = [
            Trajectory(rng.normal(size=(40, 2)).cumsum(axis=0))
            for _ in range(3)
        ]
        with running_service(snapshot_dir) as (_, client):
            many = client.discover_many(
                [trajs[0], trajs[1], trajs[0]], min_length=4, algorithm="btm"
            )
            ranked = client.top_k(trajs[2], min_length=4, k=3)
        refs = [
            discover_motif(t, min_length=4, algorithm="btm")
            for t in (trajs[0], trajs[1], trajs[0])
        ]
        assert [m["distance"] for m in many] == [r.distance for r in refs]
        assert many[0] == many[2]  # in-batch dedup is answer-stable
        assert [r["rank"] for r in ranked] == [1, 2, 3]

    def test_health_and_stats_endpoints(self, snapshot_dir):
        with running_service(snapshot_dir) as (_, client):
            health = client.health()
            assert health["ok"] and health["snapshots"] == ["fleet"]
            stats = client.stats()
        assert stats["snapshots"]["fleet"]["n"] == 6
        assert stats["snapshots"]["fleet"]["content_key"]
        assert "cache" in stats["engine"]

    def test_healthz_reports_outage_with_non_200(self, snapshot_dir):
        """A stopped service behind a still-bound server must fail a
        status-code health check, not answer 200 with a false body."""
        import json
        from http.client import HTTPConnection

        service = MotifService()
        service.load_snapshot("fleet", snapshot_dir)
        service.start()
        httpd = make_server(service)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        port = httpd.server_address[1]
        try:
            # Stop the service but keep the HTTP server bound.
            with service._cond:
                service._running = False
                service._cond.notify_all()
            conn = HTTPConnection("127.0.0.1", port, timeout=10.0)
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            payload = json.loads(response.read())
            conn.close()
            assert response.status == 503
            assert payload["ok"] is False
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=10.0)
            service.stop()


class TestCoalescing:
    def test_identical_inflight_requests_share_one_computation(
        self, snapshot_dir
    ):
        rng = np.random.default_rng(17)
        traj = Trajectory(rng.normal(size=(45, 2)).cumsum(axis=0))
        executions = []
        gate = threading.Event()
        started = threading.Event()

        with running_service(
            snapshot_dir, service_workers=1,
            engine_kwargs=dict(result_cache_size=0),
        ) as (service, client):
            def hook(req):
                executions.append(req.op)
                started.set()
                assert gate.wait(10.0)

            service._before_execute = hook
            results = []
            threads = [
                threading.Thread(
                    target=lambda: results.append(client.call(
                        "discover",
                        {"trajectory": traj.points.tolist(), "min_length": 4,
                         "algorithm": "btm"},
                    ))
                )
                for _ in range(4)
            ]
            threads[0].start()
            assert started.wait(10.0)  # first request is now in flight
            for t in threads[1:]:
                t.start()
            deadline = time.monotonic() + 10.0
            while (
                service.stats()["counters"]["coalesced"] < 3
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            gate.set()
            for t in threads:
                t.join(timeout=10.0)
            counters = service.stats()["counters"]

        assert len(executions) == 1  # one computation for four requests
        assert counters["coalesced"] == 3
        assert len(results) == 4
        answers = {
            (r["result"]["distance"], tuple(r["result"]["indices"]))
            for r in results
        }
        assert len(answers) == 1
        assert sum(1 for r in results if r["coalesced"]) == 3

    def test_coalescing_disabled_runs_every_request(self, snapshot_dir):
        rng = np.random.default_rng(18)
        traj = Trajectory(rng.normal(size=(40, 2)).cumsum(axis=0))
        with running_service(
            snapshot_dir, coalesce=False,
            engine_kwargs=dict(result_cache_size=0),
        ) as (service, client):
            for _ in range(3):
                client.discover(traj, min_length=4, algorithm="btm")
            counters = service.stats()["counters"]
        assert counters["accepted"] == 3
        assert counters["coalesced"] == 0


class TestAdmissionAndDeadlines:
    def test_queue_overflow_answers_429(self, snapshot_dir):
        rng = np.random.default_rng(21)
        gate = threading.Event()
        started = threading.Event()
        with running_service(
            snapshot_dir, service_workers=1, max_pending=1, coalesce=False,
        ) as (service, client):
            def hook(req):
                started.set()
                assert gate.wait(10.0)

            service._before_execute = hook
            blocker = threading.Thread(
                target=lambda: client.discover(
                    Trajectory(rng.normal(size=(40, 2)).cumsum(axis=0)),
                    min_length=4, algorithm="btm",
                )
            )
            blocker.start()
            assert started.wait(10.0)
            # Worker busy; one more fills the queue...
            filler = threading.Thread(
                target=lambda: client.discover(
                    Trajectory(rng.normal(size=(40, 2)).cumsum(axis=0)),
                    min_length=4, algorithm="btm",
                )
            )
            filler.start()
            deadline = time.monotonic() + 10.0
            while (
                service.stats()["pending"] < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            # ...and the next is refused immediately.
            with pytest.raises(OverloadedError):
                client.discover(
                    Trajectory(rng.normal(size=(40, 2)).cumsum(axis=0)),
                    min_length=4, algorithm="btm",
                )
            gate.set()
            blocker.join(timeout=10.0)
            filler.join(timeout=10.0)
            assert service.stats()["counters"]["rejected"] == 1

    def test_deadline_expires_while_inflight(self, snapshot_dir):
        rng = np.random.default_rng(22)
        gate = threading.Event()
        with running_service(snapshot_dir, service_workers=1) as (
            service, client,
        ):
            service._before_execute = lambda req: gate.wait(10.0)
            started = time.monotonic()
            with pytest.raises(DeadlineExceededError):
                client.discover(
                    Trajectory(rng.normal(size=(40, 2)).cumsum(axis=0)),
                    min_length=4, algorithm="btm", timeout=0.25,
                )
            elapsed = time.monotonic() - started
            assert elapsed < 5.0  # the 504 came from the deadline, not a hang
            assert service.stats()["counters"]["waiter_timeouts"] == 1
            gate.set()
            # The abandoned computation notices the expired budget and
            # records exactly one outcome: counter families are
            # disjoint (no double count with the waiter's timeout).
            deadline = time.monotonic() + 10.0
            while (
                service.stats()["counters"]["deadline_expired"] < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            counters = service.stats()["counters"]
            assert counters["deadline_expired"] == 1
            assert counters["completed"] == 0
            assert counters["waiter_timeouts"] == 1

    def test_no_coalescing_onto_shorter_budgeted_computation(
        self, snapshot_dir
    ):
        """A deadline-less request must not attach to an in-flight
        computation that a sibling's short deadline will cut short."""
        rng = np.random.default_rng(27)
        traj = Trajectory(rng.normal(size=(42, 2)).cumsum(axis=0))
        gate = threading.Event()
        started = threading.Event()
        with running_service(
            snapshot_dir, service_workers=2,
            engine_kwargs=dict(result_cache_size=0),
        ) as (service, client):
            def hook(req):
                started.set()
                gate.wait(10.0)

            service._before_execute = hook
            short_error = []

            def short():
                try:
                    client.discover(
                        traj, min_length=4, algorithm="btm", timeout=0.3,
                    )
                except DeadlineExceededError as exc:
                    short_error.append(exc)

            first = threading.Thread(target=short)
            first.start()
            assert started.wait(10.0)
            # Identical query, no deadline: must get its own
            # computation rather than inherit the 0.3s budget.
            results = []
            second = threading.Thread(
                target=lambda: results.append(client.discover(
                    traj, min_length=4, algorithm="btm",
                ))
            )
            second.start()
            deadline = time.monotonic() + 10.0
            while (
                service.stats()["counters"]["accepted"] < 2
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            counters = service.stats()["counters"]
            assert counters["accepted"] == 2  # no coalesce across budgets
            assert counters["coalesced"] == 0
            # Hold both computations until the short waiter gives up,
            # so the 0.3s deadline has really expired before release.
            deadline = time.monotonic() + 10.0
            while (
                service.stats()["counters"]["waiter_timeouts"] < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            gate.set()
            first.join(timeout=10.0)
            second.join(timeout=10.0)
            assert short_error  # the short request expired...
            assert results  # ...and the unbounded one was answered

    def test_motif_timeout_budget_maps_to_504(self, snapshot_dir):
        """The per-request deadline rides the algorithms' own
        MotifTimeout machinery for discover-family searches."""
        rng = np.random.default_rng(23)
        traj = Trajectory(rng.normal(size=(400, 2)).cumsum(axis=0))
        with running_service(snapshot_dir) as (_, client):
            with pytest.raises(DeadlineExceededError):
                client.discover(
                    traj, min_length=10, algorithm="brute", timeout=0.01,
                )

    def test_expired_in_queue_answers_504(self, snapshot_dir):
        rng = np.random.default_rng(24)
        gate = threading.Event()
        started = threading.Event()
        with running_service(
            snapshot_dir, service_workers=1, coalesce=False, max_pending=4,
        ) as (service, client):
            def hook(req):
                started.set()
                gate.wait(10.0)

            service._before_execute = hook
            blocker = threading.Thread(
                target=lambda: client.discover(
                    Trajectory(rng.normal(size=(40, 2)).cumsum(axis=0)),
                    min_length=4, algorithm="btm",
                )
            )
            blocker.start()
            assert started.wait(10.0)
            with pytest.raises(DeadlineExceededError):
                client.discover(
                    Trajectory(rng.normal(size=(41, 2)).cumsum(axis=0)),
                    min_length=4, algorithm="btm", timeout=0.2,
                )
            gate.set()
            blocker.join(timeout=10.0)


class TestErrors:
    def test_unknown_snapshot(self, snapshot_dir):
        with running_service(snapshot_dir) as (_, client):
            with pytest.raises(UnknownSnapshotError):
                client.join({"snapshot": "nope"}, {"snapshot": "nope"}, 1.0)

    def test_bad_params(self, snapshot_dir):
        with running_service(snapshot_dir) as (_, client):
            with pytest.raises(BadRequestError):
                client.call("discover", {"min_length": 3})  # no trajectory
            with pytest.raises(BadRequestError):
                client.call("nonsense", {})
            with pytest.raises(BadRequestError):
                client.call("discover", {
                    "trajectory": [[0.0, 0.0]], "min_length": 3,
                }, timeout=-1)

    def test_submit_after_stop_is_unavailable(self):
        service = MotifService()
        service.start()
        service.stop()
        with pytest.raises(ServiceUnavailableError):
            service.submit("discover", {
                "trajectory": [[0.0, 0.0], [1.0, 1.0], [2.0, 0.0],
                               [3.0, 1.0], [4.0, 0.0], [5.0, 1.0],
                               [6.0, 0.0], [7.0, 1.0]],
                "min_length": 1,
            })


class TestKeepAlive:
    """HTTP/1.1 connection reuse across errored requests (PR 7 bugfix).

    Error paths in ``_parse_request`` used to leave the declared body
    unread on the socket, so the next request on a keep-alive
    connection parsed those bytes as its request line and desynced.
    """

    @staticmethod
    def _open(rs):
        conn = http.client.HTTPConnection(
            "127.0.0.1", rs.httpd.server_address[1], timeout=30
        )
        conn.connect()
        return conn

    @staticmethod
    def _roundtrip(conn, op, payload):
        body = json.dumps(payload).encode()
        conn.request("POST", f"/v1/{op}", body,
                     {"Content-Type": "application/json"})
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())

    GOOD_JOIN = {"params": {
        "left": {"snapshot": "fleet"},
        "right": {"snapshot": "fleet"},
        "theta": 6.0,
    }}

    def test_good_request_after_unknown_op_same_connection(
        self, snapshot_dir
    ):
        rs = running_service(snapshot_dir)
        with rs:
            conn = self._open(rs)
            try:
                status, out = self._roundtrip(
                    conn, "nonsense", {"params": {"pad": "x" * 2048}}
                )
                assert status == 400 and not out["ok"]
                status, out = self._roundtrip(conn, "join", self.GOOD_JOIN)
                assert status == 200 and out["ok"]
            finally:
                conn.close()

    def test_good_request_after_bad_json_same_connection(self, snapshot_dir):
        rs = running_service(snapshot_dir)
        with rs:
            conn = self._open(rs)
            try:
                conn.request("POST", "/v1/join", b"{not json" + b"!" * 512,
                             {"Content-Type": "application/json"})
                resp = conn.getresponse()
                assert resp.status == 400
                json.loads(resp.read())
                status, out = self._roundtrip(conn, "join", self.GOOD_JOIN)
                assert status == 200 and out["ok"]
            finally:
                conn.close()

    def test_oversized_leftover_closes_connection(self, snapshot_dir):
        from repro.service.server import MAX_DRAIN_BYTES

        rs = running_service(snapshot_dir)
        with rs:
            conn = self._open(rs)
            try:
                # Declare a body too large to drain; send nothing.  The
                # 400 must arrive with Connection: close so the
                # undrainable leftover can never desync a next request.
                conn.putrequest("POST", "/v1/nonsense")
                conn.putheader("Content-Type", "application/json")
                conn.putheader(
                    "Content-Length", str(MAX_DRAIN_BYTES + 1)
                )
                conn.endheaders()
                resp = conn.getresponse()
                assert resp.status == 400
                resp.read()
                assert resp.getheader("Connection") == "close"
            finally:
                conn.close()


class TestClientDisconnects:
    def test_disconnects_are_counted_not_traced(self, snapshot_dir, capsys):
        rs = running_service(snapshot_dir)
        with rs as (service, _):
            try:
                raise BrokenPipeError("peer vanished")
            except BrokenPipeError:
                rs.httpd.handle_error(None, ("127.0.0.1", 54321))
            try:
                raise ConnectionResetError("peer reset")
            except ConnectionResetError:
                rs.httpd.handle_error(None, ("127.0.0.1", 54321))
            assert (
                service.stats()["counters"]["client_disconnects"] == 2
            )
        err = capsys.readouterr().err
        assert "Traceback" not in err

    def test_other_errors_still_trace(self, snapshot_dir, capsys):
        rs = running_service(snapshot_dir)
        with rs as (service, _):
            try:
                raise RuntimeError("genuine bug")
            except RuntimeError:
                rs.httpd.handle_error(None, ("127.0.0.1", 54321))
            assert (
                service.stats()["counters"]["client_disconnects"] == 0
            )
        err = capsys.readouterr().err
        assert "RuntimeError" in err


class TestRestart:
    def test_snapshot_reload_after_restart(self, snapshot_dir):
        """A fresh process' service over the same snapshot directory
        answers identically -- the persisted summaries are the state."""
        corpus = make_corpus()
        ref_matches, _ = similarity_join(corpus, corpus, 6.0, index=True)
        answers = []
        for _ in range(2):  # two independent service lifetimes
            with running_service(snapshot_dir) as (_, client):
                out = client.join(
                    {"snapshot": "fleet"}, {"snapshot": "fleet"}, theta=6.0
                )
                answers.append(out)
        assert answers[0] == answers[1]
        assert [tuple(p) for p in answers[0]["matches"]] == ref_matches
        for out in answers:
            assert out["stats"]["details"]["index"]["summary_builds"] == 0
