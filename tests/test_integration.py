"""End-to-end integration tests across the whole stack."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Trajectory, discover_motif
from repro.datasets import get_dataset, make_trajectory
from repro.distances import discrete_frechet
from repro.trajectory import concatenate, write_csv, read_csv

ALGOS = ("brute", "btm", "gtm", "gtm_star")


class TestEndToEndDatasets:
    @pytest.mark.parametrize("dataset", ["geolife", "truck", "baboon"])
    def test_all_algorithms_agree_on_simulated_data(self, dataset):
        traj = make_trajectory(dataset, 150, seed=3)
        xi = 5
        results = {
            algo: discover_motif(traj, min_length=xi, algorithm=algo)
            for algo in ALGOS
        }
        reference = results["brute"].distance
        for algo, result in results.items():
            assert result.distance == pytest.approx(reference), algo
            i, ie, j, je = result.indices
            assert ie - i > xi and je - j > xi and ie < j

    @pytest.mark.parametrize("dataset", ["geolife", "truck", "baboon"])
    def test_cross_trajectory_agreement(self, dataset):
        a, b = get_dataset(dataset, seed=4).generate_pair(110)
        results = [
            discover_motif(a, b, min_length=4, algorithm=algo).distance
            for algo in ALGOS
        ]
        assert max(results) - min(results) < 1e-9

    def test_motif_respects_timestamps_non_overlap(self):
        traj = make_trajectory("geolife", 200, seed=5)
        r = discover_motif(traj, min_length=6)
        t_first = r.first.time_interval
        t_second = r.second.time_interval
        assert t_first[1] < t_second[0]  # intervals do not overlap


class TestPipelineRoundTrip:
    def test_io_then_discover(self, tmp_path):
        traj = make_trajectory("truck", 140, seed=6)
        planar = Trajectory(traj.points, traj.timestamps)  # reinterpret
        path = tmp_path / "t.csv"
        write_csv(planar, path)
        loaded = read_csv(path)
        a = discover_motif(planar, min_length=5, algorithm="btm")
        b = discover_motif(loaded, min_length=5, algorithm="btm")
        assert a.indices == b.indices
        assert a.distance == pytest.approx(b.distance)

    def test_concatenated_trajectories_motif(self):
        """The paper concatenates raw trajectories to build longer
        inputs; a trajectory repeated twice must contain a near-zero
        motif spanning the copies."""
        base = make_trajectory("random_walk", 40, seed=7)
        noisy = Trajectory(
            base.points + np.random.default_rng(8).normal(0, 1e-4, base.points.shape),
            base.timestamps,
        )
        joined = concatenate([base, noisy], time_gap=10.0)
        r = discover_motif(joined, min_length=10, algorithm="gtm")
        assert r.distance < 0.01
        assert r.first.end < 40 <= r.second.start

    def test_result_subtrajectories_reproduce_distance(self):
        traj = make_trajectory("baboon", 160, seed=9)
        r = discover_motif(traj, min_length=5, algorithm="gtm_star")
        direct = discrete_frechet(
            r.first.points, r.second.points, metric="haversine"
        )
        assert direct == pytest.approx(r.distance)


class TestPropertyBasedAgreement:
    @given(
        st.integers(0, 10_000),
        st.integers(24, 40),
        st.integers(2, 4),
    )
    @settings(max_examples=15, deadline=None)
    def test_algorithms_agree_on_random_walks(self, seed, n, xi):
        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(n, 2)).cumsum(axis=0)
        traj = Trajectory(pts)
        distances = [
            discover_motif(traj, min_length=xi, algorithm=a).distance
            for a in ALGOS
        ]
        assert max(distances) - min(distances) < 1e-9

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_motif_distance_shrinks_with_smaller_xi(self, seed):
        """A smaller minimum length can only allow better (or equal)
        motifs: the candidate set grows monotonically."""
        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(36, 2)).cumsum(axis=0)
        traj = Trajectory(pts)
        d_small = discover_motif(traj, min_length=2, algorithm="btm").distance
        d_large = discover_motif(traj, min_length=5, algorithm="btm").distance
        assert d_small <= d_large + 1e-12
