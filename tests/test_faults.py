"""Fault injection and self-healing: registry, engine, service, fleet.

The PR 8 tentpole contracts, end to end:

* :mod:`repro.faults` is a deterministic failpoint registry -- hits
  are counted per site, actions fire on exact hit numbers with exact
  budgets, and the counters are fork-shared so a child's fire spends
  the budget for the whole process tree;
* the engine's pool dispatch survives SIGKILL-ed workers: the pool is
  rebuilt, only unfinished chunks are re-dispatched, answers are
  byte-identical to a fault-free run, and the crash is visible in
  ``transfer_info()``;
* a systematically crashing workload raises a typed
  :class:`~repro.errors.WorkerCrashError` instead of hanging;
* the service's circuit breaker opens after repeated infrastructure
  failures, sheds load with 503 ``degraded`` + ``retry_after``, and a
  half-open probe restores it;
* :class:`~repro.service.ServiceClient` reuses one keep-alive
  connection per thread, reconnects transparently on a stale socket,
  and retries retryable failures with decorrelated-jitter backoff;
* the fleet supervisor damps crash-looping workers with exponential
  per-slot restart backoff and forgives slots that stay healthy.
"""

from __future__ import annotations

import json
import os
import shutil
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro import faults
from repro.engine import MotifEngine
from repro.errors import ReproError, WorkerCrashError
from repro.index import CorpusIndex
from repro.service import (
    BadRequestError,
    MotifService,
    ServiceClient,
    ServiceDegradedError,
    ServiceFleet,
    WorkerCrashedError,
    make_server,
)
from repro.store import save_snapshot
from repro.testing import random_walk
from repro.trajectory import Trajectory


@pytest.fixture(autouse=True)
def _clean_failpoints():
    yield
    faults.disarm()


def make_corpus(seed: int = 0, count: int = 6, n: int = 20):
    rng = np.random.default_rng(seed)
    return [
        Trajectory(rng.normal(size=(n, 2)).cumsum(axis=0) + [i * 9.0, 0.0])
        for i in range(count)
    ]


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_unarmed_fail_at_is_a_noop(self):
        faults.fail_at("worker.task")  # must not raise
        assert faults.armed_sites() == ()

    def test_unknown_site_or_action_rejected_at_arm_time(self):
        with pytest.raises(ValueError):
            faults.arm("no.such.site=raise:OSError")
        with pytest.raises(ValueError):
            faults.arm("worker.task=explode")
        with pytest.raises(ValueError):
            faults.arm("worker.task=raise:OSError%0")
        assert faults.armed_sites() == ()

    def test_raise_fires_on_every_hit_by_default(self):
        faults.arm("worker.task=raise:OSError")
        for _ in range(3):
            with pytest.raises(OSError, match="failpoint worker.task"):
                faults.fail_at("worker.task")
        assert faults.state()["worker.task"]["fires"] == 3

    def test_hit_selection_and_budget(self):
        # Fire only on hits 2..3, with a total budget of 1: exactly
        # the second hit fires, everything else passes through.
        faults.arm("snapshot.read=raise:ValueError@2-3%1")
        faults.fail_at("snapshot.read")  # hit 1
        with pytest.raises(ValueError):
            faults.fail_at("snapshot.read")  # hit 2 fires
        faults.fail_at("snapshot.read")  # hit 3: budget spent
        faults.fail_at("snapshot.read")  # hit 4: out of range anyway
        state = faults.state()["snapshot.read"]
        assert state["hits"] == 4 and state["fires"] == 1

    def test_repro_exception_names_resolve(self):
        faults.arm("service.execute=raise:WorkerCrashError%1")
        with pytest.raises(WorkerCrashError):
            faults.fail_at("service.execute")

    def test_rearm_resets_counters_and_disarm_clears(self):
        faults.arm("worker.task=raise:OSError@5")
        faults.fail_at("worker.task")
        faults.arm("worker.task=raise:OSError@5")
        assert faults.state()["worker.task"]["hits"] == 0
        faults.disarm("worker.task")
        assert faults.armed_sites() == ()

    def test_context_manager_disarms_only_its_own_sites(self):
        faults.arm("shm.attach=raise:OSError")
        with faults.armed("worker.task=raise:OSError%1"):
            assert set(faults.armed_sites()) == {"shm.attach", "worker.task"}
        assert faults.armed_sites() == ("shm.attach",)

    def test_env_arming_and_kill_action(self):
        # A child armed from the environment SIGKILLs itself at the
        # site; a second run with the budget spent in-process exits 0.
        code = (
            "from repro import faults\n"
            "faults.fail_at('worker.task')\n"
            "print('survived')\n"
        )
        env = dict(os.environ, REPRO_FAILPOINTS="worker.task=kill%1")
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, cwd="/root/repo",
            capture_output=True, text=True,
        )
        assert proc.returncode == -9

    def test_exit_action(self):
        code = (
            "from repro import faults\n"
            "faults.arm('fleet.worker_boot=exit:7')\n"
            "faults.fail_at('fleet.worker_boot')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=dict(os.environ,
                     PYTHONPATH="src" + os.pathsep
                     + os.environ.get("PYTHONPATH", "")),
            cwd="/root/repo", capture_output=True, text=True,
        )
        assert proc.returncode == 7


# ----------------------------------------------------------------------
# Engine: crash-safe dispatch
# ----------------------------------------------------------------------
class TestEngineCrashRecovery:
    """SIGKILL one pool child mid-dispatch; answers must not change."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_discover_survives_worker_kill(self, workers):
        traj = random_walk(120, seed=3)
        with MotifEngine(workers=1) as ref_eng:
            ref = ref_eng.discover(traj, min_length=8, cacheable=False)
        with MotifEngine(workers=workers) as eng:
            faults.arm("worker.task=kill%1")
            got = eng.discover(traj, min_length=8, cacheable=False)
            info = eng.transfer_info()
            assert info["worker_crashes"] >= 1
            assert info["redispatches"] >= 1
            # The engine-wide scan lock must not stay held.
            assert eng._exec.scan_lock.acquire(blocking=False)
            eng._exec.scan_lock.release()
        assert got.distance == ref.distance
        assert got.indices == ref.indices

    @pytest.mark.parametrize("workers", [2, 4])
    def test_top_k_survives_worker_kill(self, workers):
        traj = random_walk(120, seed=5)
        with MotifEngine(workers=1) as ref_eng:
            ref = ref_eng.top_k(traj, min_length=8, k=3)
        with MotifEngine(workers=workers) as eng:
            faults.arm("worker.task=kill%1")
            got = eng.top_k(traj, min_length=8, k=3)
            assert eng.transfer_info()["worker_crashes"] >= 1
            assert eng._exec.scan_lock.acquire(blocking=False)
            eng._exec.scan_lock.release()
        assert got == ref

    @pytest.mark.parametrize("workers", [2, 4])
    def test_join_survives_worker_kill(self, workers):
        left = make_corpus(seed=1)
        right = make_corpus(seed=2)
        with MotifEngine(workers=1) as ref_eng:
            ref_matches, _ = ref_eng.join(left, right, theta=25.0)
        with MotifEngine(workers=workers) as eng:
            faults.arm("worker.task=kill%1")
            got_matches, _ = eng.join(left, right, theta=25.0)
            assert eng.transfer_info()["worker_crashes"] >= 1
        assert got_matches == ref_matches

    def test_systematic_crashes_raise_typed_error_then_recover(self):
        traj = random_walk(120, seed=7)
        with MotifEngine(workers=2) as eng:
            eng._exec.max_dispatch_attempts = 2
            faults.arm("worker.task=kill")  # unlimited: every dispatch dies
            with pytest.raises(WorkerCrashError):
                eng.discover(traj, min_length=8, cacheable=False)
            assert isinstance(WorkerCrashError("x"), ReproError)
            assert not isinstance(WorkerCrashError("x"), OSError)
            # The scan lock is free and the engine recovers once the
            # fault is gone.
            assert eng._exec.scan_lock.acquire(blocking=False)
            eng._exec.scan_lock.release()
            faults.disarm()
            got = eng.discover(traj, min_length=8, cacheable=False)
        with MotifEngine(workers=1) as ref_eng:
            ref = ref_eng.discover(traj, min_length=8, cacheable=False)
        assert got.distance == ref.distance and got.indices == ref.indices

    def test_shm_attach_fault_falls_back_inline_with_same_answer(self):
        traj = random_walk(120, seed=9)
        with MotifEngine(workers=1) as ref_eng:
            ref = ref_eng.discover(traj, min_length=8, cacheable=False)
        with MotifEngine(workers=2) as eng:
            faults.arm("shm.attach=raise:OSError%1")
            got = eng.discover(traj, min_length=8, cacheable=False)
        assert got.distance == ref.distance
        assert got.indices == ref.indices


# ----------------------------------------------------------------------
# Service: circuit breaker
# ----------------------------------------------------------------------
class running_service:
    def __init__(self, snapshot_dir=None, **service_kwargs):
        self.snapshot_dir = snapshot_dir
        self.service_kwargs = service_kwargs
        self.client_kwargs = {}

    def __enter__(self):
        self.service = MotifService(**self.service_kwargs)
        if self.snapshot_dir is not None:
            self.service.load_snapshot("corpus", self.snapshot_dir)
        self.service.start()
        self.httpd = make_server(self.service)
        self.thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self.thread.start()
        client = ServiceClient(
            port=self.httpd.server_address[1], **self.client_kwargs
        )
        return self.service, client

    def __exit__(self, *exc_info):
        self.httpd.shutdown()
        self.httpd.server_close()
        self.thread.join(timeout=10.0)
        self.service.stop()


class TestCircuitBreaker:
    def test_trip_shed_probe_recover(self):
        traj = random_walk(60, seed=1)
        with running_service(
            breaker_threshold=2, breaker_cooldown=0.25,
        ) as (service, client):
            client.retries = 0
            # Two consecutive infrastructure failures trip the breaker.
            faults.arm("service.execute=raise:WorkerCrashError%2")
            for _ in range(2):
                with pytest.raises(WorkerCrashedError):
                    client.discover(traj, min_length=6)
            stats = service.stats()
            assert stats["breaker"]["state"] == "open"
            assert stats["counters"]["breaker_opens"] == 1
            assert stats["counters"]["worker_crashes"] == 2
            # Open breaker sheds with 503 degraded + retry_after, and
            # health reports the outage.
            with pytest.raises(ServiceDegradedError) as excinfo:
                client.discover(traj, min_length=6)
            assert excinfo.value.retry_after is not None
            assert 0.0 < excinfo.value.retry_after <= 0.25
            assert service.health()["ok"] is False
            assert service.health()["breaker"] == "open"
            assert service.stats()["counters"]["breaker_rejections"] >= 1
            # After the cooldown a probe is admitted; its success
            # closes the breaker again.
            time.sleep(0.3)
            result = client.discover(traj, min_length=6)
            assert result["distance"] >= 0.0
            stats = service.stats()
            assert stats["breaker"]["state"] == "closed"
            assert stats["counters"]["breaker_recoveries"] == 1
            assert service.health()["ok"] is True

    def test_failed_probe_reopens(self):
        traj = random_walk(60, seed=2)
        with running_service(
            breaker_threshold=1, breaker_cooldown=0.2,
        ) as (service, client):
            client.retries = 0
            faults.arm("service.execute=raise:WorkerCrashError%2")
            with pytest.raises(WorkerCrashedError):
                client.discover(traj, min_length=6)
            assert service.stats()["breaker"]["state"] == "open"
            time.sleep(0.25)
            # The probe itself hits the second fault: straight back
            # to open, no half-open limbo.
            with pytest.raises(WorkerCrashedError):
                client.discover(traj, min_length=6)
            assert service.stats()["breaker"]["state"] == "open"
            time.sleep(0.25)
            assert client.discover(traj, min_length=6)["distance"] >= 0.0
            assert service.stats()["breaker"]["state"] == "closed"

    def test_reload_fault_keeps_old_snapshot_registered(self, tmp_path):
        snap = tmp_path / "corpus"
        save_snapshot(CorpusIndex(make_corpus(seed=3), "euclidean"), snap)
        with running_service(snapshot_dir=snap) as (service, client):
            before = client.join(
                {"snapshot": "corpus"}, {"snapshot": "corpus"}, theta=9.0
            )
            # Rebuild the snapshot on disk, then fail the first remap
            # attempt (arming happened after the initial load, so the
            # reload is this failpoint's first hit).
            shutil.rmtree(snap)
            save_snapshot(
                CorpusIndex(make_corpus(seed=4), "euclidean"), snap
            )
            faults.arm("service.reload=raise:SnapshotError@1%1")
            assert service.check_snapshots() == []
            assert service.stats()["counters"]["reload_errors"] == 1
            # The old registration still answers.
            again = client.join(
                {"snapshot": "corpus"}, {"snapshot": "corpus"}, theta=9.0
            )
            assert again["matches"] == before["matches"]
            # The next sweep succeeds and swaps the rebuilt corpus in.
            assert service.check_snapshots() == ["corpus"]


# ----------------------------------------------------------------------
# Client: keep-alive, reconnect, retries
# ----------------------------------------------------------------------
class TestClientTransport:
    def test_keep_alive_reuses_one_connection(self):
        traj = random_walk(50, seed=1)
        with running_service() as (_, client):
            for _ in range(4):
                client.health()
            client.discover(traj, min_length=6)
            assert client.transport_stats["connections_opened"] == 1
            client.close()

    def test_retries_mask_transient_worker_crashes(self):
        traj = random_walk(50, seed=2)
        with running_service() as (service, client):
            client.retries = 3
            client.backoff_base = 0.01
            client.backoff_cap = 0.05
            ref = client.discover(traj, min_length=6)
            faults.arm("service.execute=raise:WorkerCrashError%2")
            got = client.discover(traj, min_length=6)
            assert got == ref
            assert client.transport_stats["retries"] >= 2
            assert service.stats()["counters"]["worker_crashes"] == 2

    def test_bad_request_is_never_retried(self):
        with running_service() as (_, client):
            before = client.transport_stats["retries"]
            with pytest.raises(BadRequestError):
                client.call("discover", {"min_length": 6})
            assert client.transport_stats["retries"] == before

    def test_stale_keepalive_socket_reconnects_transparently(self):
        srv = socket.socket()
        srv.bind(("127.0.0.1", 0))
        srv.listen(2)
        port = srv.getsockname()[1]
        body = json.dumps({"ok": True, "result": "pong"}).encode()
        resp = (
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n"
            + body
        )

        def serve_then_close():
            for _ in range(2):
                conn, _addr = srv.accept()
                conn.recv(65536)
                conn.sendall(resp)
                conn.close()  # peer-close with no Connection: close

        thread = threading.Thread(target=serve_then_close, daemon=True)
        thread.start()
        client = ServiceClient("127.0.0.1", port, retries=0)
        try:
            assert client._http("GET", "/healthz", None, None)["ok"]
            # The pooled socket is now half-dead; the next request
            # must transparently reconnect, not fail.
            assert client._http("GET", "/healthz", None, None)["ok"]
            assert client.transport_stats["reconnects"] == 1
            assert client.transport_stats["connections_opened"] == 2
        finally:
            client.close()
            srv.close()
            thread.join(timeout=5.0)

    def test_decorrelated_jitter_honours_retry_after_floor(self):
        pauses = []

        class FixedRng:
            def uniform(self, low, high):
                return high  # deterministic: always the upper bound

        with running_service(
            breaker_threshold=1, breaker_cooldown=5.0,
        ) as (service, client):
            client.retries = 0
            traj = random_walk(50, seed=3)
            faults.arm("service.execute=raise:WorkerCrashError%1")
            with pytest.raises(WorkerCrashedError):
                client.discover(traj, min_length=6)
            assert service.stats()["breaker"]["state"] == "open"
            retrier = ServiceClient(
                port=client.port, retries=2, backoff_base=0.01,
                backoff_cap=0.02, rng=FixedRng(), sleep=pauses.append,
            )
            with pytest.raises(ServiceDegradedError):
                retrier.discover(traj, min_length=6)
            retrier.close()
        # Both pauses were floored by the server's retry_after, not
        # the (much smaller) jittered backoff.
        assert len(pauses) == 2
        assert all(p > 1.0 for p in pauses)

    def test_unreachable_server_raises_after_budget(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here now
        pauses = []
        client = ServiceClient(
            "127.0.0.1", port, retries=2, backoff_base=0.01,
            backoff_cap=0.02, sleep=pauses.append,
        )
        from repro.service import ServiceError
        with pytest.raises(ServiceError, match="unreachable"):
            client.health()
        assert len(pauses) == 2


# ----------------------------------------------------------------------
# Fleet: restart backoff
# ----------------------------------------------------------------------
class TestFleetBackoff:
    def test_crash_loop_grows_backoff_then_recovers(self):
        faults.arm("fleet.worker_boot=exit:7")
        fleet = ServiceFleet(
            workers=1,
            restart_backoff_base=0.05,
            restart_backoff_cap=0.4,
            restart_healthy_interval=1.0,
        )
        fleet.start()
        try:
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                stats = fleet.stats()
                if stats["restart_backoffs"][0] >= 0.4:
                    break
                time.sleep(0.05)
            stats = fleet.stats()
            assert stats["restart_backoffs"][0] == 0.4  # capped
            assert stats["restarts"] >= 3
            assert stats["alive"] == 0

            # Disarm: the next respawn boots cleanly, and after the
            # healthy interval the slot's crash history is forgiven.
            faults.disarm()
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                stats = fleet.stats()
                if stats["alive"] == 1 and stats["restart_backoffs"][0] == 0.0:
                    break
                time.sleep(0.1)
            stats = fleet.stats()
            assert stats["alive"] == 1
            assert stats["restart_backoffs"][0] == 0.0
            client = ServiceClient(fleet.host, fleet.port, retries=5,
                                   backoff_base=0.1, backoff_cap=0.5)
            assert client.health()["ok"]
            client.close()
        finally:
            fleet.stop()

    def test_backoff_knobs_are_validated(self):
        with pytest.raises(ValueError):
            ServiceFleet(restart_backoff_base=0.0)
        with pytest.raises(ValueError):
            ServiceFleet(restart_backoff_base=1.0, restart_backoff_cap=0.5)
        with pytest.raises(ValueError):
            ServiceFleet(restart_healthy_interval=0.0)
