"""Algorithm agreement: BruteDP == BTM == GTM == GTM* on random data.

This is the master exactness suite.  BruteDP is itself validated
against a fully independent O(n^4) enumeration on tiny inputs, and all
other algorithms (in every variant) must match BruteDP on seeded random
walks, in both search modes, under both ground metrics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BTM,
    BruteDP,
    GTM,
    GTMStar,
    MotifTimeout,
    SearchStats,
    cross_space,
    self_space,
)
from repro.distances import dfd_matrix
from repro.distances.ground import (
    DenseGroundMatrix,
    LazyGroundMatrix,
    cross_ground_matrix,
    ground_matrix,
)

from repro.testing import random_walk_points, walk_matrix


def naive_motif(dmat, space):
    """Fully independent O(n^4) reference (no shared DP, no pruning)."""
    best, arg = np.inf, None
    n_rows, n_cols = dmat.shape
    for i in range(n_rows):
        for ie in range(i + 1, n_rows):
            for j in range(n_cols):
                for je in range(j + 1, n_cols):
                    if not space.is_valid_candidate(i, ie, j, je):
                        continue
                    d = dfd_matrix(dmat[i : ie + 1, j : je + 1])
                    if d < best:
                        best, arg = d, (i, ie, j, je)
    return best, arg


class TestBruteAgainstNaive:
    @pytest.mark.parametrize("seed", range(3))
    def test_self_mode(self, seed):
        n, xi = 13, 2
        dmat = walk_matrix(n, seed)
        space = self_space(n, xi)
        want, _ = naive_motif(dmat, space)
        got, arg = BruteDP().search(DenseGroundMatrix(dmat), space)
        assert got == pytest.approx(want)
        assert space.is_valid_candidate(*arg)

    @pytest.mark.parametrize("seed", range(3))
    def test_cross_mode(self, seed):
        rng = np.random.default_rng(seed + 50)
        a = rng.normal(size=(11, 2)).cumsum(axis=0)
        b = rng.normal(size=(13, 2)).cumsum(axis=0)
        dmat = cross_ground_matrix(a, b)
        space = cross_space(11, 13, 2)
        want, _ = naive_motif(dmat, space)
        got, _ = BruteDP().search(DenseGroundMatrix(dmat), space)
        assert got == pytest.approx(want)

    def test_timeout_raises(self):
        dmat = walk_matrix(60, 0)
        space = self_space(60, 2)
        with pytest.raises(MotifTimeout):
            BruteDP(timeout=0.0).search(DenseGroundMatrix(dmat), space)


def algorithms_under_test():
    return [
        BTM(),
        BTM(variant="tight"),
        BTM(use_end_kill=False),
        BTM(use_cross=False, use_band=False),
        BTM(use_cell=False),
        GTM(tau=8),
        GTM(tau=4, use_gub=False),
        GTM(tau=16, min_tau=4),
        GTMStar(tau=8),
        GTMStar(tau=4, use_gub=False),
    ]


def run_algo(algo, points_a, points_b, space):
    if isinstance(algo, GTMStar):
        oracle = LazyGroundMatrix(points_a, points_b, metric="euclidean")
    else:
        dmat = (
            ground_matrix(points_a)
            if points_b is None
            else cross_ground_matrix(points_a, points_b)
        )
        oracle = DenseGroundMatrix(dmat)
    return algo.search(oracle, space, SearchStats())


class TestAllAlgorithmsAgree:
    @pytest.mark.parametrize("seed", range(5))
    def test_self_mode_sweep(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(28, 60))
        xi = int(rng.integers(2, 6))
        pts = random_walk_points(n, seed + 100)
        space = self_space(n, xi)
        dmat = ground_matrix(pts)
        want, _ = BruteDP().search(DenseGroundMatrix(dmat), space)
        for algo in algorithms_under_test():
            got, arg = run_algo(algo, pts, None, space)
            assert got == pytest.approx(want), type(algo).__name__
            assert space.is_valid_candidate(*arg)
            check = dfd_matrix(dmat[arg[0] : arg[1] + 1, arg[2] : arg[3] + 1])
            assert check == pytest.approx(got)

    @pytest.mark.parametrize("seed", range(4))
    def test_cross_mode_sweep(self, seed):
        rng = np.random.default_rng(seed + 30)
        n, m = int(rng.integers(20, 40)), int(rng.integers(20, 40))
        xi = int(rng.integers(2, 4))
        a = random_walk_points(n, seed + 200)
        b = random_walk_points(m, seed + 300)
        space = cross_space(n, m, xi)
        dmat = cross_ground_matrix(a, b)
        want, _ = BruteDP().search(DenseGroundMatrix(dmat), space)
        for algo in algorithms_under_test():
            got, arg = run_algo(algo, a, b, space)
            assert got == pytest.approx(want), type(algo).__name__
            assert space.is_valid_candidate(*arg)

    def test_haversine_metric_agreement(self):
        rng = np.random.default_rng(77)
        pts = np.column_stack(
            [39.9 + rng.normal(0, 0.01, 40).cumsum() * 0.1,
             116.4 + rng.normal(0, 0.01, 40).cumsum() * 0.1]
        )
        space = self_space(40, 3)
        dmat = ground_matrix(pts, "haversine")
        want, _ = BruteDP().search(DenseGroundMatrix(dmat), space)
        got_btm, _ = BTM().search(DenseGroundMatrix(dmat), space)
        lazy = LazyGroundMatrix(pts, metric="haversine")
        got_star, _ = GTMStar(tau=4).search(lazy, space)
        assert got_btm == pytest.approx(want)
        assert got_star == pytest.approx(want)


class TestAdversarialInputs:
    def test_all_points_identical(self):
        """Every distance zero: motif distance must be exactly 0 and a
        valid pair must still be reported (witness-rule stress)."""
        pts = np.zeros((30, 2))
        space = self_space(30, 3)
        dmat = ground_matrix(pts)
        for algo in [BruteDP(), BTM(), GTM(tau=4), GTMStar(tau=4)]:
            oracle = (
                LazyGroundMatrix(pts, metric="euclidean")
                if isinstance(algo, GTMStar)
                else DenseGroundMatrix(dmat)
            )
            got, arg = algo.search(oracle, space)
            assert got == 0.0
            assert space.is_valid_candidate(*arg)

    def test_all_distances_equal(self):
        """Constant off-diagonal distances: GUB == GLB == motif
        everywhere; exercises the unwitnessed-bsf equality path."""
        n = 24
        dmat = np.full((n, n), 5.0)
        np.fill_diagonal(dmat, 0.0)
        space = self_space(n, 2)
        want, _ = BruteDP().search(DenseGroundMatrix(dmat), space)
        assert want == 5.0
        for algo in [BTM(), GTM(tau=4), GTM(tau=8, use_gub=True)]:
            got, arg = algo.search(DenseGroundMatrix(dmat), space)
            assert got == 5.0
            assert space.is_valid_candidate(*arg)

    def test_two_far_clusters(self):
        """Motif must pair subtrajectories within one cluster."""
        rng = np.random.default_rng(3)
        a = rng.normal(0, 0.1, size=(20, 2))
        b = rng.normal(0, 0.1, size=(20, 2)) + 1000.0
        pts = np.vstack([a, b])
        space = self_space(40, 3)
        dmat = ground_matrix(pts)
        want, _ = BruteDP().search(DenseGroundMatrix(dmat), space)
        got, arg = GTM(tau=4).search(DenseGroundMatrix(dmat), space)
        assert got == pytest.approx(want)
        i, ie, j, je = arg
        # Both subtrajectories live in the same cluster.
        assert (ie < 20 and je < 20) or (i >= 20 and j >= 20)

    def test_monotone_line(self):
        """A straight constant-speed line: nearest valid windows win."""
        pts = np.column_stack([np.arange(30.0), np.zeros(30)])
        space = self_space(30, 3)
        dmat = ground_matrix(pts)
        want, _ = BruteDP().search(DenseGroundMatrix(dmat), space)
        got, _ = BTM().search(DenseGroundMatrix(dmat), space)
        assert got == pytest.approx(want)

    def test_gtm_non_halving_tau_chain(self):
        """Regression (hypothesis seed 1): n=24 drives the default GTM
        through the group-size chain 12 -> 6 -> 3 -> 2, whose last step
        is not an exact halving.  GTM must stay exact."""
        rng = np.random.default_rng(1)
        pts = rng.normal(size=(24, 2)).cumsum(axis=0)
        space = self_space(24, 4)
        dmat = ground_matrix(pts)
        want, _ = BruteDP().search(DenseGroundMatrix(dmat), space)
        got, _ = GTM(tau=12).search(DenseGroundMatrix(dmat), space)
        assert got == pytest.approx(want)

    def test_minimal_feasible_space(self):
        """n = 2 xi + 4: exactly one subset, one candidate."""
        xi = 3
        n = 2 * xi + 4
        pts = random_walk_points(n, 9)
        space = self_space(n, xi)
        dmat = ground_matrix(pts)
        want = dfd_matrix(dmat[0 : xi + 2, xi + 2 : n])
        for algo in [BruteDP(), BTM(), GTM(tau=2), GTMStar(tau=2)]:
            oracle = (
                LazyGroundMatrix(pts, metric="euclidean")
                if isinstance(algo, GTMStar)
                else DenseGroundMatrix(dmat)
            )
            got, arg = algo.search(oracle, space)
            assert got == pytest.approx(want)
            assert arg == (0, xi + 1, xi + 2, n - 1)


class TestApproximateFactor:
    @pytest.mark.parametrize("eps", [0.0, 0.25, 1.0])
    def test_guarantee_holds(self, eps):
        pts = random_walk_points(50, 13)
        space = self_space(50, 3)
        dmat = ground_matrix(pts)
        exact, _ = BruteDP().search(DenseGroundMatrix(dmat), space)
        got, arg = BTM(approx_factor=1.0 + eps).search(DenseGroundMatrix(dmat), space)
        assert got <= (1.0 + eps) * exact + 1e-9
        assert got >= exact - 1e-9
        assert space.is_valid_candidate(*arg)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            BTM(approx_factor=0.5)


class TestConstructorValidation:
    def test_btm_variant(self):
        with pytest.raises(ValueError):
            BTM(variant="loose")

    def test_gtm_tau(self):
        with pytest.raises(ValueError):
            GTM(tau=1)
        with pytest.raises(ValueError):
            GTM(tau=8, min_tau=1)
        with pytest.raises(ValueError):
            GTMStar(tau=0)

    def test_gtm_requires_dense(self):
        pts = random_walk_points(30, 1)
        lazy = LazyGroundMatrix(pts, metric="euclidean")
        with pytest.raises(ValueError):
            GTM().search(lazy, self_space(30, 2))

    def test_tight_requires_dense(self):
        pts = random_walk_points(30, 1)
        lazy = LazyGroundMatrix(pts, metric="euclidean")
        with pytest.raises(ValueError):
            BTM(variant="tight").search(lazy, self_space(30, 2))
