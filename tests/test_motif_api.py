"""Tests for the public discover_motif facade and MotifResult."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    InfeasibleQueryError,
    ReproError,
    Trajectory,
    discover_motif,
    max_feasible_min_length,
    search_space_for,
)
from repro.core import BTM

from repro.testing import random_walk, random_walk_points


class TestDiscoverMotif:
    @pytest.mark.parametrize("algorithm", ["brute", "btm", "gtm", "gtm_star"])
    def test_algorithms_agree_via_facade(self, algorithm):
        traj = random_walk(45, 3)
        result = discover_motif(traj, min_length=3, algorithm=algorithm)
        reference = discover_motif(traj, min_length=3, algorithm="brute")
        assert result.distance == pytest.approx(reference.distance)

    def test_result_structure(self):
        traj = random_walk(40, 4)
        r = discover_motif(traj, min_length=3)
        i, ie, j, je = r.indices
        assert 0 <= i < ie < j < je <= traj.n - 1
        assert ie - i > 3 and je - j > 3
        assert r.first.parent is traj
        assert r.second.parent is traj
        assert not r.first.overlaps(r.second)
        assert r.stats.time_total > 0
        assert "MotifResult" in repr(r)

    def test_accepts_raw_arrays(self):
        pts = random_walk_points(40, 5)
        r = discover_motif(pts, min_length=3)
        assert r.distance >= 0

    def test_cross_mode(self):
        a, b = random_walk(30, 6), random_walk(35, 7)
        r = discover_motif(a, b, min_length=3)
        assert r.first.parent is a
        assert r.second.parent is b
        rb = discover_motif(a, b, min_length=3, algorithm="brute")
        assert r.distance == pytest.approx(rb.distance)

    def test_motif_distance_matches_subtrajectories(self):
        from repro.distances import discrete_frechet

        traj = random_walk(42, 8)
        r = discover_motif(traj, min_length=4)
        direct = discrete_frechet(r.first.points, r.second.points)
        assert direct == pytest.approx(r.distance)

    def test_latlon_uses_haversine_by_default(self):
        rng = np.random.default_rng(1)
        pts = np.column_stack(
            [39.9 + rng.normal(0, 1e-3, 30).cumsum(),
             116.4 + rng.normal(0, 1e-3, 30).cumsum()]
        )
        traj = Trajectory(pts, crs="latlon")
        r = discover_motif(traj, min_length=3)
        r_euclid = discover_motif(traj, min_length=3, metric="euclidean")
        # Haversine distances are in metres, Euclidean in degrees.
        assert r.distance > r_euclid.distance * 1000

    def test_algorithm_options_forwarded(self):
        traj = random_walk(40, 9)
        r = discover_motif(traj, min_length=3, algorithm="gtm", tau=4)
        assert r.distance >= 0

    def test_algorithm_instance_accepted(self):
        traj = random_walk(40, 10)
        r = discover_motif(traj, min_length=3, algorithm=BTM(variant="tight"))
        assert r.distance >= 0

    def test_instance_plus_options_rejected(self):
        traj = random_walk(40, 10)
        with pytest.raises(ReproError):
            discover_motif(traj, min_length=3, algorithm=BTM(), tau=4)

    def test_unknown_algorithm(self):
        with pytest.raises(ReproError):
            discover_motif(random_walk(40, 11), min_length=3, algorithm="magic")

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleQueryError):
            discover_motif(random_walk(10, 12), min_length=5)

    def test_gtm_star_alias(self):
        traj = random_walk(36, 13)
        a = discover_motif(traj, min_length=3, algorithm="gtm_star")
        b = discover_motif(traj, min_length=3, algorithm="gtm*")
        assert a.distance == pytest.approx(b.distance)


class TestHelpers:
    def test_search_space_for(self):
        space = search_space_for(random_walk(30, 1), min_length=4)
        assert space.mode == "self"
        assert space.n_rows == 30
        cross = search_space_for(
            random_walk(30, 1), random_walk(20, 2), min_length=4
        )
        assert cross.mode == "cross"
        assert cross.n_cols == 20

    def test_max_feasible_min_length_self(self):
        for n in (10, 11, 25, 100):
            xi = max_feasible_min_length(n)
            assert xi >= 1
            search_space_for(random_walk(n, 0), min_length=xi)
            with pytest.raises(InfeasibleQueryError):
                search_space_for(random_walk(n, 0), min_length=xi + 1)

    def test_max_feasible_min_length_cross(self):
        n = 12
        xi = max_feasible_min_length(n, cross=True)
        search_space_for(
            random_walk(n, 0), random_walk(n, 1), min_length=xi
        )
        with pytest.raises(InfeasibleQueryError):
            search_space_for(
                random_walk(n, 0), random_walk(n, 1), min_length=xi + 1
            )

    def test_stats_fields_filled(self):
        r = discover_motif(random_walk(50, 14), min_length=3, algorithm="btm")
        s = r.stats
        assert s.subsets_total > 0
        assert s.subsets_expanded >= 1
        assert 0 <= s.pruning_ratio <= 1
        assert abs(sum(s.breakdown().values()) - 1.0) < 1e-9
        assert s.space_bytes > 0
        assert "btm" in s.summary()
