"""Tests for exact sliding-window motif maintenance."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Trajectory, discover_motif
from repro.errors import InfeasibleQueryError, ReproError
from repro.extensions import StreamingMotif

from repro.testing import random_walk_points


class TestLifecycle:
    def test_not_ready_before_minimum(self):
        stream = StreamingMotif(window=30, min_length=3)
        pts = random_walk_points(9, 1)
        for pt in pts:
            assert stream.append(pt) is None
        assert not stream.ready

    def test_ready_at_minimum(self):
        stream = StreamingMotif(window=30, min_length=3)
        result = stream.extend(random_walk_points(10, 2))
        assert stream.ready
        assert result is not None

    def test_window_too_small_rejected(self):
        with pytest.raises(InfeasibleQueryError):
            StreamingMotif(window=9, min_length=3)

    def test_dimension_change_rejected(self):
        stream = StreamingMotif(window=30, min_length=3)
        stream.append([0.0, 0.0])
        with pytest.raises(ReproError):
            stream.append([0.0, 0.0, 0.0])

    def test_buffer_capped_at_window(self):
        stream = StreamingMotif(window=20, min_length=3)
        stream.extend(random_walk_points(50, 3))
        assert stream.size == 20


class TestExactness:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_from_scratch_every_step(self, seed):
        """The streaming answer equals an independent discovery on the
        current window contents after every single append."""
        window, xi = 24, 3
        stream = StreamingMotif(window=window, min_length=xi)
        pts = random_walk_points(45, seed + 10)
        buffered = []
        for pt in pts:
            buffered.append(pt)
            buffered = buffered[-window:]
            got = stream.append(pt)
            if got is None:
                continue
            fresh = discover_motif(
                Trajectory(np.vstack(buffered)), min_length=xi,
                algorithm="btm",
            )
            assert got.distance == pytest.approx(fresh.distance), len(buffered)

    def test_planted_revisit_detected_on_arrival(self):
        """The motif drops to ~0 the moment a revisit completes."""
        rng = np.random.default_rng(7)
        base = rng.normal(size=(40, 2)).cumsum(axis=0)
        revisit = base[5:15] + rng.normal(0, 1e-6, size=(10, 2))
        stream = StreamingMotif(window=60, min_length=6)
        stream.extend(base)
        before = stream.last_result.distance
        result = stream.extend(revisit)
        assert result.distance < 1e-4 < before

    def test_eviction_forgets_old_motif(self):
        """Once the planted pair slides out of the window the motif
        distance grows back."""
        rng = np.random.default_rng(8)
        base = rng.normal(size=(30, 2)).cumsum(axis=0)
        revisit = base[5:15]
        tail = base[-1] + rng.normal(size=(80, 2)).cumsum(axis=0) * 3.0
        stream = StreamingMotif(window=50, min_length=6)
        stream.extend(base)
        small = stream.extend(revisit).distance
        assert small < 1e-9
        after = stream.extend(tail).distance
        assert after > small

    def test_warm_seed_reduces_work(self):
        """With a stable window, warm seeding expands fewer subsets
        than fresh searches would."""
        pts = random_walk_points(80, 9)
        stream = StreamingMotif(window=40, min_length=4)
        stream.extend(pts[:40])
        first_total = stream.subsets_expanded_total
        stream.extend(pts[40:44])
        incremental = stream.subsets_expanded_total - first_total
        # Fresh per-step cost for comparison.
        fresh = discover_motif(
            Trajectory(pts[4:44]), min_length=4, algorithm="btm"
        ).stats.subsets_expanded
        assert incremental / 4 <= fresh * 2  # typically far smaller


class TestWarmSeedReuse:
    """The carried seed distance must not rebuild the O(L^2) matrix."""

    def test_append_does_not_recompute_seed_distance(self, monkeypatch):
        import repro.extensions.streaming as streaming_mod

        pts = random_walk_points(60, 3)
        stream = StreamingMotif(window=40, min_length=4)
        stream.extend(pts[:45])
        # From here on every append carries the previous answer; the
        # full pairwise DFD rebuild must never run on the default path.
        def boom(*_args, **_kwargs):  # pragma: no cover - failure path
            raise AssertionError(
                "warm seed recomputed the full DFD matrix"
            )

        monkeypatch.setattr(streaming_mod, "dfd_matrix", boom)
        for pt in pts[45:55]:
            stream.append(pt)

    def test_verify_seed_flag_recomputes_and_agrees(self):
        pts = random_walk_points(70, 4)
        plain = StreamingMotif(window=40, min_length=4)
        checked = StreamingMotif(window=40, min_length=4, verify_seed=True)
        for pt in pts:
            a = plain.append(pt)
            b = checked.append(pt)  # recomputes + asserts, same answers
            if a is None:
                assert b is None
            else:
                assert a.distance == b.distance
                assert a.indices == b.indices

    def test_seed_distance_stays_exact_across_evictions(self):
        """The shifted witness' carried distance equals a from-scratch
        recompute at every step (shift invariance)."""
        pts = random_walk_points(70, 5)
        stream = StreamingMotif(window=40, min_length=4)
        for k, pt in enumerate(pts):
            result = stream.append(pt)
            if result is None:
                continue
            window = pts[max(0, k + 1 - 40) : k + 1]
            ref = discover_motif(
                Trajectory(window), min_length=4, algorithm="btm"
            )
            assert result.distance == ref.distance
            assert result.indices == ref.indices


class TestWindowIndexSkip:
    """The per-append endpoint/bbox bound (ISSUE 5 satellite): appends
    that provably cannot beat the carried motif skip the rerun, with
    answers identical to the always-search baseline at every step."""

    @staticmethod
    def departing_stream():
        """A tight repeated loop (small motif) followed by a walk that
        marches far away -- every far append should skip."""
        angles = np.linspace(0.0, 2 * np.pi, 12)
        loop = np.stack([np.cos(angles), np.sin(angles)], axis=1)
        rng = np.random.default_rng(11)
        away = rng.normal(size=(40, 2)) * 0.2 + np.linspace(
            [6.0, 6.0], [70.0, 70.0], 40
        )
        return np.concatenate([loop, loop + 0.01, away])

    def test_answers_identical_with_and_without_skipping(self):
        pts = self.departing_stream()
        skipping = StreamingMotif(window=30, min_length=5)
        baseline = StreamingMotif(window=30, min_length=5,
                                  use_window_index=False)
        for pt in pts:
            a = skipping.append(pt)
            b = baseline.append(pt)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.distance == b.distance
                assert a.indices == b.indices
        assert skipping.appends_skipped > 0
        assert baseline.appends_skipped == 0

    def test_skips_counted_and_partition_ready_appends(self):
        pts = self.departing_stream()
        stream = StreamingMotif(window=30, min_length=5)
        ready_appends = 0
        for pt in pts:
            if stream.append(pt) is not None:
                ready_appends += 1
        assert (
            stream.appends_skipped + stream.appends_searched == ready_appends
        )
        assert 0.0 < stream.skip_rate < 1.0

    def test_skipped_append_matches_from_scratch(self):
        """Exactness: even on skipped appends the reported motif equals
        a from-scratch discovery of the current window."""
        pts = self.departing_stream()
        stream = StreamingMotif(window=30, min_length=5)
        for k, pt in enumerate(pts):
            result = stream.append(pt)
            if result is None:
                continue
            window = pts[max(0, k + 1 - 30) : k + 1]
            ref = discover_motif(
                Trajectory(window), min_length=5, algorithm="btm"
            )
            assert result.distance == ref.distance
            assert result.indices == ref.indices

    def test_skip_bound_never_fires_on_tie_heavy_noise(self):
        """Random tie-heavy integer grids keep every point near the
        window; skips must still never change an answer."""
        rng = np.random.default_rng(13)
        pts = rng.integers(0, 4, size=(60, 2)).astype(np.float64)
        skipping = StreamingMotif(window=26, min_length=4)
        baseline = StreamingMotif(window=26, min_length=4,
                                  use_window_index=False)
        for pt in pts:
            a = skipping.append(pt)
            b = baseline.append(pt)
            if a is not None:
                assert a.distance == b.distance
                assert a.indices == b.indices

    def test_skipped_result_is_usable_motif(self):
        pts = self.departing_stream()
        stream = StreamingMotif(window=30, min_length=5)
        result = None
        for pt in pts:
            out = stream.append(pt)
            if out is not None:
                result = out
        assert stream.appends_skipped > 0
        assert result.first.n >= 6 and result.second.n >= 6
        assert (
            result.stats.algorithm == "streaming-skip"
            or result.stats.algorithm.startswith("btm")
        )
