"""Tests for exact sliding-window motif maintenance."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Trajectory, discover_motif
from repro.errors import InfeasibleQueryError, ReproError
from repro.extensions import StreamingMotif

from repro.testing import random_walk_points


class TestLifecycle:
    def test_not_ready_before_minimum(self):
        stream = StreamingMotif(window=30, min_length=3)
        pts = random_walk_points(9, 1)
        for pt in pts:
            assert stream.append(pt) is None
        assert not stream.ready

    def test_ready_at_minimum(self):
        stream = StreamingMotif(window=30, min_length=3)
        result = stream.extend(random_walk_points(10, 2))
        assert stream.ready
        assert result is not None

    def test_window_too_small_rejected(self):
        with pytest.raises(InfeasibleQueryError):
            StreamingMotif(window=9, min_length=3)

    def test_dimension_change_rejected(self):
        stream = StreamingMotif(window=30, min_length=3)
        stream.append([0.0, 0.0])
        with pytest.raises(ReproError):
            stream.append([0.0, 0.0, 0.0])

    def test_buffer_capped_at_window(self):
        stream = StreamingMotif(window=20, min_length=3)
        stream.extend(random_walk_points(50, 3))
        assert stream.size == 20


class TestExactness:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_from_scratch_every_step(self, seed):
        """The streaming answer equals an independent discovery on the
        current window contents after every single append."""
        window, xi = 24, 3
        stream = StreamingMotif(window=window, min_length=xi)
        pts = random_walk_points(45, seed + 10)
        buffered = []
        for pt in pts:
            buffered.append(pt)
            buffered = buffered[-window:]
            got = stream.append(pt)
            if got is None:
                continue
            fresh = discover_motif(
                Trajectory(np.vstack(buffered)), min_length=xi,
                algorithm="btm",
            )
            assert got.distance == pytest.approx(fresh.distance), len(buffered)

    def test_planted_revisit_detected_on_arrival(self):
        """The motif drops to ~0 the moment a revisit completes."""
        rng = np.random.default_rng(7)
        base = rng.normal(size=(40, 2)).cumsum(axis=0)
        revisit = base[5:15] + rng.normal(0, 1e-6, size=(10, 2))
        stream = StreamingMotif(window=60, min_length=6)
        stream.extend(base)
        before = stream.last_result.distance
        result = stream.extend(revisit)
        assert result.distance < 1e-4 < before

    def test_eviction_forgets_old_motif(self):
        """Once the planted pair slides out of the window the motif
        distance grows back."""
        rng = np.random.default_rng(8)
        base = rng.normal(size=(30, 2)).cumsum(axis=0)
        revisit = base[5:15]
        tail = base[-1] + rng.normal(size=(80, 2)).cumsum(axis=0) * 3.0
        stream = StreamingMotif(window=50, min_length=6)
        stream.extend(base)
        small = stream.extend(revisit).distance
        assert small < 1e-9
        after = stream.extend(tail).distance
        assert after > small

    def test_warm_seed_reduces_work(self):
        """With a stable window, warm seeding expands fewer subsets
        than fresh searches would."""
        pts = random_walk_points(80, 9)
        stream = StreamingMotif(window=40, min_length=4)
        stream.extend(pts[:40])
        first_total = stream.subsets_expanded_total
        stream.extend(pts[40:44])
        incremental = stream.subsets_expanded_total - first_total
        # Fresh per-step cost for comparison.
        fresh = discover_motif(
            Trajectory(pts[4:44]), min_length=4, algorithm="btm"
        ).stats.subsets_expanded
        assert incremental / 4 <= fresh * 2  # typically far smaller


class TestWarmSeedReuse:
    """The carried seed distance must not rebuild the O(L^2) matrix."""

    def test_append_does_not_recompute_seed_distance(self, monkeypatch):
        import repro.extensions.streaming as streaming_mod

        pts = random_walk_points(60, 3)
        stream = StreamingMotif(window=40, min_length=4)
        stream.extend(pts[:45])
        # From here on every append carries the previous answer; the
        # full pairwise DFD rebuild must never run on the default path.
        def boom(*_args, **_kwargs):  # pragma: no cover - failure path
            raise AssertionError(
                "warm seed recomputed the full DFD matrix"
            )

        monkeypatch.setattr(streaming_mod, "dfd_matrix", boom)
        for pt in pts[45:55]:
            stream.append(pt)

    def test_verify_seed_flag_recomputes_and_agrees(self):
        pts = random_walk_points(70, 4)
        plain = StreamingMotif(window=40, min_length=4)
        checked = StreamingMotif(window=40, min_length=4, verify_seed=True)
        for pt in pts:
            a = plain.append(pt)
            b = checked.append(pt)  # recomputes + asserts, same answers
            if a is None:
                assert b is None
            else:
                assert a.distance == b.distance
                assert a.indices == b.indices

    def test_seed_distance_stays_exact_across_evictions(self):
        """The shifted witness' carried distance equals a from-scratch
        recompute at every step (shift invariance)."""
        pts = random_walk_points(70, 5)
        stream = StreamingMotif(window=40, min_length=4)
        for k, pt in enumerate(pts):
            result = stream.append(pt)
            if result is None:
                continue
            window = pts[max(0, k + 1 - 40) : k + 1]
            ref = discover_motif(
                Trajectory(window), min_length=4, algorithm="btm"
            )
            assert result.distance == ref.distance
            assert result.indices == ref.indices
