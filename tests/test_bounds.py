"""Safety tests for every lower bound: bound <= exact DFD, always.

The exactness of BTM/GTM rests on these inequalities, so they are
checked exhaustively on small random instances and by hypothesis on
random matrices, in both search modes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.bounds import (
    BoundTables,
    SubsetBounds,
    TightBounds,
    attribute_pruning,
    relaxed_subset_bounds,
    relaxed_subset_bounds_for_pairs,
    tight_subset_bounds,
    _sliding_max,
)
from repro.core.problem import cross_space, self_space
from repro.distances import dfd_matrix
from repro.distances.ground import DenseGroundMatrix

from repro.testing import walk_matrix


def exact_subset_min(dmat, space, i, j):
    """Min DFD over all valid candidates in CS_{i,j} (brute reference)."""
    xi = space.xi
    best = np.inf
    for ie in range(i + xi + 1, space.ie_limit(i, j) + 1):
        for je in range(j + xi + 1, space.je_limit(i, j) + 1):
            best = min(best, dfd_matrix(dmat[i : ie + 1, j : je + 1]))
    return best


def spaces_for(n, xi):
    return [self_space(n, xi), cross_space(n, n, xi)]


class TestTightBoundsSafety:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("xi", [1, 2, 3])
    def test_all_tight_bounds_below_exact(self, seed, xi):
        n = 16
        dmat = walk_matrix(n, seed)
        for space in spaces_for(n, xi):
            tight = TightBounds(space, dmat)
            for i, j in space.start_pairs():
                exact = exact_subset_min(dmat, space, i, j)
                assert dmat[i, j] <= exact + 1e-12
                assert tight.start_cross(i, j) <= exact + 1e-12
                assert tight.band_row(i, j) <= exact + 1e-12
                assert tight.band_col(i, j) <= exact + 1e-12


class TestRelaxedBoundsSafety:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("xi", [1, 2, 3])
    def test_relaxed_below_tight(self, seed, xi):
        n = 18
        dmat = walk_matrix(n, seed)
        for space in spaces_for(n, xi):
            tables = BoundTables.build(space, DenseGroundMatrix(dmat))
            tight = TightBounds(space, dmat)
            for i, j in space.start_pairs():
                assert tables.start_cross(i, j) <= tight.start_cross(i, j) + 1e-12
                assert tables.band(i, j) <= tight.band(i, j) + 1e-12

    @pytest.mark.parametrize("seed", range(3))
    def test_relaxed_below_exact(self, seed):
        n, xi = 16, 2
        dmat = walk_matrix(n, seed)
        for space in spaces_for(n, xi):
            tables = BoundTables.build(space, DenseGroundMatrix(dmat))
            for i, j in space.start_pairs():
                exact = exact_subset_min(dmat, space, i, j)
                assert tables.start_cross(i, j) <= exact + 1e-12
                assert tables.band(i, j) <= exact + 1e-12

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(10, 16), st.just(2)),
            elements=st.floats(-10, 10, allow_nan=False),
        ),
        st.integers(1, 2),
    )
    @settings(max_examples=25, deadline=None)
    def test_relaxed_safety_property(self, pts, xi):
        from repro.distances.ground import ground_matrix

        n = pts.shape[0]
        if n < 2 * xi + 4:
            return
        dmat = ground_matrix(pts)
        space = self_space(n, xi)
        tables = BoundTables.build(space, DenseGroundMatrix(dmat))
        for i, j in space.start_pairs():
            exact = exact_subset_min(dmat, space, i, j)
            combined = max(
                dmat[i, j], tables.start_cross(i, j), tables.band(i, j)
            )
            assert combined <= exact + 1e-9


class TestEndKillThreshold:
    @pytest.mark.parametrize("seed", range(3))
    def test_min_form_bounds_single_axis_extensions(self, seed):
        """The safe kill threshold must lower-bound every candidate
        whose path passes the killed cell, including single-axis
        extensions (the case the paper's max-form misses)."""
        n, xi = 14, 1
        dmat = walk_matrix(n, seed)
        space = self_space(n, xi)
        tables = BoundTables.build(space, DenseGroundMatrix(dmat))
        for i, j in space.start_pairs():
            for ie in range(i + 1, space.ie_limit(i, j) + 1):
                for je in range(j + 1, n - 1):
                    thresh = tables.end_kill_threshold(ie, je)
                    if not np.isfinite(thresh):
                        continue
                    # Right extension: candidate (i, ie, j, jc), jc > je.
                    for jc in range(je + 1, n):
                        if space.is_valid_candidate(i, ie, j, jc):
                            # Only paths via (ie, je) are constrained, and
                            # the straight-right suffix costs >= Rmin[je].
                            path_cost = max(
                                dfd_matrix(dmat[i : ie + 1, j : je + 1]),
                                dmat[ie, je + 1 : jc + 1].max(),
                            )
                            assert thresh <= path_cost + 1e-12


class TestSubsetBoundAssembly:
    def test_relaxed_vs_tight_components_consistent(self):
        n, xi = 20, 2
        dmat = walk_matrix(n, 7)
        space = self_space(n, xi)
        oracle = DenseGroundMatrix(dmat)
        tables = BoundTables.build(space, oracle)
        relaxed = relaxed_subset_bounds(space, oracle, tables)
        tight = tight_subset_bounds(space, dmat)
        assert len(relaxed) == len(tight) == space.count_start_pairs()
        assert np.array_equal(relaxed.i_idx, tight.i_idx)
        assert np.array_equal(relaxed.lb_cell, tight.lb_cell)
        assert (relaxed.lb_cross <= tight.lb_cross + 1e-12).all()
        assert (relaxed.lb_band <= tight.lb_band + 1e-12).all()

    def test_combined_is_max_of_enabled(self):
        n, xi = 16, 2
        dmat = walk_matrix(n, 8)
        space = self_space(n, xi)
        oracle = DenseGroundMatrix(dmat)
        tables = BoundTables.build(space, oracle)
        full = relaxed_subset_bounds(space, oracle, tables)
        expected = np.maximum(full.lb_cell, np.maximum(full.lb_cross, full.lb_band))
        assert np.allclose(full.combined, expected)
        cell_only = relaxed_subset_bounds(
            space, oracle, tables, use_cross=False, use_band=False
        )
        assert np.allclose(cell_only.combined, cell_only.lb_cell)

    def test_for_pairs_matches_full_enumeration(self):
        n, xi = 18, 2
        dmat = walk_matrix(n, 9)
        space = self_space(n, xi)
        oracle = DenseGroundMatrix(dmat)
        tables = BoundTables.build(space, oracle)
        full = relaxed_subset_bounds(space, oracle, tables)
        subset = relaxed_subset_bounds_for_pairs(
            space, oracle, tables, full.i_idx, full.j_idx
        )
        assert np.allclose(full.combined, subset.combined)
        assert np.allclose(full.lb_cell, subset.lb_cell)

    def test_order_is_ascending(self):
        n, xi = 16, 2
        dmat = walk_matrix(n, 10)
        space = self_space(n, xi)
        oracle = DenseGroundMatrix(dmat)
        tables = BoundTables.build(space, oracle)
        bounds = relaxed_subset_bounds(space, oracle, tables)
        order = bounds.order()
        sorted_vals = bounds.combined[order]
        assert (np.diff(sorted_vals) >= 0).all()

    def test_empty_space_yields_empty_bounds(self):
        # Smallest feasible space still yields exactly one subset.
        space = self_space(10, 3)
        dmat = walk_matrix(10, 11)
        oracle = DenseGroundMatrix(dmat)
        tables = BoundTables.build(space, oracle)
        bounds = relaxed_subset_bounds(space, oracle, tables)
        assert len(bounds) == 1


class TestOrderBlocks:
    """The lazy scheduler must reproduce the eager stable argsort
    exactly -- block boundaries included -- or the engine's "identical
    expansion order" contract breaks under distance ties."""

    @staticmethod
    def _bounds_from_combined(combined: np.ndarray) -> SubsetBounds:
        combined = np.asarray(combined, dtype=np.float64)
        idx = np.arange(combined.shape[0], dtype=np.int64)
        zeros = np.zeros_like(combined)
        return SubsetBounds(idx, idx.copy(), zeros, zeros.copy(),
                            zeros.copy(), combined)

    def _assert_parity(self, bounds: SubsetBounds, block_size: int,
                       within=None):
        blocks = list(bounds.order_blocks(within=within,
                                          block_size=block_size))
        lazy = (np.concatenate(blocks) if blocks
                else np.empty(0, dtype=np.int64))
        if within is None:
            eager = bounds.order()
        else:
            scope = np.asarray(within, dtype=np.int64)
            eager = scope[np.argsort(bounds.combined[scope], kind="stable")]
        assert np.array_equal(lazy, eager)
        # Each yielded block is internally sorted (consumable as-is).
        for block in blocks:
            assert (np.diff(bounds.combined[block]) >= 0).all()

    @pytest.mark.parametrize("block_size", [1, 2, 3, 7, 64])
    def test_tie_heavy_integer_grid_parity(self, block_size):
        rng = np.random.default_rng(12)
        combined = rng.integers(0, 4, size=257).astype(np.float64)
        self._assert_parity(self._bounds_from_combined(combined), block_size)

    def test_all_equal_values_preserve_index_order(self):
        bounds = self._bounds_from_combined(np.zeros(100))
        blocks = list(bounds.order_blocks(block_size=7))
        assert np.array_equal(np.concatenate(blocks), np.arange(100))

    @pytest.mark.parametrize("block_size", [1, 5, 32])
    def test_strided_within_parity(self, block_size):
        """The engine's chunk shares: an ascending strided subset."""
        rng = np.random.default_rng(13)
        combined = rng.integers(0, 3, size=211).astype(np.float64)
        bounds = self._bounds_from_combined(combined)
        for start, stride in ((0, 4), (3, 4), (1, 2)):
            within = np.arange(start, len(combined), stride)
            self._assert_parity(bounds, block_size, within=within)

    def test_real_bounds_with_infinities(self):
        """Relaxed tables carry +inf at undefined edges; the pivot
        selection must cope with inf-valued ties."""
        n, xi = 20, 2
        dmat = np.round(walk_matrix(n, 14) * 2) / 2  # quantise: many ties
        space = self_space(n, xi)
        oracle = DenseGroundMatrix(dmat)
        tables = BoundTables.build(space, oracle)
        bounds = relaxed_subset_bounds(space, oracle, tables)
        self._assert_parity(bounds, 8)

    def test_blocks_grow_geometrically(self):
        bounds = self._bounds_from_combined(np.arange(70.0))
        sizes = [len(b) for b in bounds.order_blocks(block_size=8)]
        assert sizes == [8, 16, 32, 14]

    def test_empty_and_validation(self):
        bounds = self._bounds_from_combined(np.empty(0))
        assert list(bounds.order_blocks()) == []
        with pytest.raises(ValueError):
            list(bounds.order_blocks(block_size=0))


class TestHelpers:
    def test_sliding_max(self):
        vals = np.array([1.0, 5.0, 2.0, 4.0, 3.0])
        out = _sliding_max(vals, 2)
        assert np.allclose(out[:4], [5, 5, 4, 4])
        assert np.isinf(out[4])

    def test_sliding_max_window_one(self):
        vals = np.array([3.0, 1.0])
        assert np.allclose(_sliding_max(vals, 1), vals)

    def test_attribution_sums_to_pruned(self):
        n, xi = 20, 2
        dmat = walk_matrix(n, 12)
        space = self_space(n, xi)
        oracle = DenseGroundMatrix(dmat)
        tables = BoundTables.build(space, oracle)
        bounds = relaxed_subset_bounds(space, oracle, tables)
        expanded = np.zeros(len(bounds), dtype=bool)
        expanded[:3] = True
        cell, cross, band = attribute_pruning(bounds, expanded, bsf=1.0)
        assert cell + cross + band == len(bounds) - 3
