"""Unit and property tests for the discrete Frechet distance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.distances import (
    dfd_decision,
    dfd_matrix,
    dfd_matrix_by_search,
    dfd_matrix_linear_space,
    dfd_matrix_recursive,
    discrete_frechet,
    frechet_path,
)
from repro.errors import TrajectoryError

matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 12), st.integers(1, 12)),
    elements=st.floats(0.0, 100.0, allow_nan=False),
)

point_seqs = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 10), st.just(2)),
    elements=st.floats(-50.0, 50.0, allow_nan=False),
)


class TestKnownValues:
    def test_identical_sequences(self):
        p = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        assert discrete_frechet(p, p) == 0.0

    def test_parallel_lines(self):
        p = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        q = p + np.array([0.0, 3.0])
        assert discrete_frechet(p, q) == pytest.approx(3.0)

    def test_single_points(self):
        assert discrete_frechet([[0.0, 0.0]], [[3.0, 4.0]]) == pytest.approx(5.0)

    def test_classic_backtrack_case(self):
        # The dog must wait: max is forced by the far excursion.
        p = np.array([[0.0, 0.0], [5.0, 0.0], [10.0, 0.0]])
        q = np.array([[0.0, 1.0], [5.0, 8.0], [10.0, 1.0]])
        assert discrete_frechet(p, q) == pytest.approx(8.0)

    def test_value_is_a_ground_distance(self):
        rng = np.random.default_rng(0)
        d = rng.random((7, 9))
        assert dfd_matrix(d) in d

    def test_haversine_metric_option(self):
        p = np.array([[40.0, 116.0], [40.001, 116.0]])
        assert discrete_frechet(p, p, metric="haversine") == 0.0


class TestImplementationAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_all_implementations_agree(self, seed):
        rng = np.random.default_rng(seed)
        d = rng.random((rng.integers(1, 15), rng.integers(1, 15))) * 10
        reference = dfd_matrix(d)
        assert dfd_matrix_recursive(d) == pytest.approx(reference)
        assert dfd_matrix_by_search(d) == pytest.approx(reference)
        assert dfd_matrix_linear_space(d) == pytest.approx(reference)

    @given(matrices)
    @settings(max_examples=60, deadline=None)
    def test_search_equals_dp(self, d):
        assert dfd_matrix_by_search(d) == pytest.approx(dfd_matrix(d))

    @given(matrices)
    @settings(max_examples=40, deadline=None)
    def test_recursive_equals_dp(self, d):
        assert dfd_matrix_recursive(d) == pytest.approx(dfd_matrix(d))


class TestMetricProperties:
    @given(point_seqs, point_seqs)
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, p, q):
        assert discrete_frechet(p, q) == pytest.approx(discrete_frechet(q, p))

    @given(point_seqs, point_seqs, point_seqs)
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality(self, p, q, r):
        pq = discrete_frechet(p, q)
        qr = discrete_frechet(q, r)
        pr = discrete_frechet(p, r)
        assert pr <= pq + qr + 1e-9

    @given(point_seqs)
    @settings(max_examples=30, deadline=None)
    def test_identity(self, p):
        assert discrete_frechet(p, p) == 0.0

    @given(point_seqs, point_seqs)
    @settings(max_examples=30, deadline=None)
    def test_bounded_below_by_endpoints(self, p, q):
        lower = max(
            np.linalg.norm(p[0] - q[0]), np.linalg.norm(p[-1] - q[-1])
        )
        assert discrete_frechet(p, q) >= lower - 1e-9


class TestDecision:
    @pytest.mark.parametrize("seed", range(6))
    def test_decision_matches_value(self, seed):
        rng = np.random.default_rng(seed)
        d = rng.random((10, 8)) * 5
        value = dfd_matrix(d)
        assert dfd_decision(d, value)
        assert dfd_decision(d, value + 1e-9)
        assert not dfd_decision(d, value - 1e-9)

    def test_decision_is_monotone(self):
        rng = np.random.default_rng(9)
        d = rng.random((12, 12))
        value = dfd_matrix(d)
        grid = np.linspace(0, d.max(), 25)
        answers = [dfd_decision(d, eps) for eps in grid]
        assert answers == sorted(answers)  # False... then True...
        assert [eps >= value for eps in grid] == answers

    def test_blocked_start(self):
        d = np.array([[5.0, 0.0], [0.0, 0.0]])
        assert not dfd_decision(d, 1.0)

    def test_single_cell(self):
        assert dfd_decision(np.array([[2.0]]), 2.0)
        assert not dfd_decision(np.array([[2.0]]), 1.9)


class TestPath:
    @pytest.mark.parametrize("seed", range(5))
    def test_path_realises_value(self, seed):
        rng = np.random.default_rng(seed)
        d = rng.random((9, 7)) * 10
        value, path = frechet_path(d)
        assert value == pytest.approx(dfd_matrix(d))
        assert path[0] == (0, 0)
        assert path[-1] == (8, 6)
        # Monotone staircase steps only.
        for (i0, j0), (i1, j1) in zip(path, path[1:]):
            assert (i1 - i0, j1 - j0) in {(0, 1), (1, 0), (1, 1)}
        # The path's max ground distance equals the DFD.
        assert max(d[i, j] for i, j in path) == pytest.approx(value)


class TestValidation:
    def test_empty_matrix_rejected(self):
        with pytest.raises(TrajectoryError):
            dfd_matrix(np.empty((0, 3)))

    def test_1d_rejected(self):
        with pytest.raises(TrajectoryError):
            dfd_matrix(np.zeros(4))

    def test_recursive_size_guard(self):
        with pytest.raises(TrajectoryError):
            dfd_matrix_recursive(np.zeros((600, 600)))

    def test_accepts_trajectory_objects(self, small_walk):
        assert discrete_frechet(small_walk, small_walk) == 0.0
