"""Tests for the continuous Frechet distance (Alt-Godau free space)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.distances import discrete_frechet
from repro.distances.continuous_frechet import (
    _free_interval,
    continuous_frechet,
    continuous_frechet_decision,
)
from repro.errors import TrajectoryError

curves = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 8), st.just(2)),
    elements=st.floats(-10, 10, allow_nan=False),
)


def line(n, y=0.0):
    return np.column_stack([np.linspace(0, 10, n), np.full(n, y)])


class TestFreeInterval:
    def test_full_containment(self):
        assert _free_interval(
            np.array([0.0, 0.0]), np.array([-1.0, 0.0]), np.array([1.0, 0.0]), 2.0
        ) == (0.0, 1.0)

    def test_no_intersection(self):
        assert _free_interval(
            np.array([0.0, 5.0]), np.array([-1.0, 0.0]), np.array([1.0, 0.0]), 1.0
        ) is None

    def test_partial(self):
        lo, hi = _free_interval(
            np.array([0.0, 0.0]), np.array([-2.0, 0.0]), np.array([2.0, 0.0]), 1.0
        )
        assert lo == pytest.approx(0.25)
        assert hi == pytest.approx(0.75)

    def test_degenerate_segment(self):
        p = np.array([0.0, 0.0])
        s = np.array([1.0, 0.0])
        assert _free_interval(p, s, s, 2.0) == (0.0, 1.0)
        assert _free_interval(p, s, s, 0.5) is None


class TestDecision:
    def test_identical_curves(self):
        p = line(5)
        assert continuous_frechet_decision(p, p, 0.0)

    def test_parallel_lines(self):
        p, q = line(5), line(7, y=3.0)
        assert continuous_frechet_decision(p, q, 3.0)
        assert not continuous_frechet_decision(p, q, 2.9)

    def test_endpoints_gate(self):
        p = line(4)
        q = p + np.array([0.0, 0.1])
        q[-1] += np.array([0.0, 5.0])
        assert not continuous_frechet_decision(p, q, 1.0)

    def test_single_points(self):
        assert continuous_frechet_decision([[0, 0]], [[3, 4]], 5.0)
        assert not continuous_frechet_decision([[0, 0]], [[3, 4]], 4.9)

    def test_point_vs_segment(self):
        point = [[0.0, 0.0]]
        seg = [[-1.0, 1.0], [1.0, 1.0]]
        assert continuous_frechet_decision(point, seg, 1.5)
        assert not continuous_frechet_decision(point, seg, 0.9)

    def test_backtracking_required(self):
        # Q makes a far excursion P cannot follow cheaply.
        p = np.array([[0.0, 0.0], [10.0, 0.0]])
        q = np.array([[0.0, 0.0], [5.0, 7.0], [10.0, 0.0]])
        assert not continuous_frechet_decision(p, q, 6.9)
        assert continuous_frechet_decision(p, q, 7.0)

    def test_monotone_in_eps(self):
        rng = np.random.default_rng(0)
        p = rng.normal(size=(6, 2)).cumsum(axis=0)
        q = rng.normal(size=(7, 2)).cumsum(axis=0)
        answers = [
            continuous_frechet_decision(p, q, eps)
            for eps in np.linspace(0, 15, 40)
        ]
        assert answers == sorted(answers)

    def test_negative_eps_rejected(self):
        with pytest.raises(TrajectoryError):
            continuous_frechet_decision(line(3), line(3), -1.0)


class TestValue:
    def test_parallel_lines_exact(self):
        assert continuous_frechet(line(5), line(9, y=3.0), tol=1e-9) == (
            pytest.approx(3.0, abs=1e-6)
        )

    def test_reparameterisation_invariance(self):
        """Densifying a polyline does not change the continuous
        distance -- the key property the discrete version lacks."""
        p = line(3)
        dense = line(40)
        assert continuous_frechet(p, dense, tol=1e-9) == pytest.approx(0.0, abs=1e-6)
        # The discrete distance, by contrast, is forced to match
        # vertices and grows with the density mismatch.
        assert discrete_frechet(p, dense) > 1.0

    @given(curves, curves)
    @settings(max_examples=30, deadline=None)
    def test_bounded_by_discrete(self, p, q):
        fd = continuous_frechet(p, q, tol=1e-6)
        dfd = discrete_frechet(p, q)
        assert fd <= dfd + 1e-5

    @given(curves, curves)
    @settings(max_examples=30, deadline=None)
    def test_lower_bounded_by_endpoints(self, p, q):
        fd = continuous_frechet(p, q, tol=1e-6)
        lower = max(
            np.linalg.norm(p[0] - q[0]), np.linalg.norm(p[-1] - q[-1])
        )
        assert fd >= lower - 1e-6

    @given(curves, curves)
    @settings(max_examples=20, deadline=None)
    def test_decision_consistent_with_value(self, p, q):
        fd = continuous_frechet(p, q, tol=1e-7)
        assert continuous_frechet_decision(p, q, fd + 1e-6)
        lower = max(
            np.linalg.norm(p[0] - q[0]), np.linalg.norm(p[-1] - q[-1])
        )
        if fd - 1e-4 > lower:
            assert not continuous_frechet_decision(p, q, fd - 1e-4)

    @given(curves)
    @settings(max_examples=20, deadline=None)
    def test_identity(self, p):
        assert continuous_frechet(p, p, tol=1e-9) == pytest.approx(0.0, abs=1e-6)

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        p = rng.normal(size=(6, 2)).cumsum(axis=0)
        q = rng.normal(size=(5, 2)).cumsum(axis=0)
        assert continuous_frechet(p, q, tol=1e-8) == pytest.approx(
            continuous_frechet(q, p, tol=1e-8), abs=1e-6
        )

    def test_tol_validation(self):
        with pytest.raises(TrajectoryError):
            continuous_frechet(line(3), line(3), tol=0.0)
