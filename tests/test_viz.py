"""Tests for the ASCII visualisation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import discover_motif
from repro.datasets import make_trajectory
from repro.distances import frechet_path, ground_matrix
from repro.errors import ReproError
from repro.viz import render_matrix, render_motif, render_series, render_trajectory

from repro.testing import random_walk


class TestRenderTrajectory:
    def test_dimensions(self):
        art = render_trajectory(random_walk(100, 1), width=40, height=12)
        lines = art.splitlines()
        assert len(lines) == 12
        assert all(len(line) == 40 for line in lines)

    def test_contains_track_dots(self):
        art = render_trajectory(random_walk(100, 2))
        assert "." in art

    def test_highlights_drawn(self):
        art = render_trajectory(
            random_walk(100, 3), highlights={"A": (0, 20), "B": (50, 70)}
        )
        assert "A" in art and "B" in art

    def test_highlight_bounds_checked(self):
        with pytest.raises(ReproError):
            render_trajectory(random_walk(50, 4), highlights={"A": (40, 60)})

    def test_canvas_validation(self):
        with pytest.raises(ReproError):
            render_trajectory(random_walk(50, 5), width=4, height=2)

    def test_latlon_swaps_axes(self):
        t = make_trajectory("geolife", 100, seed=1)
        art = render_trajectory(t)
        assert len(art.splitlines()) == 24

    def test_degenerate_single_location(self):
        from repro.trajectory import Trajectory

        t = Trajectory(np.zeros((10, 2)) + 5.0)
        art = render_trajectory(t)
        assert "." in art


class TestRenderMotif:
    def test_motif_overlay(self):
        traj = random_walk(120, 6)
        result = discover_motif(traj, min_length=5)
        art = render_motif(result)
        assert "A" in art and "B" in art
        assert "DFD" in art

    def test_cross_mode_rejected(self):
        a, b = random_walk(40, 7), random_walk(40, 8)
        result = discover_motif(a, b, min_length=3)
        with pytest.raises(ReproError):
            render_motif(result)


class TestRenderMatrix:
    def test_small_matrix_full_resolution(self, fig5_matrix):
        art = render_matrix(fig5_matrix)
        rows = art.splitlines()
        assert len(rows) == 13  # 12 rows + legend
        assert all(len(r) == 12 for r in rows[:-1])

    def test_downsampling(self):
        rng = np.random.default_rng(0)
        art = render_matrix(rng.random((200, 200)), max_size=40)
        assert len(art.splitlines()[0]) <= 50

    def test_path_overlay(self):
        d = ground_matrix(random_walk(20, 9).points)
        _, path = frechet_path(d)
        art = render_matrix(d, path=path)
        assert "o" in art

    def test_validation(self):
        with pytest.raises(ReproError):
            render_matrix(np.zeros(5))

    def test_constant_matrix(self):
        art = render_matrix(np.ones((5, 5)))
        assert art  # no division by zero


class TestRenderSeries:
    def test_basic_chart(self):
        art = render_series(
            "demo", [100, 200, 400],
            {"btm": [0.1, 0.5, 2.0], "gtm": [0.05, 0.1, 0.4]},
        )
        assert "demo" in art
        assert "o=btm" in art and "x=gtm" in art
        assert "log10" in art

    def test_none_values_skipped(self):
        art = render_series(
            "demo", [1, 2, 3], {"brute": [1.0, None, None]}
        )
        assert "brute" in art

    def test_linear_scale(self):
        art = render_series("demo", [1, 2], {"a": [1.0, 2.0]}, log_y=False)
        assert "linear" in art

    def test_validation(self):
        with pytest.raises(ReproError):
            render_series("demo", [1, 2], {})
        with pytest.raises(ReproError):
            render_series("demo", [1, 2], {"a": [1.0]})
        with pytest.raises(ReproError):
            render_series("demo", [1], {"a": [None]})
