"""MotifEngine: parity with the serial algorithms, caching, batching.

The engine's contract is *byte-identical answers*: whatever the worker
count, executor, or cache state, `MotifEngine` must return exactly the
motif the corresponding serial algorithm returns -- same indices, same
distance -- including under distance ties (the Figure-5 matrix is
integer-valued and tie-heavy, which is what makes it a sharp parity
probe for the witness-resolution pass).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BTM, GTM, GTMStar, discover_motif, self_space
from repro.core.brute import BruteDP
from repro.core.motif import _make_algorithm
from repro.distances.ground import DenseGroundMatrix, ground_matrix
from repro.engine import MotifEngine, deal_indices, plan_chunks
from repro.engine.cache import LRUCache, fingerprint_points
from repro.extensions import StreamingMotif, discover_top_k_motifs
from repro.extensions.join import merge_join_stats, similarity_join
from repro.testing import build_fig5_matrix, random_walk, random_walk_points

ALGOS = ("btm", "gtm", "gtm_star", "brute")


def inline_engine(**kwargs):
    """Deterministic engine running chunk tasks in-process."""
    kwargs.setdefault("executor", "inline")
    return MotifEngine(**kwargs)


# ----------------------------------------------------------------------
# Parity: engine == serial, 1 and N workers
# ----------------------------------------------------------------------
class TestFig5Parity:
    """The tie-heavy paper matrix: every algorithm, every worker count."""

    @pytest.mark.parametrize("algo", ALGOS)
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_matrix_parity(self, fig5_matrix, algo, workers):
        serial = _make_algorithm(algo)
        ref_d, ref_best = serial.search(
            DenseGroundMatrix(fig5_matrix), self_space(12, 1)
        )
        got = inline_engine().discover_matrix(
            fig5_matrix, min_length=1, algorithm=algo, workers=workers
        )
        assert got.distance == ref_d
        assert got.indices == ref_best

    def test_process_pool_parity(self, fig5_matrix):
        with MotifEngine(workers=2) as eng:
            got = eng.discover_matrix(fig5_matrix, min_length=1, algorithm="btm")
        ref_d, ref_best = BTM().search(
            DenseGroundMatrix(fig5_matrix), self_space(12, 1)
        )
        assert (got.distance, got.indices) == (ref_d, ref_best)


class TestWalkParity:
    @pytest.mark.parametrize("algo", ["btm", "gtm_star"])
    @pytest.mark.parametrize("seed", range(3))
    def test_self_mode(self, algo, seed):
        traj = random_walk(70, seed=seed)
        ref = discover_motif(traj, min_length=4, algorithm=algo)
        eng = inline_engine()
        for workers in (1, 2):
            got = eng.discover(
                traj, min_length=4, algorithm=algo, workers=workers,
                cacheable=False,
            )
            assert got.distance == ref.distance
            assert got.indices == ref.indices

    def test_cross_mode(self):
        a, b = random_walk(50, seed=5), random_walk(60, seed=6)
        ref = discover_motif(a, b, min_length=4, algorithm="btm")
        got = inline_engine().discover(
            a, b, min_length=4, algorithm="btm", workers=2, cacheable=False
        )
        assert got.distance == ref.distance
        assert got.indices == ref.indices

    def test_process_pool_self_mode(self):
        traj = random_walk(70, seed=9)
        ref = discover_motif(traj, min_length=4, algorithm="gtm_star")
        with MotifEngine(workers=2) as eng:
            got = eng.discover(
                traj, min_length=4, algorithm="gtm_star", cacheable=False
            )
        assert got.distance == ref.distance
        assert got.indices == ref.indices


class TestSeededSearch:
    """The property the resolution pass relies on: seeding the serial
    search with the exact answer never changes the witness."""

    @pytest.mark.parametrize("algo_cls", [BTM, GTM, GTMStar, BruteDP])
    def test_fig5_seeded_equals_unseeded(self, fig5_matrix, algo_cls):
        oracle = DenseGroundMatrix(fig5_matrix)
        space = self_space(12, 1)
        d0, best0 = algo_cls().search(oracle, space)
        d1, best1 = algo_cls().search(oracle, space, bsf0=d0)
        assert (d1, best1) == (d0, best0)

    @pytest.mark.parametrize("seed", range(3))
    def test_walks_seeded_equals_unseeded(self, seed):
        oracle = DenseGroundMatrix(
            ground_matrix(random_walk_points(60, seed), "euclidean")
        )
        space = self_space(60, 4)
        for algo_cls in (BTM, GTMStar):
            d0, best0 = algo_cls().search(oracle, space)
            d1, best1 = algo_cls().search(oracle, space, bsf0=d0)
            assert (d1, best1) == (d0, best0)

    def test_witnessed_seed_survives(self, fig5_matrix):
        oracle = DenseGroundMatrix(fig5_matrix)
        space = self_space(12, 1)
        d0, best0 = BTM().search(oracle, space)
        d1, best1 = BTM().search(oracle, space, bsf0=d0, best0=best0)
        assert d1 == d0 and best1 is not None


# ----------------------------------------------------------------------
# Caching
# ----------------------------------------------------------------------
class TestCaching:
    def test_oracle_reused_across_calls(self):
        """The ground oracle is shared between queries with different
        xi on the same trajectory -- the engine's core cache promise."""
        traj = random_walk(60, seed=1)
        eng = inline_engine()
        eng.discover(traj, min_length=4, algorithm="btm")
        before = eng.cache_info()["oracle"]
        eng.discover(traj, min_length=5, algorithm="btm")
        after = eng.cache_info()["oracle"]
        assert after["hits"] > before["hits"]
        assert after["misses"] == before["misses"]

    def test_result_cache_returns_identical_object(self):
        traj = random_walk(60, seed=2)
        eng = inline_engine()
        first = eng.discover(traj, min_length=4, algorithm="btm")
        second = eng.discover(traj, min_length=4, algorithm="btm")
        assert second is first

    def test_result_cache_is_workers_independent(self):
        """Serving semantics: identical answers regardless of workers,
        so a warm result short-circuits a parallel request too."""
        traj = random_walk(60, seed=3)
        eng = inline_engine()
        first = eng.discover(traj, min_length=4, algorithm="btm", workers=1)
        second = eng.discover(traj, min_length=4, algorithm="btm", workers=2)
        assert second is first

    def test_equal_content_shares_cache_entries(self):
        pts = random_walk_points(50, seed=4)
        eng = inline_engine()
        eng.discover(pts.copy(), min_length=4, algorithm="btm")
        hit = eng.discover(pts.copy(), min_length=4, algorithm="btm")
        assert eng.cache_info()["results"]["hits"] >= 1
        assert hit.distance == pytest.approx(hit.distance)

    def test_clear_caches(self):
        traj = random_walk(50, seed=5)
        eng = inline_engine()
        eng.discover(traj, min_length=4)
        assert eng.cache_info()["oracle"]["size"] > 0
        eng.clear_caches()
        assert eng.cache_info()["oracle"]["size"] == 0

    def test_disabled_caches_store_nothing(self):
        eng = inline_engine(
            oracle_cache_size=0, tables_cache_size=0, result_cache_size=0
        )
        traj = random_walk(50, seed=6)
        eng.discover(traj, min_length=4)
        info = eng.cache_info()
        assert info["oracle"]["size"] == 0
        assert info["results"]["size"] == 0

    def test_lru_eviction(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") is None
        assert cache.get("b") == 2 and cache.get("c") == 3
        assert len(cache) == 2

    def test_fingerprint_distinguishes_content(self):
        a = random_walk_points(30, seed=1)
        b = random_walk_points(30, seed=2)
        assert fingerprint_points(a) != fingerprint_points(b)
        assert fingerprint_points(a) == fingerprint_points(a.copy())


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
class TestPartition:
    def test_deal_covers_exactly_once(self):
        order = np.arange(17)
        chunks = deal_indices(order, 4)
        assert len(chunks) == 4
        merged = np.sort(np.concatenate(chunks))
        assert np.array_equal(merged, order)

    def test_more_chunks_than_items(self):
        order = np.arange(2)
        chunks = deal_indices(order, 8)
        assert len(chunks) == 2
        assert sum(len(c) for c in chunks) == 2

    def test_plan_chunks_partitions_subsets(self):
        from repro.core.bounds import BoundTables, relaxed_subset_bounds

        oracle = DenseGroundMatrix(
            ground_matrix(random_walk_points(40, seed=7), "euclidean")
        )
        space = self_space(40, 3)
        tables = BoundTables.build(space, oracle)
        bounds = relaxed_subset_bounds(space, oracle, tables)
        chunks = plan_chunks(bounds, 5)
        seen = sorted(
            (int(i), int(j))
            for chunk in chunks
            for i, j in zip(chunk.i_idx, chunk.j_idx)
        )
        expected = sorted(
            (int(i), int(j)) for i, j in zip(bounds.i_idx, bounds.j_idx)
        )
        assert seen == expected


# ----------------------------------------------------------------------
# Batched APIs
# ----------------------------------------------------------------------
class TestDiscoverMany:
    def test_matches_serial_loop_in_order(self):
        items = [random_walk(55, seed=s) for s in (1, 2, 3)]
        eng = inline_engine()
        batch = eng.discover_many(items, min_length=4, algorithm="btm")
        for traj, got in zip(items, batch):
            ref = discover_motif(traj, min_length=4, algorithm="btm")
            assert got.distance == ref.distance
            assert got.indices == ref.indices

    def test_dedupes_identical_queries(self):
        traj = random_walk(55, seed=8)
        eng = inline_engine()
        batch = eng.discover_many([traj, traj, traj], min_length=4)
        assert batch[1] is batch[0] and batch[2] is batch[0]

    def test_mixed_self_and_cross_items(self):
        a, b = random_walk(40, seed=1), random_walk(45, seed=2)
        eng = inline_engine()
        batch = eng.discover_many([a, (a, b)], min_length=3, algorithm="btm")
        ref_self = discover_motif(a, min_length=3, algorithm="btm")
        ref_cross = discover_motif(a, b, min_length=3, algorithm="btm")
        assert batch[0].indices == ref_self.indices
        assert batch[1].indices == ref_cross.indices

    def test_process_pool_matches_serial(self):
        items = [random_walk(55, seed=s) for s in (4, 5)]
        with MotifEngine(workers=2) as eng:
            batch = eng.discover_many(items, min_length=4, algorithm="gtm_star")
        for traj, got in zip(items, batch):
            ref = discover_motif(traj, min_length=4, algorithm="gtm_star")
            assert got.distance == ref.distance
            assert got.indices == ref.indices


class TestTopK:
    def test_matches_direct_extension(self):
        traj = random_walk(60, seed=3)
        ref = discover_top_k_motifs(traj, min_length=4, k=3)
        got = inline_engine().top_k(traj, min_length=4, k=3)
        assert [r.indices for r in got] == [r.indices for r in ref]
        assert [r.distance for r in got] == [r.distance for r in ref]

    def test_second_call_hits_result_cache(self):
        traj = random_walk(60, seed=4)
        eng = inline_engine()
        first = eng.top_k(traj, min_length=4, k=2)
        hits_before = eng.cache_info()["results"]["hits"]
        second = eng.top_k(traj, min_length=4, k=2)
        assert eng.cache_info()["results"]["hits"] == hits_before + 1
        assert second == first

    def test_caller_mutation_cannot_poison_cached_answers(self):
        traj = random_walk(60, seed=4)
        eng = inline_engine()
        ranked = eng.top_k(traj, min_length=4, k=2)
        ranked.clear()
        assert len(eng.top_k(traj, min_length=4, k=2)) == 2
        left = [random_walk(20, seed=s) for s in (1, 2)]
        matches, stats = eng.join(left, left, theta=1e9)
        assert matches
        matches.clear()
        stats.matches = -1
        again, again_stats = eng.join(left, left, theta=1e9)
        assert again and again_stats.matches == len(again)


class TestJoin:
    @staticmethod
    def _collections():
        rng = np.random.default_rng(11)
        base = rng.random((20, 2)).cumsum(axis=0)
        left = [base, base + 0.05, base + 30.0, base[::-1]]
        right = [base + 0.01, base + 50.0, base + 0.2]
        return left, right

    def test_serial_join_delegates(self):
        left, right = self._collections()
        ref_matches, ref_stats = similarity_join(left, right, theta=5.0)
        got_matches, got_stats = inline_engine().join(left, right, theta=5.0)
        assert got_matches == ref_matches
        assert got_stats.matches == ref_stats.matches

    def test_parallel_join_matches_serial(self):
        left, right = self._collections()
        ref_matches, ref_stats = similarity_join(left, right, theta=5.0)
        with MotifEngine(workers=2) as eng:
            got_matches, got_stats = eng.join(left, right, theta=5.0)
        assert got_matches == ref_matches
        assert got_stats.pairs_total == ref_stats.pairs_total
        assert got_stats.matches == ref_stats.matches
        assert got_stats.pruned_total == ref_stats.pruned_total

    def test_single_left_trajectory_join_is_sharded(self):
        """Regression: the old join chunked only the left collection,
        so a single left trajectory got zero parallelism.  The tile
        grid slices the right side instead -- and stays exact."""
        left, right = self._collections()
        single = left[:1]
        ref_matches, ref_stats = similarity_join(single, right, theta=5.0)
        with MotifEngine(workers=3) as eng:
            got_matches, got_stats = eng.join(single, right, theta=5.0)
            pool_tasks = eng.transfer_info()["pool_tasks"]
        assert got_matches == ref_matches
        assert got_stats.pairs_total == ref_stats.pairs_total
        assert got_stats.matches == ref_stats.matches
        assert pool_tasks >= 2  # the right side actually split

    def test_merge_join_stats_is_additive(self):
        left, right = self._collections()
        _, all_stats = similarity_join(left, right, theta=5.0)
        _, first = similarity_join(left[:2], right, theta=5.0)
        _, second = similarity_join(left[2:], right, theta=5.0)
        merged = merge_join_stats([first, second])
        assert merged.pairs_total == all_stats.pairs_total
        assert merged.matches == all_stats.matches
        assert merged.decisions == all_stats.decisions


class TestStreamingIntegration:
    def test_streaming_uses_injected_engine(self):
        eng = inline_engine(result_cache_size=0)
        stream = StreamingMotif(window=30, min_length=3, engine=eng)
        pts = random_walk_points(35, seed=7)
        result = stream.extend(pts)
        assert result is not None
        assert eng.cache_info()["oracle"]["misses"] > 0

    def test_streaming_exact_through_engine(self):
        stream = StreamingMotif(window=26, min_length=3)
        pts = random_walk_points(32, seed=9)
        for pt in pts:
            result = stream.append(pt)
            if result is None:
                continue
            window = np.vstack(stream._points)
            ref = discover_motif(window, min_length=3, algorithm="btm")
            assert result.distance == pytest.approx(ref.distance)
            assert result.indices == ref.indices


# ----------------------------------------------------------------------
# Configuration and errors
# ----------------------------------------------------------------------
class TestEngineConfig:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            MotifEngine(workers=0)

    def test_rejects_bad_executor(self):
        with pytest.raises(ValueError):
            MotifEngine(executor="threads")

    def test_rejects_bad_chunking(self):
        with pytest.raises(ValueError):
            MotifEngine(chunks_per_worker=0)

    def test_context_manager_closes_pool(self):
        with MotifEngine(workers=2) as eng:
            eng.discover_matrix(
                build_fig5_matrix(), min_length=1, algorithm="btm"
            )
            assert eng._pool is not None
        assert eng._pool is None

    def test_approximate_variant_stays_serial(self):
        """approx_factor changes semantics; the chunked exact scan must
        not be spliced under it."""
        traj = random_walk(60, seed=10)
        eng = inline_engine()
        got = eng.discover(
            traj, min_length=4, algorithm="btm", workers=2,
            approx_factor=1.5, cacheable=False,
        )
        ref = discover_motif(
            traj, min_length=4, algorithm="btm", approx_factor=1.5
        )
        assert got.distance == ref.distance
        assert got.indices == ref.indices
