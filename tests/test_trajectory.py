"""Unit tests for the Trajectory / Subtrajectory data model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrajectoryError
from repro.trajectory import Subtrajectory, Trajectory


def make(n=10, d=2, crs="plane"):
    pts = np.arange(n * d, dtype=float).reshape(n, d)
    return Trajectory(pts, crs=crs)


class TestConstruction:
    def test_basic(self):
        t = make(5)
        assert t.n == len(t) == 5
        assert t.dimensions == 2
        assert t.crs == "plane"

    def test_default_timestamps(self):
        t = make(4)
        assert np.array_equal(t.timestamps, [0, 1, 2, 3])

    def test_custom_timestamps(self):
        t = Trajectory([[0, 0], [1, 1]], [10.0, 20.5])
        assert t.duration == 10.5

    def test_three_dimensional_points(self):
        t = Trajectory(np.zeros((3, 3)) + np.arange(3)[:, None])
        assert t.dimensions == 3

    def test_points_are_read_only(self):
        t = make(3)
        with pytest.raises(ValueError):
            t.points[0, 0] = 99.0

    def test_timestamps_read_only(self):
        t = make(3)
        with pytest.raises(ValueError):
            t.timestamps[0] = -1.0

    def test_id_carried(self):
        t = Trajectory([[0, 0], [1, 1]], trajectory_id="abc")
        assert t.trajectory_id == "abc"
        assert "abc" in repr(t)

    def test_with_id(self):
        t = make(3).with_id("renamed")
        assert t.trajectory_id == "renamed"

    def test_with_timestamps(self):
        t = make(3).with_timestamps([5.0, 6.0, 9.0])
        assert t.duration == 4.0


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(TrajectoryError):
            Trajectory(np.empty((0, 2)))

    def test_rejects_1d(self):
        with pytest.raises(TrajectoryError):
            Trajectory(np.arange(4.0))

    def test_rejects_single_coordinate(self):
        with pytest.raises(TrajectoryError):
            Trajectory(np.zeros((4, 1)))

    def test_rejects_nan(self):
        pts = np.zeros((3, 2))
        pts[1, 0] = np.nan
        with pytest.raises(TrajectoryError):
            Trajectory(pts)

    def test_rejects_inf(self):
        pts = np.zeros((3, 2))
        pts[2, 1] = np.inf
        with pytest.raises(TrajectoryError):
            Trajectory(pts)

    def test_rejects_descending_timestamps(self):
        with pytest.raises(TrajectoryError):
            Trajectory([[0, 0], [1, 1]], [2.0, 1.0])

    def test_rejects_duplicate_timestamps(self):
        with pytest.raises(TrajectoryError):
            Trajectory([[0, 0], [1, 1]], [1.0, 1.0])

    def test_rejects_wrong_timestamp_length(self):
        with pytest.raises(TrajectoryError):
            Trajectory([[0, 0], [1, 1]], [0.0, 1.0, 2.0])

    def test_rejects_unknown_crs(self):
        with pytest.raises(TrajectoryError):
            Trajectory([[0, 0], [1, 1]], crs="mars")

    def test_rejects_nan_timestamps(self):
        with pytest.raises(TrajectoryError):
            Trajectory([[0, 0], [1, 1]], [0.0, np.nan])


class TestIndexing:
    def test_point_access(self):
        t = make(5)
        assert np.array_equal(t[2], [4.0, 5.0])

    def test_slice_returns_trajectory(self):
        t = make(10)
        s = t[2:6]
        assert isinstance(s, Trajectory)
        assert s.n == 4
        assert np.array_equal(s.points[0], t.points[2])
        assert np.array_equal(s.timestamps, t.timestamps[2:6])

    def test_slice_step_rejected(self):
        with pytest.raises(TrajectoryError):
            make(10)[0:8:2]

    def test_empty_slice_rejected(self):
        with pytest.raises(TrajectoryError):
            make(10)[5:5]

    def test_iteration(self):
        assert len(list(make(7))) == 7

    def test_equality_and_hash(self):
        a, b = make(5), make(5)
        assert a == b
        assert hash(a) == hash(b)
        assert a != make(6)
        assert a != Trajectory(make(5).points, crs="latlon")

    def test_equality_other_type(self):
        assert make(3) != "not a trajectory"


class TestSubtrajectory:
    def test_view_basics(self, small_walk):
        v = small_walk.subtrajectory(3, 9)
        assert v.start == 3 and v.end == 9
        assert v.n == len(v) == 7
        assert np.array_equal(v.points, small_walk.points[3:10])
        assert v.crs == small_walk.crs

    def test_time_interval(self, small_walk):
        v = small_walk.subtrajectory(0, 5)
        assert v.time_interval == (0.0, 5.0)
        assert v.duration == 5.0

    def test_invalid_ranges(self, small_walk):
        n = small_walk.n
        for start, end in [(-1, 3), (3, 3), (5, 2), (0, n)]:
            with pytest.raises(TrajectoryError):
                small_walk.subtrajectory(start, end)

    def test_to_trajectory(self, small_walk):
        v = small_walk.subtrajectory(2, 8)
        t = v.to_trajectory()
        assert isinstance(t, Trajectory)
        assert t.n == 7
        assert np.array_equal(t.points, v.points)

    def test_overlap_detection(self, small_walk):
        a = small_walk.subtrajectory(0, 5)
        b = small_walk.subtrajectory(5, 9)
        c = small_walk.subtrajectory(6, 9)
        assert a.overlaps(b)
        assert not a.overlaps(c)
        assert b.overlaps(c)

    def test_overlap_different_parent(self, small_walk, medium_walk):
        a = small_walk.subtrajectory(0, 5)
        b = medium_walk.subtrajectory(0, 5)
        assert not a.overlaps(b)

    def test_containment(self, small_walk):
        outer = small_walk.subtrajectory(2, 10)
        inner = small_walk.subtrajectory(3, 9)
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert outer.contains(outer)

    def test_equality(self, small_walk):
        assert small_walk.subtrajectory(1, 4) == small_walk.subtrajectory(1, 4)
        assert small_walk.subtrajectory(1, 4) != small_walk.subtrajectory(1, 5)
        assert hash(small_walk.subtrajectory(1, 4)) == hash(
            small_walk.subtrajectory(1, 4)
        )

    def test_repr(self, small_walk):
        assert "[3..9]" in repr(small_walk.subtrajectory(3, 9))

    def test_direct_constructor_validates(self, small_walk):
        with pytest.raises(TrajectoryError):
            Subtrajectory(small_walk, 5, 5)
