"""Tests for the performance fast paths added on top of the baseline
kernels: bound metric kernels, the lazy wavefront, and the GTM guards.

These paths exist purely for CPython speed; every test here pins them
to the semantics of the plain implementations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GTM, GTMStar, BruteDP, self_space
from repro.core.bounds import BoundTables
from repro.core.dp import (
    expand_subset_scalar,
    expand_subset_wavefront,
    expand_subset_wavefront_lazy,
)
from repro.distances.ground import (
    DenseGroundMatrix,
    EuclideanMetric,
    HaversineMetric,
    LazyGroundMatrix,
    ground_matrix,
)

from repro.testing import random_walk_points


class TestBoundMetricKernels:
    def test_euclidean_bind_matches_pairwise(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(7, 2)), rng.normal(size=(9, 2))
        m = EuclideanMetric()
        assert np.allclose(m.bind(b)(a), m.pairwise(a, b))

    def test_haversine_bind_matches_pairwise(self):
        rng = np.random.default_rng(1)
        a = np.column_stack([40 + rng.random(6), 116 + rng.random(6)])
        b = np.column_stack([40 + rng.random(8), 116 + rng.random(8)])
        m = HaversineMetric()
        assert np.allclose(m.bind(b)(a), m.pairwise(a, b))

    def test_lazy_oracle_rows_use_bound_kernel(self):
        pts = np.column_stack([40 + np.arange(5) * 0.01, 116 + np.arange(5) * 0.01])
        lazy = LazyGroundMatrix(pts, metric="haversine")
        dense = ground_matrix(pts, "haversine")
        for r in range(5):
            assert np.allclose(lazy.row(r), dense[r])


class TestLazyWavefront:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_dense_wavefront(self, seed):
        n, xi = 30, 3
        pts = random_walk_points(n, seed)
        dmat = ground_matrix(pts)
        space = self_space(n, xi)
        lazy = LazyGroundMatrix(pts, metric="euclidean", cache_rows=8)
        tables = BoundTables.build(space, DenseGroundMatrix(dmat))
        for i, j in list(space.start_pairs())[::5]:
            for bsf0 in (np.inf, 1.0):
                a, arg_a = expand_subset_wavefront(
                    dmat, space, i, j, bsf0, None,
                    cmin=tables.cmin, rmin=tables.rmin,
                )
                b, arg_b = expand_subset_wavefront_lazy(
                    lazy, space, i, j, bsf0, None,
                    cmin=tables.cmin, rmin=tables.rmin,
                )
                assert a == pytest.approx(b)
                assert arg_a == arg_b

    def test_matches_scalar_without_pruning(self):
        n, xi = 24, 2
        pts = random_walk_points(n, 9)
        space = self_space(n, xi)
        lazy = LazyGroundMatrix(pts, metric="euclidean")
        dense = DenseGroundMatrix(ground_matrix(pts))
        i, j = next(iter(space.start_pairs()))
        a, _ = expand_subset_scalar(dense, space, i, j, np.inf, None, prune=False)
        b, _ = expand_subset_wavefront_lazy(lazy, space, i, j, np.inf, None,
                                            prune=False)
        assert a == pytest.approx(b)


class TestGtmGuards:
    @pytest.mark.parametrize("max_groups", [0, 4, 1000])
    def test_dfd_bound_guard_preserves_exactness(self, max_groups):
        pts = random_walk_points(40, 11)
        space = self_space(40, 3)
        dmat = ground_matrix(pts)
        oracle = DenseGroundMatrix(dmat)
        want, _ = BruteDP().search(oracle, space)
        got, _ = GTM(tau=8, dfd_bound_max_groups=max_groups).search(oracle, space)
        assert got == pytest.approx(want)

    def test_gtm_star_cache_rows_parameter(self):
        pts = random_walk_points(36, 12)
        space = self_space(36, 3)
        dmat = ground_matrix(pts)
        want, _ = BruteDP().search(DenseGroundMatrix(dmat), space)
        algo = GTMStar(tau=4, cache_rows=2)
        got, _ = algo.search(LazyGroundMatrix(pts, metric="euclidean",
                                              cache_rows=2), space)
        assert got == pytest.approx(want)

    def test_gtm_star_cache_rows_validation(self):
        with pytest.raises(ValueError):
            GTMStar(cache_rows=0)


class TestDispatcherRouting:
    def test_lazy_oracle_uses_lazy_wavefront(self):
        """The dispatcher must not require `.array` on lazy oracles."""
        from repro.core.dp import expand_subset

        pts = random_walk_points(80, 13)
        space = self_space(80, 3)
        lazy = LazyGroundMatrix(pts, metric="euclidean")
        dense = DenseGroundMatrix(ground_matrix(pts))
        i, j = next(iter(space.start_pairs()))
        a, _ = expand_subset(lazy, space, i, j, np.inf, None)
        b, _ = expand_subset(dense, space, i, j, np.inf, None)
        assert a == pytest.approx(b)

    def test_non_contiguous_matrix_view(self):
        """The strided diagonal trick must honour arbitrary strides."""
        pts = random_walk_points(40, 14)
        big = ground_matrix(pts)
        view = big[::1, ::1][5:35, 5:35]  # offset view, same buffer
        space = self_space(30, 3)
        a, _ = expand_subset_wavefront(view, space, 0, 12, np.inf, None)
        dense = np.ascontiguousarray(view)
        b, _ = expand_subset_wavefront(dense, space, 0, 12, np.inf, None)
        assert a == pytest.approx(b)
