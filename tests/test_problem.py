"""Unit tests for the search-space geometry (index ranges, feasibility)."""

from __future__ import annotations

import pytest

from repro.core.problem import SearchSpace, cross_space, self_space
from repro.errors import InfeasibleQueryError


class TestFeasibility:
    def test_minimum_self_size(self):
        # Need n >= 2 xi + 4: xi=3 -> n >= 10.
        self_space(10, 3)
        with pytest.raises(InfeasibleQueryError):
            self_space(9, 3)

    def test_minimum_cross_size(self):
        cross_space(5, 5, 3)
        with pytest.raises(InfeasibleQueryError):
            cross_space(4, 5, 3)
        with pytest.raises(InfeasibleQueryError):
            cross_space(5, 4, 3)

    def test_xi_validation(self):
        with pytest.raises(InfeasibleQueryError):
            self_space(100, 0)

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            SearchSpace("diagonal", 10, 10, 2)

    def test_self_requires_square(self):
        with pytest.raises(ValueError):
            SearchSpace("self", 10, 12, 2)


class TestStartPairs:
    @pytest.mark.parametrize("n,xi", [(10, 3), (20, 3), (25, 6), (12, 2)])
    def test_every_self_pair_has_a_candidate(self, n, xi):
        space = self_space(n, xi)
        pairs = list(space.start_pairs())
        assert pairs, "feasible space must have start pairs"
        for i, j in pairs:
            ie = i + xi + 1
            je = j + xi + 1
            assert space.is_valid_candidate(i, ie, j, je), (i, ie, j, je)

    @pytest.mark.parametrize("n,m,xi", [(8, 12, 2), (15, 9, 4)])
    def test_every_cross_pair_has_a_candidate(self, n, m, xi):
        space = cross_space(n, m, xi)
        for i, j in space.start_pairs():
            assert space.is_valid_candidate(i, i + xi + 1, j, j + xi + 1)

    def test_no_valid_pair_outside_enumeration(self):
        # Every valid candidate's (i, j) must appear in start_pairs.
        n, xi = 14, 2
        space = self_space(n, xi)
        enumerated = set(space.start_pairs())
        for i in range(n):
            for j in range(n):
                has_candidate = any(
                    space.is_valid_candidate(i, ie, j, je)
                    for ie in range(i + 1, n)
                    for je in range(j + 1, n)
                )
                assert has_candidate == ((i, j) in enumerated), (i, j)

    def test_count_matches_enumeration(self):
        for n, xi in [(12, 2), (20, 4), (30, 5)]:
            space = self_space(n, xi)
            assert space.count_start_pairs() == len(list(space.start_pairs()))

    def test_minimal_space_single_pair(self):
        space = self_space(10, 3)
        assert list(space.start_pairs()) == [(0, 5)]


class TestCandidateValidity:
    def test_self_constraints(self):
        space = self_space(20, 3)
        assert space.is_valid_candidate(0, 4, 5, 9)
        assert not space.is_valid_candidate(0, 3, 5, 9)  # too short
        assert not space.is_valid_candidate(0, 4, 5, 8)  # second too short
        assert not space.is_valid_candidate(0, 5, 5, 9)  # overlap (ie == j)
        assert not space.is_valid_candidate(5, 9, 0, 4)  # wrong order
        assert not space.is_valid_candidate(0, 4, 15, 20)  # je out of range

    def test_cross_allows_any_positions(self):
        space = cross_space(10, 10, 3)
        assert space.is_valid_candidate(5, 9, 0, 4)  # order-free
        assert space.is_valid_candidate(0, 4, 0, 4)  # overlap-free by mode


class TestLimits:
    def test_ie_limit_self_stops_before_j(self):
        space = self_space(20, 3)
        assert space.ie_limit(0, 7) == 6

    def test_ie_limit_cross_full(self):
        space = cross_space(20, 15, 3)
        assert space.ie_limit(0, 7) == 19

    def test_je_limit(self):
        assert self_space(20, 3).je_limit(0, 7) == 19
        assert cross_space(20, 15, 3).je_limit(0, 7) == 14

    def test_total_candidates_estimate_positive(self):
        assert self_space(15, 2).total_candidates_estimate() > 0


class TestBoundRanges:
    def test_row_range_self_excludes_j(self):
        space = self_space(20, 3)
        lo, hi = space.row_bound_range(2, 9)
        assert (lo, hi) == (2, 8)

    def test_row_range_cross_full(self):
        space = cross_space(20, 15, 3)
        assert space.row_bound_range(2, 9) == (2, 19)

    def test_col_range(self):
        assert self_space(20, 3).col_bound_range(2, 9) == (9, 19)

    def test_rmin_cmin_ranges_are_supersets(self):
        # Lemma 2 requirement: relaxation ranges contain the tight ones
        # for every feasible subset.
        space = self_space(24, 3)
        for i, j in space.start_pairs():
            r_lo, r_hi = space.row_bound_range(i, j)
            rm_lo, rm_hi = space.rmin_range(j)
            assert rm_lo <= r_lo and rm_hi >= r_hi
            c_lo, c_hi = space.col_bound_range(i, j)
            cm_lo, cm_hi = space.cmin_range(i)
            assert cm_lo <= c_lo and cm_hi >= c_hi

    def test_cmin_excludes_diagonal_self(self):
        space = self_space(24, 3)
        for i in range(space.i_max + 1):
            lo, _hi = space.cmin_range(i)
            assert lo > i + 1  # never reads dG(i+1, i+1) = 0
