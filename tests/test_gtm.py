"""GTM / GTM*-specific behaviour: levels, stats, timeouts, options."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BTM, GTM, GTMStar, BruteDP, MotifTimeout, SearchStats, self_space
from repro.distances.ground import DenseGroundMatrix, LazyGroundMatrix, ground_matrix

from repro.testing import random_walk_points


def setup_case(n=60, xi=4, seed=21):
    pts = random_walk_points(n, seed)
    dmat = ground_matrix(pts)
    return pts, DenseGroundMatrix(dmat), self_space(n, xi)


class TestGtmLevels:
    def test_level_stats_recorded_per_tau(self):
        _, oracle, space = setup_case()
        stats = SearchStats()
        GTM(tau=16).search(oracle, space, stats)
        assert set(stats.group_levels) == {16, 8, 4, 2}

    def test_min_tau_stops_descent(self):
        _, oracle, space = setup_case()
        stats = SearchStats()
        GTM(tau=16, min_tau=8).search(oracle, space, stats)
        assert set(stats.group_levels) == {16, 8}

    def test_survivor_counts_never_lost_candidates(self):
        """The final level's survivors must contain the motif subset."""
        pts, oracle, space = setup_case()
        want, arg = BruteDP().search(oracle, space)
        stats = SearchStats()
        got, got_arg = GTM(tau=8).search(oracle, space, stats)
        assert got == pytest.approx(want)
        assert stats.group_levels[2] >= 1

    def test_tau_larger_than_n_is_clamped(self):
        _, oracle, space = setup_case(n=40)
        got, _ = GTM(tau=4096).search(oracle, space)
        want, _ = BruteDP().search(oracle, space)
        assert got == pytest.approx(want)

    def test_gub_counts(self):
        _, oracle, space = setup_case()
        stats = SearchStats()
        GTM(tau=8, use_gub=True).search(oracle, space, stats)
        assert stats.gub_tightenings >= 1
        stats_off = SearchStats()
        GTM(tau=8, use_gub=False).search(oracle, space, stats_off)
        assert stats_off.gub_tightenings == 0

    def test_group_pair_counters(self):
        _, oracle, space = setup_case()
        stats = SearchStats()
        GTM(tau=8).search(oracle, space, stats)
        assert stats.group_pairs_considered > 0
        pruned = stats.group_pairs_pruned_pattern + stats.group_pairs_pruned_glb
        assert 0 < pruned <= stats.group_pairs_considered


class TestGtmTimeout:
    def test_gtm_timeout_raises(self):
        pts = random_walk_points(200, 3)
        oracle = DenseGroundMatrix(ground_matrix(pts))
        space = self_space(200, 4)
        with pytest.raises(MotifTimeout):
            GTM(tau=8, timeout=0.0).search(oracle, space)

    def test_btm_timeout_raises(self):
        pts = random_walk_points(200, 3)
        oracle = DenseGroundMatrix(ground_matrix(pts))
        space = self_space(200, 4)
        with pytest.raises(MotifTimeout):
            BTM(timeout=0.0).search(oracle, space)

    def test_gtm_star_timeout_raises(self):
        pts = random_walk_points(200, 3)
        lazy = LazyGroundMatrix(pts, metric="euclidean")
        space = self_space(200, 4)
        with pytest.raises(MotifTimeout):
            GTMStar(tau=4, timeout=0.0).search(lazy, space)


class TestGtmStarBehaviour:
    def test_single_level_only(self):
        pts, _, space = setup_case()
        lazy = LazyGroundMatrix(pts, metric="euclidean")
        stats = SearchStats()
        GTMStar(tau=8).search(lazy, space, stats)
        assert list(stats.group_levels) == [8]  # idea (iii): one pass

    def test_never_materialises_full_matrix(self):
        """The lazy oracle's cache stays bounded by cache_rows."""
        n = 80
        pts = random_walk_points(n, 31)
        lazy = LazyGroundMatrix(pts, metric="euclidean", cache_rows=8)
        space = self_space(n, 4)
        GTMStar(tau=8, cache_rows=8).search(lazy, space)
        assert len(lazy._cache) <= 8

    def test_dense_oracle_also_accepted(self):
        _, oracle, space = setup_case()
        want, _ = BruteDP().search(oracle, space)
        got, _ = GTMStar(tau=8).search(oracle, space)
        assert got == pytest.approx(want)

    def test_space_accounting_below_dense(self):
        n = 300
        pts = random_walk_points(n, 32)
        space = self_space(n, 6)
        lazy = LazyGroundMatrix(pts, metric="euclidean")
        stats_star = SearchStats()
        GTMStar(tau=4).search(lazy, space, stats_star)
        dense = DenseGroundMatrix(ground_matrix(pts))
        stats_btm = SearchStats()
        BTM().search(dense, space, stats_btm)
        assert stats_star.space_bytes < stats_btm.space_bytes


class TestHigherDimensions:
    """The paper: 'directly applicable to higher dimensions'."""

    @pytest.mark.parametrize("dims", [3, 4])
    def test_all_algorithms_agree_in_higher_dims(self, dims):
        rng = np.random.default_rng(33)
        pts = rng.normal(size=(44, dims)).cumsum(axis=0)
        space = self_space(44, 3)
        dmat = ground_matrix(pts)
        want, _ = BruteDP().search(DenseGroundMatrix(dmat), space)
        for algo, oracle in [
            (BTM(), DenseGroundMatrix(dmat)),
            (GTM(tau=4), DenseGroundMatrix(dmat)),
            (GTMStar(tau=4), LazyGroundMatrix(pts, metric="euclidean")),
        ]:
            got, _ = algo.search(oracle, space)
            assert got == pytest.approx(want), type(algo).__name__
