"""Fixture suite for the project-invariant static analyzer.

Every ``RPR0xx`` rule gets at least one snippet that fires it and one
clean counterpart, plus framework-level tests for suppressions (with
their mandatory justifications), JSON output, baselines, and the two
CLI entry points.  The final test runs the analyzer over the real
tree -- the acceptance criterion that ``src tests benchmarks`` stays
clean is enforced by the suite itself.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    META_CODE,
    analyze_paths,
    analyze_source,
    known_codes,
    render_json,
    rule_catalog,
)
from repro.analysis.cli import main as analysis_main

REPO_ROOT = Path(__file__).resolve().parents[1]

WORKER = "src/repro/engine/worker.py"
EXECUTOR = "src/repro/engine/executor.py"
PLANNER = "src/repro/engine/planner.py"
SHM = "src/repro/engine/shm.py"
SERVICE = "src/repro/service/service.py"


def codes(source, path, select=None):
    return [
        f.code
        for f in analyze_source(textwrap.dedent(source), path, select=select)
        if f.active
    ]


# ----------------------------------------------------------------------
# RPR001 -- zero-copy task payloads
# ----------------------------------------------------------------------
def test_rpr001_flags_ndarray_task_field():
    flagged = codes(
        """
        import numpy as np
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class ChunkTask:
            matrix: np.ndarray
        """,
        WORKER,
    )
    assert flagged == ["RPR001"]


def test_rpr001_flags_trajectory_field():
    assert codes(
        """
        from dataclasses import dataclass
        from ..trajectory import Trajectory

        @dataclass
        class QueryTask:
            trajectory: Trajectory
        """,
        WORKER,
    ) == ["RPR001"]


def test_rpr001_allows_refs_and_none_fallbacks():
    assert codes(
        """
        from dataclasses import dataclass
        from typing import Optional
        import numpy as np

        @dataclass(frozen=True)
        class ChunkTask:
            matrix_ref: "SharedArrayRef" = None
            start: int = 0
            stride: int = 1
            matrix: Optional[np.ndarray] = None  # inline fallback slot
        """,
        WORKER,
    ) == []


def test_rpr001_ignores_non_dataclass_and_other_files():
    snippet = """
    import numpy as np

    class Holder:
        matrix: np.ndarray
    """
    assert codes(snippet, WORKER) == []
    dc = """
    import numpy as np
    from dataclasses import dataclass

    @dataclass
    class T:
        matrix: np.ndarray
    """
    assert codes(dc, "src/repro/engine/planner.py") == []


# ----------------------------------------------------------------------
# RPR002 -- shm release reachability
# ----------------------------------------------------------------------
def test_rpr002_flags_unprotected_begin_batch():
    flagged = codes(
        """
        class Executor:
            def close(self):
                self.shm.close()

            def scan(self, dense, tasks, workers):
                with self.scan_lock:
                    self.shm.begin_batch()
                    ref = self.shm.publish("k", dense)
                    results = self.run_chunks(tasks, workers)
                    self.shm.trim()
                return results
        """,
        EXECUTOR,
    )
    assert flagged == ["RPR002"]


def test_rpr002_accepts_finally_trim():
    assert codes(
        """
        class Executor:
            def close(self):
                self.shm.close()

            def scan(self, dense, tasks, workers):
                with self.scan_lock:
                    try:
                        self.shm.begin_batch()
                        ref = self.shm.publish("k", dense)
                        results = self.run_chunks(tasks, workers)
                    finally:
                        self.shm.trim()
                return results
        """,
        EXECUTOR,
    ) == []


def test_rpr002_flags_publish_without_release_method():
    flagged = codes(
        """
        class Leaky:
            def share(self, arr):
                return self.shm.publish("k", arr)
        """,
        EXECUTOR,
    )
    assert flagged == ["RPR002"]


def test_rpr002_flags_shared_memory_without_unlink():
    flagged = codes(
        """
        from multiprocessing import shared_memory

        class Store:
            def make(self, size):
                return shared_memory.SharedMemory(create=True, size=size)
        """,
        SHM,
    )
    assert flagged == ["RPR002"]


def test_rpr002_accepts_shared_memory_with_unlink_path():
    assert codes(
        """
        from multiprocessing import shared_memory

        class Store:
            def make(self, size):
                return shared_memory.SharedMemory(create=True, size=size)

            def destroy(self, segment):
                segment.close()
                segment.unlink()
        """,
        SHM,
    ) == []


def test_rpr002_skips_attach_only_callers():
    # Attaching (create=False / default) is the worker side; no unlink
    # obligation there.
    assert codes(
        """
        from multiprocessing import shared_memory

        def attach(name):
            return shared_memory.SharedMemory(name=name)
        """,
        SHM,
    ) == []


# ----------------------------------------------------------------------
# RPR003 -- cache-key purity
# ----------------------------------------------------------------------
def test_rpr003_flags_clock_read_in_key():
    flagged = codes(
        """
        import time

        def dense_oracle_key(fp, metric):
            return (fp, metric, time.time())
        """,
        PLANNER,
    )
    assert flagged == ["RPR003"]


def test_rpr003_flags_impurity_via_helper():
    flagged = codes(
        """
        import os

        def _salt():
            return os.environ.get("SALT", "")

        def bound_tables_key(fp):
            return (fp, _salt())
        """,
        PLANNER,
    )
    assert flagged == ["RPR003"]
    findings = analyze_source(
        textwrap.dedent(
            """
            import random

            def _noise():
                return random.random()

            def level_slab_key(fp):
                return (fp, _noise())
            """
        ),
        PLANNER,
    )
    assert "via _noise()" in findings[0].message


def test_rpr003_accepts_pure_hash_key():
    assert codes(
        """
        import hashlib

        def fingerprint_array(array):
            digest = hashlib.sha1(array.tobytes())
            return digest.hexdigest()

        def dense_oracle_key(array, metric):
            return (fingerprint_array(array), metric)
        """,
        PLANNER,
    ) == []


def test_rpr003_ignores_non_key_functions():
    # Impurity in a function that is neither an entry point nor called
    # by one is out of scope.
    assert codes(
        """
        import time

        def record_timing():
            return time.time()
        """,
        PLANNER,
    ) == []


# ----------------------------------------------------------------------
# RPR004 -- wall-clock in worker paths
# ----------------------------------------------------------------------
def test_rpr004_flags_time_time():
    assert codes(
        """
        import time

        def discover_chunk(task):
            deadline = time.time() + task.timeout
            return deadline
        """,
        WORKER,
    ) == ["RPR004"]


def test_rpr004_flags_aliased_datetime_now():
    assert codes(
        """
        from datetime import datetime

        def topk_chunk(task):
            return datetime.now()
        """,
        EXECUTOR,
    ) == ["RPR004"]


def test_rpr004_accepts_perf_counter():
    assert codes(
        """
        import time

        def discover_chunk(task):
            started = time.perf_counter()
            return time.perf_counter() - started
        """,
        WORKER,
    ) == []


# ----------------------------------------------------------------------
# RPR005 -- typed service errors
# ----------------------------------------------------------------------
def test_rpr005_flags_bare_except():
    assert codes(
        """
        def handle(req):
            try:
                return req.run()
            except:
                return None
        """,
        SERVICE,
    ) == ["RPR005"]


def test_rpr005_flags_swallowed_broad_handler():
    assert codes(
        """
        def handle(req):
            try:
                return req.run()
            except Exception:
                return None
        """,
        SERVICE,
    ) == ["RPR005"]


def test_rpr005_accepts_protocol_mapping_and_reraise():
    assert codes(
        """
        from .protocol import ServiceError

        def handle(req):
            try:
                return req.run()
            except Exception as exc:
                req.error = ServiceError(f"internal error: {exc}")
        """,
        SERVICE,
    ) == []
    assert codes(
        """
        def handle(req):
            try:
                return req.run()
            except Exception:
                req.cleanup()
                raise
        """,
        SERVICE,
    ) == []


def test_rpr005_ignores_narrow_handlers():
    assert codes(
        """
        def handle(req):
            try:
                return req.run()
            except (ValueError, KeyError):
                return None
        """,
        SERVICE,
    ) == []


# ----------------------------------------------------------------------
# RPR006 -- fork-safe module state
# ----------------------------------------------------------------------
def test_rpr006_flags_module_level_dict_and_list():
    flagged = codes(
        """
        CACHE = {}
        PENDING = []
        """,
        WORKER,
    )
    assert flagged == ["RPR006", "RPR006"]


def test_rpr006_flags_mutable_constructor_calls():
    from collections import OrderedDict  # noqa: F401  (mirrors shm.py)

    assert codes(
        """
        from collections import OrderedDict

        _ATTACHED = OrderedDict()
        """,
        SHM,
    ) == ["RPR006"]


def test_rpr006_accepts_immutable_module_state():
    assert codes(
        """
        _SHARED = None
        FIELDS = ("a", "b")
        LIMIT = 8
        NAMES = frozenset({"x"})
        """,
        WORKER,
    ) == []


def test_rpr006_ignores_function_local_state():
    assert codes(
        """
        def build():
            cache = {}
            return cache
        """,
        WORKER,
    ) == []


# ----------------------------------------------------------------------
# RPR007 -- lock-order cycles
# ----------------------------------------------------------------------
def test_rpr007_flags_opposite_nesting_orders():
    findings = analyze_source(
        textwrap.dedent(
            """
            import threading

            class Service:
                def __init__(self):
                    self.admission_lock = threading.Lock()
                    self.coalesce_lock = threading.Lock()

                def admit(self):
                    with self.admission_lock:
                        with self.coalesce_lock:
                            pass

                def coalesce(self):
                    with self.coalesce_lock:
                        with self.admission_lock:
                            pass
            """
        ),
        SERVICE,
    )
    assert [f.code for f in findings] == ["RPR007"]
    assert "cycle" in findings[0].message


def test_rpr007_flags_cycle_through_method_call():
    assert codes(
        """
        import threading

        class Service:
            def __init__(self):
                self.a_lock = threading.Lock()
                self.b_lock = threading.Lock()

            def outer(self):
                with self.a_lock:
                    self.inner()

            def inner(self):
                with self.b_lock:
                    pass

            def reversed_path(self):
                with self.b_lock:
                    with self.a_lock:
                        pass
        """,
        SERVICE,
    ) == ["RPR007"]


def test_rpr007_flags_plain_lock_reacquire():
    findings = analyze_source(
        textwrap.dedent(
            """
            import threading

            class Service:
                def __init__(self):
                    self.scan_lock = threading.Lock()

                def run(self):
                    with self.scan_lock:
                        with self.scan_lock:
                            pass
            """
        ),
        SERVICE,
    )
    assert [f.code for f in findings] == ["RPR007"]
    assert "re-acquired" in findings[0].message


def test_rpr007_accepts_consistent_order_and_rlock():
    assert codes(
        """
        import threading

        class Service:
            def __init__(self):
                self.a_lock = threading.Lock()
                self.b_lock = threading.Lock()
                self.state_lock = threading.RLock()

            def one(self):
                with self.a_lock:
                    with self.b_lock:
                        pass

            def two(self):
                with self.a_lock:
                    with self.b_lock:
                        pass

            def reenter(self):
                with self.state_lock:
                    with self.state_lock:
                        pass
        """,
        SERVICE,
    ) == []


def test_rpr007_tracks_get_lock_acquisitions():
    # Consistent scan_lock -> get_lock nesting is fine; it only
    # contributes edges, not findings.
    assert codes(
        """
        import threading

        class Executor:
            def __init__(self):
                self.scan_lock = threading.Lock()

            def dispatch(self):
                with self.scan_lock:
                    with self._shared_bsf.get_lock():
                        pass
        """,
        EXECUTOR,
    ) == []


# ----------------------------------------------------------------------
# RPR008 -- crash-safe pool dispatch
# ----------------------------------------------------------------------
def test_rpr008_flags_direct_pool_map():
    assert codes(
        """
        def run(pool, tasks):
            return pool.map(work, tasks)
        """,
        EXECUTOR,
    ) == ["RPR008"]


def test_rpr008_flags_submit_on_pool_attribute():
    assert codes(
        """
        class Engine:
            def run(self, tasks):
                return [self._pool.submit(work, t) for t in tasks]
        """,
        "src/repro/engine/engine.py",
    ) == ["RPR008"]


def test_rpr008_accepts_dispatch_inside_pool_map():
    assert codes(
        """
        class Executor:
            def pool_map(self, fn, tasks, workers):
                pool = self.get_pool(workers)
                return [pool.submit(fn, t) for t in tasks]
        """,
        EXECUTOR,
    ) == []


def test_rpr008_ignores_non_pool_receivers_and_other_paths():
    # submit() on a non-pool receiver is not dispatch...
    assert codes(
        """
        def run(queue, tasks):
            return [queue.submit(t) for t in tasks]
        """,
        EXECUTOR,
    ) == []
    # ...and the rule is scoped to engine/service code.
    assert codes(
        """
        def run(pool, tasks):
            return pool.map(work, tasks)
        """,
        "src/repro/bench/harness.py",
    ) == []


# ----------------------------------------------------------------------
# RPR009 -- no stray output on library paths
# ----------------------------------------------------------------------
def test_rpr009_flags_print_in_library_code():
    assert codes(
        """
        def run(x):
            print("debug", x)
            return x
        """,
        SERVICE,
    ) == ["RPR009"]


def test_rpr009_flags_sys_stdout_write():
    assert codes(
        """
        import sys

        def run(x):
            sys.stdout.write(str(x))
        """,
        SERVICE,
    ) == ["RPR009"]


def test_rpr009_exempts_cli_viz_and_testing_surfaces():
    snippet = """
        def run(x):
            print(x)
        """
    for path in (
        "src/repro/cli.py",
        "src/repro/analysis/cli.py",
        "src/repro/viz.py",
        "src/repro/testing.py",
    ):
        assert codes(snippet, path) == []


def test_rpr009_accepts_logging_and_stderr_free_paths():
    assert codes(
        """
        import logging

        log = logging.getLogger("repro.service")

        def run(x):
            log.warning("slow: %s", x)
        """,
        SERVICE,
    ) == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_suppression_with_justification_is_honoured():
    findings = analyze_source(
        "CACHE = {}  # repro: ignore[RPR006] -- per-process cache by design\n",
        WORKER,
    )
    assert [f.code for f in findings] == ["RPR006"]
    assert findings[0].suppressed
    assert not findings[0].active


def test_standalone_comment_suppresses_next_line():
    findings = analyze_source(
        "# repro: ignore[RPR006] -- attach bookkeeping is per-process\n"
        "CACHE = {}\n",
        WORKER,
    )
    assert [f.suppressed for f in findings] == [True]


def test_suppression_without_justification_is_rejected():
    findings = analyze_source(
        "CACHE = {}  # repro: ignore[RPR006]\n",
        WORKER,
    )
    by_code = {f.code: f for f in findings}
    assert not by_code["RPR006"].suppressed  # waiver not honoured
    assert by_code[META_CODE].active  # and reported as a finding


def test_suppression_with_unknown_code_is_reported():
    findings = analyze_source(
        "CACHE = {}  # repro: ignore[RPR999] -- no such rule\n",
        WORKER,
    )
    assert META_CODE in [f.code for f in findings]
    assert any("RPR999" in f.message for f in findings)


def test_suppression_only_masks_named_code():
    findings = analyze_source(
        "CACHE = {}  # repro: ignore[RPR001] -- wrong code on purpose\n",
        WORKER,
    )
    rpr6 = [f for f in findings if f.code == "RPR006"]
    assert rpr6 and rpr6[0].active


# ----------------------------------------------------------------------
# Output formats, baseline, CLI
# ----------------------------------------------------------------------
def test_json_report_shape():
    report = json.loads(render_json(analyze_source(
        "CACHE = {}\n", WORKER,
    )))
    assert report["version"] == 1
    assert report["summary"]["active"] == 1
    (finding,) = report["findings"]
    assert finding["code"] == "RPR006"
    assert finding["path"] == WORKER
    assert finding["line"] == 1
    assert finding["fingerprint"]
    assert {r["code"] for r in report["rules"]} == set(known_codes()) - {
        META_CODE
    }


def test_rule_catalog_covers_all_nine_rules():
    assert [r["code"] for r in rule_catalog()] == [
        "RPR001", "RPR002", "RPR003", "RPR004",
        "RPR005", "RPR006", "RPR007", "RPR008",
        "RPR009",
    ]


def test_meta_finding_for_syntax_error(tmp_path):
    bad = tmp_path / "src" / "repro" / "broken.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def broken(:\n", encoding="utf-8")
    findings = analyze_paths([str(tmp_path)])
    assert [f.code for f in findings] == [META_CODE]
    assert findings[0].active


def test_cli_baseline_roundtrip(tmp_path, capsys):
    flagged = tmp_path / "src" / "repro" / "engine" / "worker.py"
    flagged.parent.mkdir(parents=True)
    flagged.write_text("CACHE = {}\n", encoding="utf-8")
    baseline = tmp_path / "analysis-baseline.json"

    assert analysis_main([str(flagged)]) == 1
    capsys.readouterr()
    assert analysis_main(
        [str(flagged), "--write-baseline", str(baseline)]
    ) == 0
    capsys.readouterr()
    # With the baseline the same finding is reported but not fatal.
    assert analysis_main([str(flagged), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "[baselined]" in out


def test_cli_json_output_file_and_select(tmp_path, capsys):
    flagged = tmp_path / "src" / "repro" / "engine" / "worker.py"
    flagged.parent.mkdir(parents=True)
    flagged.write_text("CACHE = {}\n", encoding="utf-8")
    out_file = tmp_path / "report.json"

    assert analysis_main(
        [str(flagged), "--format", "json", "--output", str(out_file)]
    ) == 1
    report = json.loads(out_file.read_text(encoding="utf-8"))
    assert report["summary"]["active"] == 1

    capsys.readouterr()
    # Selecting a rule that does not fire on this file exits clean.
    assert analysis_main([str(flagged), "--select", "RPR001"]) == 0
    capsys.readouterr()
    assert analysis_main([str(flagged), "--select", "RPR999"]) == 2


def test_repro_motif_analyze_subcommand(tmp_path, capsys):
    from repro.cli import main as repro_main

    flagged = tmp_path / "src" / "repro" / "engine" / "worker.py"
    flagged.parent.mkdir(parents=True)
    flagged.write_text("CACHE = {}\n", encoding="utf-8")
    assert repro_main(["analyze", str(flagged)]) == 1
    out = capsys.readouterr().out
    assert "RPR006" in out

    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n", encoding="utf-8")
    assert repro_main(["analyze", str(clean)]) == 0


# ----------------------------------------------------------------------
# The tree itself stays clean (the CI acceptance criterion)
# ----------------------------------------------------------------------
def test_repository_is_clean():
    findings = analyze_paths([
        str(REPO_ROOT / "src"),
        str(REPO_ROOT / "tests"),
        str(REPO_ROOT / "benchmarks"),
    ])
    active = [f.render() for f in findings if f.active]
    assert active == []
    # Every suppression in the tree carries a justification -- a bare
    # waiver would have surfaced as an active RPR000 meta finding above.
    assert all(f.suppressed or f.baselined for f in findings)
