"""Worker warm state: shared-memory dG, transfer accounting, lifecycle.

Covers the engine's warm-worker contract:

* corpus workers attach to the parent's published ``dG`` segment
  instead of recomputing it (``stats.ground_builds == 0``);
* no pool task pickles a dense matrix (``transfer_info``);
* ``MotifEngine.close()`` unlinks every segment (no shm leaks, and no
  ``resource_tracker`` complaints at interpreter exit);
* a ``MotifTimeout`` raised mid-chunk neither deadlocks the pool nor
  poisons the shared best-so-far for the next query.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core import MotifTimeout, discover_motif
from repro.engine import (
    MotifEngine,
    SharedArrayStore,
    SharedMatrixStore,
    plan_strides,
    plan_tiles,
    shared_memory_available,
)
from repro.engine.engine import _fork_context
from repro.engine.shm import attach_matrix, attach_slabs
from repro.testing import random_walk, random_walk_points
from repro.trajectory import Trajectory

needs_shm = pytest.mark.skipif(
    not (shared_memory_available() and _fork_context() is not None),
    reason="needs POSIX shared memory and a fork context",
)


# ----------------------------------------------------------------------
# Warm workers
# ----------------------------------------------------------------------
@needs_shm
class TestWarmWorkers:
    def test_repeated_batch_recomputes_no_ground_matrices(self):
        """A warm worker answers a repeated-trajectory batch with zero
        dG builds: every query attaches to the parent's segment."""
        traj_a, traj_b = random_walk(60, seed=1), random_walk(55, seed=2)
        batch = [traj_a, traj_b, traj_a, traj_b, traj_a]
        with MotifEngine(workers=2, result_cache_size=0) as eng:
            results = eng.discover_many(
                batch, min_length=4, algorithm="btm", dedupe=False
            )
            info = eng.transfer_info()
        assert [r.stats.ground_builds for r in results] == [0] * len(batch)
        assert {r.stats.oracle_source for r in results} == {"shared_memory"}
        # One segment per unique trajectory, nothing pickled densely.
        assert info["shm_segments"] == 2
        assert info["dense_bytes_pickled"] == 0
        for traj, got in zip(batch, results):
            ref = discover_motif(traj, min_length=4, algorithm="btm")
            assert got.distance == ref.distance
            assert got.indices == ref.indices

    def test_chunked_scan_ships_matrix_by_reference(self):
        traj = random_walk(70, seed=3)
        with MotifEngine(workers=2) as eng:
            eng.discover(traj, min_length=4, algorithm="btm", cacheable=False)
            eng.top_k(traj, min_length=4, k=3)
            info = eng.transfer_info()
        assert info["pool_tasks"] > 0
        assert info["shm_task_refs"] == info["pool_tasks"]
        assert info["dense_bytes_pickled"] == 0

    def test_shared_memory_opt_out_still_exact(self):
        traj = random_walk(60, seed=4)
        ref = discover_motif(traj, min_length=4, algorithm="btm")
        with MotifEngine(workers=2, shared_memory=False) as eng:
            got = eng.discover(traj, min_length=4, algorithm="btm",
                               cacheable=False)
            info = eng.transfer_info()
        assert (got.distance, got.indices) == (ref.distance, ref.indices)
        assert info["shm_segments"] == 0
        assert info["dense_bytes_pickled"] > 0  # the old pickled path

    def test_publish_is_capacity_bounded_but_never_evicts_own_batch(self):
        """Refs issued during one batch must stay attachable until its
        pool map completes, so a full store refuses (cold fallback)
        rather than evicting same-batch segments; older batches are
        fair game."""
        store = SharedMatrixStore(capacity=2)
        arr = np.ones((2, 2))
        store.begin_batch()
        ref_a, _ = store.publish("a", arr)
        ref_b, _ = store.publish("b", arr)
        assert ref_a is not None and ref_b is not None
        refused, created = store.publish("c", arr)
        assert refused is None and not created
        store.begin_batch()
        ref_d, created_d = store.publish("d", arr)
        assert ref_d is not None and created_d  # evicted a prior-batch LRU
        assert len(store) == 2
        store.close()

    def test_unique_cold_batch_skips_warm_publication(self):
        """Cold unique corpora keep worker-side dG builds (no parent
        serialisation) and lazy GTM* never forces a dense build."""
        items = [random_walk(50, seed=s) for s in (20, 21)]
        with MotifEngine(workers=2, result_cache_size=0) as eng:
            cold = eng.discover_many(items, min_length=3, algorithm="btm",
                                     dedupe=False)
            assert eng.transfer_info()["shm_segments"] == 0
            assert {r.stats.oracle_source for r in cold} == {"dense"}
            assert all(r.stats.ground_builds == 1 for r in cold)
            lazy = eng.discover_many([items[0]] * 3, min_length=3,
                                     algorithm="gtm_star", dedupe=False)
            assert eng.transfer_info()["shm_segments"] == 0
            assert {r.stats.oracle_source for r in lazy} == {"lazy"}

    def test_attach_cache_reuses_mapping(self):
        store = SharedMatrixStore()
        arr = np.arange(12.0).reshape(3, 4)
        ref, created = store.publish("key", arr)
        assert created and ref is not None
        again, created_again = store.publish("key", arr)
        assert again == ref and not created_again
        first = attach_matrix(ref)
        second = attach_matrix(ref)
        assert first is second
        assert np.array_equal(first, arr)
        store.close()


# ----------------------------------------------------------------------
# Generic slab groups (the zero-copy bound pipeline's substrate)
# ----------------------------------------------------------------------
@needs_shm
class TestSharedArrayStore:
    def test_multi_slab_roundtrip_preserves_dtypes(self):
        store = SharedArrayStore()
        slabs = {
            "i_idx": np.arange(7, dtype=np.int64),
            "combined": np.linspace(0.0, 1.0, 7),
            "cmin": np.array([np.inf, 0.5, 2.0]),
        }
        ref, created = store.publish("key", slabs)
        assert created and ref is not None
        assert {field for field, *_ in ref.fields} == set(slabs)
        assert ref.nbytes == sum(a.nbytes for a in slabs.values())
        attached = attach_slabs(ref)
        for field, expected in slabs.items():
            assert attached[field].dtype == expected.dtype
            assert np.array_equal(attached[field], expected)
        store.close()

    def test_zero_size_slab_is_shareable(self):
        """An empty search space still publishes (and attaches) fine."""
        store = SharedArrayStore()
        ref, created = store.publish(
            "empty", {"i_idx": np.empty(0, dtype=np.int64), "x": np.ones(2)}
        )
        assert created
        attached = attach_slabs(ref)
        assert attached["i_idx"].shape == (0,)
        assert np.array_equal(attached["x"], np.ones(2))
        store.close()


# ----------------------------------------------------------------------
# Zero-copy bound pipeline
# ----------------------------------------------------------------------
@needs_shm
class TestSharedBounds:
    def test_chunk_tasks_carry_bounds_by_reference(self):
        """Every chunk-scan task resolves its bound arrays from a
        shared segment: zero SubsetBounds bytes through the pipe."""
        traj = random_walk(70, seed=11)
        with MotifEngine(workers=2) as eng:
            eng.discover(traj, min_length=4, algorithm="btm", cacheable=False)
            eng.top_k(traj, min_length=4, k=3)
            info = eng.transfer_info()
        assert info["pool_tasks"] > 0
        assert info["shm_bounds_refs"] == info["pool_tasks"]
        assert info["bounds_bytes_pickled"] == 0
        assert info["shm_bounds_segments"] >= 1
        assert info["shm_bounds_bytes"] > 0

    def test_bounds_segments_unlinked_on_close(self):
        """Mirrors the dG lifecycle test: the bound segment dies with
        the engine -- no shm leak from the bound pipeline."""
        from multiprocessing import shared_memory

        eng = MotifEngine(workers=2)
        eng.discover(random_walk(60, seed=12), min_length=4,
                     algorithm="btm", cacheable=False)
        names = [ref.name for ref in eng._shm.refs()]
        # dG and the bound slabs are distinct segments.
        assert len(names) >= 2, names
        eng.close()
        assert len(eng._shm) == 0
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_legacy_transfer_path_still_exact_and_counted(self):
        """shared_bounds=False restores the PR 2 shape: per-chunk
        slices through the pipe, counted by the new byte counter."""
        traj = random_walk(60, seed=13)
        ref = discover_motif(traj, min_length=4, algorithm="btm")
        with MotifEngine(workers=2, shared_bounds=False) as eng:
            got = eng.discover(traj, min_length=4, algorithm="btm",
                               cacheable=False)
            info = eng.transfer_info()
        assert (got.distance, got.indices) == (ref.distance, ref.indices)
        assert info["bounds_bytes_pickled"] > 0
        assert info["shm_bounds_refs"] == 0
        # dG itself still rides shared memory on this configuration.
        assert info["dense_bytes_pickled"] == 0

    def test_grouped_gtm_pool_path_pickles_no_dense_payloads(self):
        """The parallel GTM grouping phase: exact answer, and neither
        dG, bounds, nor group levels pickled into pool tasks."""
        traj = random_walk(90, seed=14)
        ref = discover_motif(traj, min_length=4, algorithm="gtm", tau=8)
        with MotifEngine(workers=2) as eng:
            got = eng.discover(traj, min_length=4, algorithm="gtm", tau=8,
                               cacheable=False)
            info = eng.transfer_info()
        assert (got.distance, got.indices) == (ref.distance, ref.indices)
        assert info["dense_bytes_pickled"] == 0
        assert info["bounds_bytes_pickled"] == 0
        assert info["group_level_bytes_pickled"] == 0
        assert info["pool_tasks"] > 0


class TestGroupingTaskFunctions:
    """The sharded grouping kernels equal their serial counterparts --
    with inline payloads (no shared memory required), which is also
    the pool path on hosts without POSIX shm."""

    @staticmethod
    def _level_and_space():
        from repro.core.grouping import GroupLevel
        from repro.core.problem import self_space
        from repro.distances.ground import ground_matrix

        pts = random_walk_points(40, seed=15)
        dmat = ground_matrix(pts, "euclidean")
        space = self_space(40, 3)
        return dmat, GroupLevel.from_matrix(dmat, 8, space.mode), space

    def test_group_reduce_bands_stitch_to_from_matrix(self):
        from repro.core.grouping import GroupLevel
        from repro.engine.worker import GroupReduceTask, group_reduce

        dmat, level, space = self._level_and_space()
        bands = [
            group_reduce(GroupReduceTask(tau=8, mode=space.mode,
                                         u_start=u0, u_end=u1, matrix=dmat))
            for u0, u1 in ((0, 2), (2, 4), (4, 5))
        ]
        stitched = GroupLevel.from_bands(bands, 40, 40, 8, space.mode)
        assert np.array_equal(stitched.gmin, level.gmin)
        assert np.array_equal(stitched.gmax, level.gmax)

    def test_group_dfd_chunk_matches_serial_bounds(self):
        from repro.core.grouping import feasible_group_pairs, group_dfd_bounds
        from repro.engine.worker import GroupDFDTask, group_dfd_chunk

        _, level, space = self._level_and_space()
        pairs = feasible_group_pairs(level, space)
        assert pairs
        us = tuple(u for u, _ in pairs)
        vs = tuple(v for _, v in pairs)
        out = group_dfd_chunk(GroupDFDTask(
            space=space, us=us, vs=vs, bsf=np.inf, level=level,
        ))
        for pos, (u, v) in enumerate(pairs):
            glb, gub = group_dfd_bounds(level, space, u, v, bsf=np.inf)
            assert out[pos, 0] == glb
            assert out[pos, 1] == gub


class TestPlanStrides:
    def test_covers_every_position_exactly_once(self):
        strides = plan_strides(17, 4)
        seen = sorted(
            pos
            for start, stride in strides
            for pos in range(start, 17, stride)
        )
        assert seen == list(range(17))

    def test_more_chunks_than_positions(self):
        strides = plan_strides(2, 8)
        assert strides == [(0, 2), (1, 2)]

    def test_empty_and_validation(self):
        assert plan_strides(0, 4) == [(0, 1)]
        with pytest.raises(ValueError):
            plan_strides(5, 0)


# ----------------------------------------------------------------------
# Lifecycle: no leaked segments
# ----------------------------------------------------------------------
@needs_shm
class TestSegmentLifecycle:
    def test_close_unlinks_all_segments(self):
        from multiprocessing import shared_memory

        eng = MotifEngine(workers=2)
        eng.discover(random_walk(50, seed=5), min_length=3, algorithm="btm",
                     cacheable=False)
        names = [ref.name for ref in eng._shm.refs()]
        assert names, "the chunked scan should have published a segment"
        eng.close()
        assert len(eng._shm) == 0
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_no_resource_tracker_complaints(self):
        """End-to-end leak check: a fresh interpreter that uses the
        warm paths and closes the engine must exit with a silent
        resource tracker (no 'leaked shared_memory' warnings, no
        KeyError tracebacks)."""
        code = textwrap.dedent(
            """
            from repro.engine import MotifEngine
            from repro.testing import random_walk

            traj = random_walk(50, seed=1)
            with MotifEngine(workers=2) as eng:
                eng.discover(traj, min_length=3, algorithm="btm",
                             cacheable=False)
                eng.top_k(traj, min_length=3, k=2)
                eng.discover_many([traj, random_walk(45, seed=2)],
                                  min_length=3, algorithm="btm")
            """
        )
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "leaked shared_memory" not in proc.stderr, proc.stderr
        assert "resource_tracker" not in proc.stderr, proc.stderr


# ----------------------------------------------------------------------
# Cancellation / timeout
# ----------------------------------------------------------------------
class TestTimeoutHygiene:
    @staticmethod
    def _tiny_distance_walk():
        # Minuscule coordinates => minuscule motif distance: if a stale
        # shared best-so-far from this query leaked into the next one,
        # it would prune the whole search and break it.
        return Trajectory(random_walk_points(90, seed=6) * 1e-3)

    def test_pool_timeout_mid_chunk_then_engine_still_serves(self):
        big = random_walk(60, seed=7)
        ref = discover_motif(big, min_length=4, algorithm="btm")
        with MotifEngine(workers=2) as eng:
            with pytest.raises(MotifTimeout):
                eng.discover(self._tiny_distance_walk(), min_length=3,
                             algorithm="btm", timeout=1e-6, cacheable=False)
            got = eng.discover(big, min_length=4, algorithm="btm",
                               cacheable=False)
        assert (got.distance, got.indices) == (ref.distance, ref.indices)

    def test_inline_timeout_then_engine_still_serves(self):
        big = random_walk(60, seed=8)
        ref = discover_motif(big, min_length=4, algorithm="btm")
        eng = MotifEngine(executor="inline")
        with pytest.raises(MotifTimeout):
            eng.discover(self._tiny_distance_walk(), min_length=3,
                         algorithm="btm", workers=2, timeout=1e-6,
                         cacheable=False)
        got = eng.discover(big, min_length=4, algorithm="btm", workers=2,
                           cacheable=False)
        assert (got.distance, got.indices) == (ref.distance, ref.indices)

    def test_grouped_gtm_respects_timeout(self):
        """The parallel grouping phase honors the query budget too --
        a timed-out GTM query raises promptly instead of finishing the
        group-DFD precompute first."""
        with MotifEngine(workers=2) as eng:
            with pytest.raises(MotifTimeout):
                eng.discover(self._tiny_distance_walk(), min_length=3,
                             algorithm="gtm", tau=4, timeout=1e-6,
                             cacheable=False)
            traj = random_walk(60, seed=10)
            ref = discover_motif(traj, min_length=4, algorithm="gtm")
            got = eng.discover(traj, min_length=4, algorithm="gtm",
                               cacheable=False)
        assert (got.distance, got.indices) == (ref.distance, ref.indices)

    def test_pool_survives_repeated_timeouts(self):
        with MotifEngine(workers=2) as eng:
            for _ in range(3):
                with pytest.raises(MotifTimeout):
                    eng.discover(self._tiny_distance_walk(), min_length=3,
                                 algorithm="btm", timeout=1e-6,
                                 cacheable=False)
            traj = random_walk(50, seed=9)
            ref = discover_motif(traj, min_length=3, algorithm="btm")
            got = eng.discover(traj, min_length=3, algorithm="btm",
                               cacheable=False)
        assert (got.distance, got.indices) == (ref.distance, ref.indices)


# ----------------------------------------------------------------------
# Tile planning (sharded join)
# ----------------------------------------------------------------------
class TestPlanTiles:
    def test_covers_every_pair_exactly_once(self):
        tiles = plan_tiles(5, 7, 6)
        seen = [
            (int(a), int(b))
            for left_idx, right_idx in tiles
            for a in left_idx
            for b in right_idx
        ]
        assert sorted(seen) == [(a, b) for a in range(5) for b in range(7)]
        assert len(seen) == len(set(seen))

    def test_degenerate_single_left_still_parallel(self):
        """Regression: left-only chunking gave one trajectory on the
        left zero parallelism; the tile grid splits the right side."""
        tiles = plan_tiles(1, 12, 4)
        assert len(tiles) >= 4
        assert all(len(left_idx) == 1 for left_idx, _ in tiles)

    def test_caps_at_pair_count(self):
        assert len(plan_tiles(2, 2, 64)) <= 4
        assert plan_tiles(0, 5, 4) == []
