"""Documentation drift guards.

Keeps README/docs promises in sync with the code: every documented
dataset, experiment and public symbol must actually exist, and the
deliverable files the README points at must be present.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

import repro
from repro.bench import EXPERIMENTS
from repro.datasets import dataset_names

ROOT = Path(__file__).resolve().parent.parent


class TestDeliverableFiles:
    @pytest.mark.parametrize(
        "name",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE",
         "docs/algorithms.md", "docs/api.md", "docs/data-formats.md"],
    )
    def test_file_exists_and_non_trivial(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 500, name

    @pytest.mark.parametrize(
        "name",
        ["quickstart.py", "geolife_commute.py", "truck_delivery.py",
         "baboon_foraging.py", "measure_comparison.py",
         "streaming_monitor.py"],
    )
    def test_examples_compile(self, name):
        path = ROOT / "examples" / name
        assert path.exists(), name
        compile(path.read_text(), str(path), "exec")


class TestPublicSurface:
    def test_top_level_all_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_api_doc_star_symbols_exist(self):
        """Every '★ symbol' row in docs/api.md names a real attribute."""
        text = (ROOT / "docs" / "api.md").read_text()
        stars = re.findall(r"★ `([A-Za-z_][A-Za-z0-9_]*)", text)
        assert stars, "the api doc must mark top-level symbols"
        for name in stars:
            assert hasattr(repro, name), name

    def test_design_lists_every_experiment(self):
        """DESIGN.md's per-experiment index covers the registry."""
        text = (ROOT / "DESIGN.md").read_text().lower()
        for exp in EXPERIMENTS:
            if exp.startswith("ablation"):
                continue  # grouped under one index row
            key = exp.replace("fig", "fig ")
            assert exp in text.replace(" ", "") or key in text, exp

    def test_readme_mentions_every_dataset(self):
        info = (ROOT / "README.md").read_text() + (ROOT / "DESIGN.md").read_text()
        for name in ("geolife", "truck", "baboon"):
            assert name in info.lower(), name

    def test_cli_datasets_match_registry(self, capsys):
        from repro.cli import main

        main(["datasets"])
        out = capsys.readouterr().out
        for name in dataset_names():
            assert name in out

    def test_experiments_md_covers_every_figure(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for figure in ("Table 1", "Figure 2", "Figure 3", "Figure 4",
                       "Figure 13", "Figure 14", "Figure 15", "Figure 16",
                       "Figure 17", "Figure 18", "Figure 19", "Figure 20",
                       "Figure 21"):
            assert figure in text, figure
