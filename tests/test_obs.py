"""Observability end to end: fork-shared metrics, tracing, /metrics.

The PR 10 tentpole contracts:

* concurrent increments from forked children merge *exactly*, and the
  totals stay monotone after the children die (the archive slot folds
  dead processes in before their slot is reused);
* histograms render cumulatively -- and therefore monotonically -- in
  the Prometheus text exposition, and the exposition shape is stable;
* a traced request through a real socket leaves one connected JSONL
  span tree spanning admission -> engine phases -> pool-worker tasks,
  with the trace id echoed back to the client;
* a coalesced duplicate *links* to the primary's root span instead of
  pretending it computed anything;
* a two-worker fleet's ``/metrics`` totals agree with the sum of the
  per-worker service counters the master aggregates;
* failpoint fires and slow queries land in the trace.
"""

from __future__ import annotations

import http.client
import json
import multiprocessing
import os
import signal
import threading
import time

import numpy as np
import pytest

import repro.faults as faults
import repro.obs as obs
from repro.index import CorpusIndex
from repro.obs.metrics import MetricsRegistry, render_prometheus
from repro.service import MotifService, ServiceClient, ServiceFleet, make_server
from repro.store import save_snapshot
from repro.trajectory import Trajectory

FORK = multiprocessing.get_context("fork")


def make_corpus(seed: int = 0, count: int = 6, n: int = 20):
    rng = np.random.default_rng(seed)
    return [
        Trajectory(rng.normal(size=(n, 2)).cumsum(axis=0) + [i * 9.0, 0.0])
        for i in range(count)
    ]


@pytest.fixture(scope="module")
def snapshot_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("snapshots") / "fleet"
    save_snapshot(CorpusIndex(make_corpus(), "euclidean"), root)
    return root


@pytest.fixture()
def traced(tmp_path):
    """Tracing on, JSONL sink at a per-test path; restored afterwards."""
    prior = obs.trace_path()
    path = tmp_path / "trace.jsonl"
    obs.clear_trace()
    obs.configure(tracing=True, trace_path=str(path))
    yield path
    obs.clear_trace()
    obs.configure(trace_path=prior)


class running_service:
    """Context manager: a started service behind a live HTTP server."""

    def __init__(self, snapshot_dir=None, **service_kwargs):
        self.snapshot_dir = snapshot_dir
        self.service_kwargs = service_kwargs

    def __enter__(self):
        self.service = MotifService(**self.service_kwargs)
        if self.snapshot_dir is not None:
            self.service.load_snapshot("fleet", self.snapshot_dir)
        self.service.start()
        self.httpd = make_server(self.service)
        self.thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self.thread.start()
        client = ServiceClient(port=self.httpd.server_address[1], retries=0)
        return self.service, client

    def __exit__(self, *exc_info):
        self.httpd.shutdown()
        self.httpd.server_close()
        self.thread.join(timeout=10.0)
        self.service.stop()


def metric_value(text, name, **labels):
    """The last sample of ``name`` with exactly ``labels`` in ``text``."""
    found = None
    for line in text.splitlines():
        if not line.startswith(name):
            continue
        rest = line[len(name):]
        if rest.startswith("{"):
            labelpart, sep, value = rest[1:].partition("} ")
            if not sep:
                continue
            pairs = {}
            for piece in labelpart.split(","):
                key, _, raw = piece.partition("=")
                pairs[key] = raw.strip('"')
        elif rest.startswith(" "):
            pairs, value = {}, rest[1:]
        else:
            continue
        if pairs == {k: str(v) for k, v in labels.items()}:
            found = float(value)
    return found


def file_spans(path, trace_id):
    records = [json.loads(line) for line in path.read_text().splitlines()]
    return [
        r for r in records
        if r.get("trace") == trace_id and r.get("kind") == "span"
    ]


# ----------------------------------------------------------------------
# Fork-shared registry
# ----------------------------------------------------------------------
class TestForkSharedRegistry:
    def test_concurrent_fork_increments_merge_exactly(self):
        # 6 slots = archive + parent + 4 children: the extra claimer
        # below finds no free slot and must archive-reuse a dead one.
        reg = MetricsRegistry(slots=6, cells=32)
        counter = reg.counter("t_total", "test counter")
        counter.inc(5)
        children, per_child = 4, 400

        def work():
            for _ in range(per_child):
                counter.inc()

        procs = [FORK.Process(target=work) for _ in range(children)]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert [p.exitcode for p in procs] == [0] * children
        assert counter.value() == 5 + children * per_child
        # The children are dead; one more claimer folds a dead slot
        # into the archive before reusing it -- totals stay exact.
        extra = FORK.Process(target=work)
        extra.start()
        extra.join()
        assert counter.value() == 5 + (children + 1) * per_child
        assert counter.local_value() == 5
        assert list(counter.per_process()) == [os.getpid()]

    def test_histogram_buckets_cumulative_and_monotone(self):
        reg = MetricsRegistry(slots=4, cells=64)
        family = reg.histogram(
            "t_seconds", "test latency", labels=("op",), values=[("a",)]
        )
        child = family.labels("a")
        for value in (0.0005, 0.0005, 0.003, 0.1, 2.0, 100.0):
            child.observe(value)
        assert child.count() == 6
        assert child.sum() == pytest.approx(102.104)
        text = render_prometheus(reg)
        buckets = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("t_seconds_bucket")
        ]
        assert len(buckets) == len(obs.LATENCY_BUCKETS) + 1
        assert buckets == sorted(buckets)  # cumulative => monotone
        assert buckets[-1] == 6  # +Inf holds every observation
        assert metric_value(text, "t_seconds_count", op="a") == 6
        assert metric_value(text, "t_seconds_sum", op="a") == (
            pytest.approx(102.104)
        )

    def test_prometheus_text_exposition_shape(self):
        reg = MetricsRegistry(slots=4, cells=32)
        events = reg.counter(
            "t_events_total", "things that happened",
            labels=("event",), values=[("accepted",), ("failed",)],
        )
        depth = reg.gauge("t_depth", "queue depth")
        events.labels("accepted").inc(3)
        depth.set(2.5)
        text = render_prometheus(reg)
        assert text.splitlines()[:4] == [
            "# HELP t_events_total things that happened",
            "# TYPE t_events_total counter",
            't_events_total{event="accepted"} 3',
            't_events_total{event="failed"} 0',
        ]
        assert "# TYPE t_depth gauge" in text
        assert "t_depth 2.5" in text
        assert text.endswith("\n")

    def test_label_combinations_must_be_predeclared(self):
        reg = MetricsRegistry(slots=4, cells=32)
        events = reg.counter(
            "t_strict_total", "strict", labels=("event",),
            values=[("known",)],
        )
        events.labels("known").inc()
        with pytest.raises(KeyError, match="pre-declared"):
            events.labels("unheard_of")

    def test_disabled_registry_drops_writes(self):
        reg = MetricsRegistry(slots=4, cells=32)
        counter = reg.counter("t_off_total", "gated")
        reg.enabled = False
        counter.inc(7)
        assert counter.value() == 0
        reg.enabled = True
        counter.inc(2)
        assert counter.value() == 2

    def test_orphaned_claim_lock_degrades_instead_of_deadlocking(
        self, monkeypatch
    ):
        # ProcessPoolExecutor SIGTERMs every worker of a broken pool; a
        # sibling dying while holding the slot-claim semaphore must not
        # hang the first metric write of later pool generations.
        from repro.obs import metrics as metrics_mod

        monkeypatch.setattr(metrics_mod, "CLAIM_TIMEOUT", 0.25)
        reg = MetricsRegistry(slots=4, cells=16)
        counter = reg.counter("t_orphan_total", "orphan probe")
        counter.inc()  # parent claims its slot while the lock is sane

        def die_holding():
            reg._pids.get_lock().acquire()
            os.kill(os.getpid(), signal.SIGKILL)

        holder = FORK.Process(target=die_holding)
        holder.start()
        holder.join()
        assert holder.exitcode == -signal.SIGKILL

        out = FORK.SimpleQueue()

        def first_write():
            counter.inc()  # fresh pid -> claim -> bounded acquire
            out.put((reg.enabled, counter.local_value()))

        probe = FORK.Process(target=first_write)
        probe.start()
        probe.join(10)
        try:
            assert probe.exitcode == 0, "first write deadlocked"
            enabled, local = out.get()
            assert enabled is False  # degraded, not stuck
            assert local == 0.0  # and the write was dropped
        finally:
            if probe.is_alive():  # pragma: no cover - deadlock path
                probe.kill()
        # the parent keeps its claimed slot and its counts
        assert counter.value() == 1


# ----------------------------------------------------------------------
# Trace records and the JSONL sink
# ----------------------------------------------------------------------
class TestTraceRecords:
    def test_span_nesting_events_and_format(self, traced):
        trace_id = obs.start_trace()
        with obs.span("outer", op="x"):
            with obs.span("inner"):
                obs.add_event("tick", n=1)
        obs.clear_trace()
        records = obs.recent_records(trace_id)
        spans = [r for r in records if r["kind"] == "span"]
        assert [s["name"] for s in spans] == ["inner", "outer"]
        inner, outer = spans
        assert inner["parent"] == outer["span"]
        assert outer["parent"] is None
        assert inner["events"][0]["name"] == "tick"
        lines = obs.format_trace(records, trace_id).splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
        assert "· tick" in lines[2]
        # every record also reached the JSONL file, whole lines
        on_disk = [json.loads(line) for line in traced.read_text().splitlines()]
        assert {r["trace"] for r in on_disk} == {trace_id}
        assert sorted(r["kind"] for r in on_disk) == ["event", "span", "span"]

    def test_failpoint_fire_is_a_trace_event(self, traced):
        trace_id = obs.start_trace()
        faults.arm("service.execute=raise:OSError%1")
        try:
            with obs.span("covering"):
                with pytest.raises(OSError):
                    faults.fail_at("service.execute")
        finally:
            faults.disarm()
            obs.clear_trace()
        events = [
            r for r in obs.recent_records(trace_id) if r["kind"] == "event"
        ]
        fires = [e for e in events if e["name"] == "failpoint"]
        assert fires and fires[0]["attrs"]["site"] == "service.execute"
        assert fires[0]["attrs"]["hit"] == 1


# ----------------------------------------------------------------------
# Service: tracing and /metrics over a real socket
# ----------------------------------------------------------------------
class TestServiceObservability:
    def test_trace_propagates_to_pool_workers_over_the_wire(
        self, snapshot_dir, traced
    ):
        rng = np.random.default_rng(7)
        traj = Trajectory(rng.normal(size=(80, 2)).cumsum(axis=0))
        trace_id = "deadbeef" * 4
        with running_service(snapshot_dir, workers=2) as (_, client):
            out = client.call(
                "discover",
                {"trajectory": traj.points.tolist(), "min_length": 4},
                trace_id=trace_id,
            )
            assert client.last_trace_id == trace_id
        assert out["result"]["indices"]
        spans = file_spans(traced, trace_id)
        names = {r["name"] for r in spans}
        assert {"service.request", "service.execute",
                "engine.plan", "engine.search"} <= names
        workers = [r for r in spans if r["name"] == "worker.task"]
        assert workers
        assert all(r["pid"] != os.getpid() for r in workers)
        # One connected tree rooted at admission.
        by_id = {r["span"] for r in spans}
        roots = [r for r in spans if r["parent"] is None]
        assert [r["name"] for r in roots] == ["service.request"]
        assert all(
            r["parent"] in by_id for r in spans if r["parent"] is not None
        )

    def test_server_mints_trace_id_when_header_absent(
        self, snapshot_dir, traced
    ):
        rng = np.random.default_rng(9)
        traj = Trajectory(rng.normal(size=(30, 2)).cumsum(axis=0))
        with running_service(snapshot_dir) as (_, client):
            client.call(
                "discover",
                {"trajectory": traj.points.tolist(), "min_length": 4},
            )
            minted = client.last_trace_id
        assert minted and len(minted) == 32
        assert {r["name"] for r in file_spans(traced, minted)} >= {
            "service.request", "service.execute",
        }

    def test_coalesced_request_links_primary_root_span(
        self, snapshot_dir, traced
    ):
        rng = np.random.default_rng(21)
        traj = Trajectory(rng.normal(size=(45, 2)).cumsum(axis=0))
        gate, started = threading.Event(), threading.Event()
        primary_id, dup_id = "aa" * 16, "bb" * 16
        results = {}
        with running_service(
            snapshot_dir, service_workers=1,
            engine_kwargs=dict(result_cache_size=0),
        ) as (service, client):
            def hook(req):
                started.set()
                assert gate.wait(10.0)

            service._before_execute = hook
            params = {"trajectory": traj.points.tolist(), "min_length": 4}

            def call(tid):
                results[tid] = client.call("discover", params, trace_id=tid)

            first = threading.Thread(target=call, args=(primary_id,))
            first.start()
            assert started.wait(10.0)  # primary is now in flight
            second = threading.Thread(target=call, args=(dup_id,))
            second.start()
            deadline = time.monotonic() + 10.0
            while (
                service.stats()["counters"]["coalesced"] < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            gate.set()
            first.join(timeout=10.0)
            second.join(timeout=10.0)
        assert results[dup_id]["coalesced"] is True
        primary = next(
            r for r in file_spans(traced, primary_id)
            if r["name"] == "service.request"
        )
        dup = next(
            r for r in file_spans(traced, dup_id)
            if r["name"] == "service.request"
        )
        assert dup["attrs"].get("coalesced") is True
        assert dup["links"] == [primary["span"]]
        assert not primary.get("links")

    def test_metrics_endpoint_reflects_requests(self, snapshot_dir):
        rng = np.random.default_rng(11)
        traj = Trajectory(rng.normal(size=(16, 2)).cumsum(axis=0))
        params = {"trajectory": traj.points.tolist(), "min_length": 4}
        with running_service(snapshot_dir) as (_, client):
            before = metric_value(
                client.metrics_text(), "repro_service_events_total",
                event="accepted",
            )
            for _ in range(3):
                client.call("discover", params)
            text = client.metrics_text()
        assert metric_value(
            text, "repro_service_events_total", event="accepted"
        ) - before == 3
        assert "# TYPE repro_service_request_seconds histogram" in text
        assert metric_value(
            text, "repro_service_request_seconds_count", op="discover"
        ) >= 3
        assert metric_value(text, "repro_service_breaker_state") == 0

    def test_slow_query_log_includes_span_tree(
        self, snapshot_dir, traced, caplog
    ):
        rng = np.random.default_rng(5)
        traj = Trajectory(rng.normal(size=(40, 2)).cumsum(axis=0))
        with running_service(
            snapshot_dir, slow_query_threshold=1e-9
        ) as (_, client):
            with caplog.at_level("WARNING", logger="repro.service"):
                client.call(
                    "discover",
                    {"trajectory": traj.points.tolist(), "min_length": 4},
                    trace_id="ab" * 16,
                )
        slow = [
            record.getMessage() for record in caplog.records
            if "slow query" in record.getMessage()
        ]
        assert slow
        assert "op=discover" in slow[0]
        assert "service.execute" in slow[0]


# ----------------------------------------------------------------------
# Fleet: /metrics totals vs per-worker counters
# ----------------------------------------------------------------------
def _post(port, op, params, timeout=60):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps({"params": params}).encode()
        conn.request("POST", f"/v1/{op}", body,
                     {"Content-Type": "application/json"})
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


def _get(port, path, timeout=60):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, resp.getheader("Content-Type"), resp.read()
    finally:
        conn.close()


def wait_for_fleet(port, deadline=30.0):
    end = time.monotonic() + deadline
    last = None
    while time.monotonic() < end:
        try:
            status, _, _ = _get(port, "/healthz", timeout=5)
            if status == 200:
                return
            last = status
        except OSError as exc:
            last = exc
        time.sleep(0.05)
    raise AssertionError(f"fleet never became healthy: {last!r}")


class TestFleetMetrics:
    def test_fleet_metrics_totals_match_per_worker_counters(self, tmp_path):
        target = tmp_path / "snap"
        save_snapshot(CorpusIndex(make_corpus(seed=3), "euclidean"), target)
        params = {
            "left": {"snapshot": "c"}, "right": {"snapshot": "c"},
            "theta": 6.0,
        }
        requests = 6
        with ServiceFleet(
            workers=2, snapshots=[("c", target)],
            service_kwargs={"workers": 1},
        ) as fleet:
            wait_for_fleet(fleet.port)
            status, ctype, body = _get(fleet.port, "/metrics")
            assert status == 200
            assert ctype.startswith("text/plain")
            before = metric_value(
                body.decode(), "repro_service_events_total",
                event="accepted",
            )
            for _ in range(requests):
                status, out = _post(fleet.port, "join", params)
                assert status == 200
            status, _, body = _get(fleet.port, "/metrics")
            assert status == 200
            after = metric_value(
                body.decode(), "repro_service_events_total",
                event="accepted",
            )
            stats = fleet.stats()
            per_worker = stats["service_counters_per_worker"]
            assert set(per_worker) == set(fleet.pids())
            # Every admission happened in exactly one worker process,
            # and the fork-shared scrape saw the same total the master
            # aggregates per worker.
            assert after - before == requests
            assert sum(
                counters["accepted"] for counters in per_worker.values()
            ) == requests
            assert stats["service_counters"]["accepted"] == after
            assert sum(
                counters["completed"] for counters in per_worker.values()
            ) == requests
