"""Property tests for the corpus proximity index (`repro.index`).

The index's whole value rests on one invariant: every bound it reports
is *admissible* -- it never exceeds the true discrete Frechet distance
-- so a pruned pair provably cannot match and indexed answers equal
unindexed answers.  The suite asserts that invariant on random corpora
(float random walks, tie-heavy integer grids, spatially clustered
collections) under Euclidean, Chebyshev and haversine ground metrics,
plus the transport-slab roundtrip the engine's zero-copy tasks rely on.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.distances.frechet import dfd_matrix
from repro.distances.ground import get_metric
from repro.errors import ReproError
from repro.index import CorpusIndex, slab_points, slab_trajectory
from repro.trajectory import Trajectory

SEED_BASE = int(os.environ.get("REPRO_TEST_SEED", "0"))
SEEDS = [SEED_BASE * 7919 + s for s in range(8)]


def make_corpus(rng: np.random.Generator, kind: str, count: int = 6):
    """A random corpus of one structural flavour."""
    out = []
    for _ in range(count):
        n = int(rng.integers(4, 18))
        if kind == "ties":
            pts = rng.integers(0, 5, size=(n, 2)).astype(np.float64)
        elif kind == "clustered":
            centre = rng.uniform(-30, 30, size=2)
            pts = rng.normal(size=(n, 2)).cumsum(axis=0) * 0.4 + centre
        else:
            pts = rng.normal(size=(n, 2)).cumsum(axis=0)
        out.append(pts)
    return out


def true_dfd(metric, p, q) -> float:
    return float(dfd_matrix(metric.pairwise(p, q)))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("metric_name", ["euclidean", "chebyshev"])
@pytest.mark.parametrize("kind", ["walk", "ties", "clustered"])
def test_lower_bounds_are_admissible(seed, metric_name, kind):
    """Every index lower bound <= the true DFD, for every pair."""
    rng = np.random.default_rng(seed)
    metric = get_metric(metric_name)
    left = make_corpus(rng, kind)
    right = make_corpus(rng, kind)
    index_left = CorpusIndex(left, metric)
    index_right = CorpusIndex(right, metric)
    for i in range(len(left)):
        for j in range(len(right)):
            truth = true_dfd(metric, left[i], right[j])
            lb = index_left.lower_bound(i, j, index_right)
            assert lb <= truth + 1e-9, (i, j, lb, truth)


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_lower_bounds_admissible_under_haversine(seed):
    """Non-monotone metrics keep the endpoint + simplification bounds."""
    rng = np.random.default_rng(seed)
    metric = get_metric("haversine")
    corpus = [
        np.column_stack([
            rng.uniform(45.0, 45.2, size=n), rng.uniform(7.0, 7.2, size=n)
        ])
        for n in rng.integers(4, 12, size=5)
    ]
    index = CorpusIndex(corpus, metric)
    for i in range(len(corpus)):
        for j in range(len(corpus)):
            truth = true_dfd(metric, corpus[i], corpus[j])
            lb = index.lower_bound(i, j)
            assert lb <= truth + 1e-6 * max(1.0, truth), (i, j, lb, truth)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("metric_name", ["euclidean", "chebyshev"])
def test_candidate_pairs_never_prune_a_match(seed, metric_name):
    """Pairs the index removes at theta provably have DFD > theta."""
    rng = np.random.default_rng(seed + 31)
    metric = get_metric(metric_name)
    left = make_corpus(rng, "clustered")
    right = make_corpus(rng, "clustered")
    index_left = CorpusIndex(left, metric)
    index_right = CorpusIndex(right, metric)
    theta = float(rng.uniform(0.5, 15.0))
    pairs, stats = index_left.candidate_pairs(index_right, theta)
    kept = {tuple(p) for p in pairs}
    assert stats.candidates == len(pairs)
    assert stats.pruned_total + stats.candidates == stats.pairs_total
    for i in range(len(left)):
        for j in range(len(right)):
            if (i, j) in kept:
                continue
            assert true_dfd(metric, left[i], right[j]) > theta, (i, j)


def test_candidate_pairs_zero_theta_and_identical_items():
    """theta=0 keeps exact duplicates (DFD == 0 <= 0) and is safe."""
    pts = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 0.0]])
    other = pts + 5.0
    index = CorpusIndex([pts, other, pts.copy()])
    pairs, stats = index.candidate_pairs(index, 0.0)
    kept = {tuple(p) for p in pairs}
    # The duplicate trajectories (0, 2) must survive in both directions.
    for pair in [(0, 0), (0, 2), (2, 0), (2, 2), (1, 1)]:
        assert pair in kept
    assert (0, 1) not in kept and (1, 0) not in kept
    assert stats.pairs_total == 9


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_restricted_pair_list_is_respected(seed):
    """candidate_pairs(pairs=...) only ever returns a subset of it."""
    rng = np.random.default_rng(seed + 97)
    corpus = make_corpus(rng, "walk", count=7)
    index = CorpusIndex(corpus)
    allowed = np.array([(a, b) for a in range(7) for b in range(7) if b > a + 1])
    pairs, stats = index.candidate_pairs(None, 2.0, pairs=allowed)
    allowed_set = {tuple(p) for p in allowed}
    assert all(tuple(p) in allowed_set for p in pairs)
    assert stats.pairs_total == len(allowed)
    assert stats.pruned_grid == 0  # grid bucketing does not apply


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_ordered_pairs_cover_the_grid_ascending(seed):
    """ordered_pairs: full coverage, admissible bounds, ascending order."""
    rng = np.random.default_rng(seed + 11)
    metric = get_metric("euclidean")
    left = make_corpus(rng, "clustered", count=4)
    right = make_corpus(rng, "clustered", count=5)
    index_left = CorpusIndex(left, metric)
    index_right = CorpusIndex(right, metric)
    pairs, lbs = index_left.ordered_pairs(index_right)
    assert len(pairs) == len(left) * len(right)
    assert len({tuple(p) for p in pairs}) == len(pairs)
    assert np.all(np.diff(lbs) >= 0)
    for (a, b), lb in zip(pairs, lbs):
        assert lb <= true_dfd(metric, left[a], right[b]) + 1e-9


def test_simplification_error_is_exact_dfd():
    """The stored error radius equals DFD(original, simplification)."""
    rng = np.random.default_rng(5)
    corpus = make_corpus(rng, "walk", count=4)
    index = CorpusIndex(corpus)
    metric = get_metric("euclidean")
    for i, pts in enumerate(corpus):
        simp = index.simplifications[i]
        assert simp.shape[0] <= pts.shape[0]
        err = index.simplification_errors[i]
        assert err == pytest.approx(true_dfd(metric, pts, simp))


def test_grid_bucketing_only_for_monotone_metrics():
    """Haversine skips the grid; pruning still only via safe bounds."""
    rng = np.random.default_rng(3)
    corpus = [
        np.column_stack([
            rng.uniform(45.0, 45.1, size=6), rng.uniform(7.0, 7.1, size=6)
        ])
        for _ in range(4)
    ]
    index = CorpusIndex(corpus, "haversine")
    pairs, stats = index.candidate_pairs(index, theta=1e7)  # everything close
    assert stats.pruned_grid == 0
    assert len(pairs) == 16


def test_index_validation():
    with pytest.raises(ReproError):
        CorpusIndex([])
    with pytest.raises(ReproError):
        CorpusIndex([np.zeros((3, 2)), np.zeros((3, 3))])
    with pytest.raises(ReproError):
        CorpusIndex([np.zeros((3, 2))]).candidate_pairs(None, -1.0)


# ----------------------------------------------------------------------
# Transport slabs
# ----------------------------------------------------------------------
class TestTransportSlabs:
    def test_roundtrip_points_and_trajectories(self):
        rng = np.random.default_rng(12)
        trajs = [
            Trajectory(
                rng.normal(size=(n, 2)).cumsum(axis=0),
                np.arange(n) * 2.0 + 1.0,
                trajectory_id=f"t{n}",
            )
            for n in (4, 9, 5)
        ]
        index = CorpusIndex(trajs)
        slabs = index.transport_slabs()
        assert slabs["offsets"].tolist() == [0, 4, 13, 18]
        for i, traj in enumerate(trajs):
            np.testing.assert_array_equal(slab_points(slabs, i), traj.points)
            rebuilt = slab_trajectory(slabs, i, traj.crs, traj.trajectory_id)
            np.testing.assert_array_equal(rebuilt.points, traj.points)
            np.testing.assert_array_equal(rebuilt.timestamps, traj.timestamps)
            assert rebuilt.crs == traj.crs
            assert rebuilt.trajectory_id == traj.trajectory_id

    def test_slabs_survive_shared_memory(self):
        from repro.engine.shm import (
            SharedArrayStore,
            attach_slabs,
            shared_memory_available,
        )

        if not shared_memory_available():
            pytest.skip("needs POSIX shared memory")
        rng = np.random.default_rng(8)
        trajs = [rng.normal(size=(6, 2)).cumsum(axis=0) for _ in range(3)]
        index = CorpusIndex(trajs)
        store = SharedArrayStore(capacity=4)
        try:
            ref, created = store.publish(("corpus", "test"), index.transport_slabs())
            assert created and ref is not None
            attached = attach_slabs(ref)
            for i, pts in enumerate(trajs):
                np.testing.assert_array_equal(slab_points(attached, i), pts)
        finally:
            store.close()
