"""Snapshot store: byte-identical mmap roundtrips, zero recomputes,
corruption error paths, and engine parity over restored indexes.

The serving contract under test (ISSUE 5 acceptance):

* a save/load roundtrip reproduces **byte-identical**
  ``candidate_pairs`` / ``ordered_pairs`` answers (property-tested on
  seeded random corpora across metrics and thetas);
* loading performs **zero** simplification DP recomputes, asserted
  through ``IndexStats.summary_builds`` and the index's own counter;
* corpus workloads served from a restored index equal the in-memory
  answers across workers {1, 2, 4}, with pool tasks carrying
  :class:`SnapshotSlabRef` handles (mmap'd files, nothing copied);
* a truncated array, flipped byte, version skew or foreign manifest
  raises :class:`SnapshotError` -- never a silent rebuild.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.engine import MotifEngine, fork_context
from repro.errors import ReproError
from repro.engine.cache import metric_key
from repro.engine.corpus import corpus_index_cache_key
from repro.engine.planner import corpus_fingerprint
from repro.distances.ground import get_metric
from repro.index import CorpusIndex
from repro.store import (
    MANIFEST_NAME,
    SnapshotError,
    SnapshotSlabRef,
    attach_snapshot_slabs,
    inspect_snapshot,
    load_snapshot,
    save_snapshot,
    snapshot_trajectories,
)
from repro.trajectory import Trajectory

SEED_BASE = int(os.environ.get("REPRO_TEST_SEED", "0"))
SEEDS = [SEED_BASE * 100_003 + s for s in range(8)]


def make_corpus(seed: int, clustered: bool = False):
    """A seeded random corpus (optionally spread over a coarse grid)."""
    rng = np.random.default_rng(seed)
    corpus = []
    for i in range(int(rng.integers(4, 9))):
        n = int(rng.integers(8, 24))
        pts = rng.normal(size=(n, 2)).cumsum(axis=0)
        if clustered:
            pts = pts + np.array([(i % 3) * 25.0, (i // 3) * 25.0])
        corpus.append(Trajectory(pts, timestamps=np.arange(n) * 2.0))
    return corpus


class TestRoundtrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_candidate_and_ordered_pairs_byte_identical(self, seed, tmp_path):
        """Property: a mmap'd load answers bit-for-bit like the
        in-memory index it was saved from, for any threshold."""
        rng = np.random.default_rng(seed + 13)
        metric = ("euclidean", "chebyshev")[seed % 2]
        corpus = make_corpus(seed, clustered=seed % 3 == 0)
        index = CorpusIndex(corpus, metric)
        save_snapshot(index, tmp_path / "snap")
        loaded = load_snapshot(tmp_path / "snap")
        for theta in (0.0, float(rng.uniform(0.5, 4.0)), 1e9):
            pairs_a, stats_a = index.candidate_pairs(None, theta)
            pairs_b, stats_b = loaded.candidate_pairs(None, theta)
            assert pairs_a.tobytes() == pairs_b.tobytes()
            assert stats_a.as_dict() == {
                **stats_b.as_dict(), "summary_builds": stats_a.summary_builds,
            }
        ordered_a, lbs_a = index.ordered_pairs()
        ordered_b, lbs_b = loaded.ordered_pairs()
        assert ordered_a.tobytes() == ordered_b.tobytes()
        assert lbs_a.tobytes() == lbs_b.tobytes()

    def test_zero_simplification_recomputes(self, tmp_path):
        corpus = make_corpus(1)
        index = CorpusIndex(corpus, "euclidean")
        save_snapshot(index, tmp_path / "snap")
        assert index.summary_builds == len(corpus)  # the save built them
        loaded = load_snapshot(tmp_path / "snap")
        _, stats = loaded.candidate_pairs(None, 1e9)
        assert loaded.summary_builds == 0
        assert stats.summary_builds == 0
        # The cold in-memory baseline really does pay the DPs.
        cold = CorpusIndex(corpus, "euclidean")
        _, cold_stats = cold.candidate_pairs(None, 1e9)
        assert cold_stats.summary_builds == len(corpus)

    def test_content_key_stable_across_roundtrip(self, tmp_path):
        corpus = make_corpus(2)
        index = CorpusIndex(corpus, "euclidean")
        manifest = save_snapshot(index, tmp_path / "snap")
        loaded = load_snapshot(tmp_path / "snap", verify=True)
        assert manifest["content_key"] == index.content_key
        assert loaded.content_key == index.content_key
        # ...and sensitive to content, metric and parameters.
        other = CorpusIndex(make_corpus(3), "euclidean")
        assert other.content_key != index.content_key
        assert CorpusIndex(corpus, "chebyshev").content_key != index.content_key
        assert (
            CorpusIndex(corpus, "euclidean", simplify_frac=0.2).content_key
            != index.content_key
        )

    def test_trajectories_and_slab_ref(self, tmp_path):
        corpus = make_corpus(4)
        ids = [f"t{i}" for i in range(len(corpus))]
        index = CorpusIndex(corpus, "euclidean")
        save_snapshot(index, tmp_path / "snap", trajectory_ids=ids)
        loaded = load_snapshot(tmp_path / "snap")
        trajs = snapshot_trajectories(loaded)
        assert [t.trajectory_id for t in trajs] == ids
        for orig, back in zip(corpus, trajs):
            assert np.array_equal(orig.points, back.points)
            assert np.array_equal(orig.timestamps, back.timestamps)
        ref = loaded.slab_ref
        assert isinstance(ref, SnapshotSlabRef)
        slabs = attach_snapshot_slabs(ref)
        assert np.array_equal(
            slabs["points"], np.concatenate([t.points for t in corpus])
        )
        # transport_slabs of a restored index is the mapped arrays,
        # not a concatenation copy.
        transport = loaded.transport_slabs()
        assert transport["points"] is slabs["points"] or np.shares_memory(
            transport["points"], np.asarray(transport["points"])
        )

    def test_resave_over_existing_snapshot(self, tmp_path):
        """Rewriting a snapshot directory in place stays consistent:
        no temp files survive and the manifest matches the new bytes."""
        target = tmp_path / "snap"
        save_snapshot(CorpusIndex(make_corpus(10), "euclidean"), target)
        new_index = CorpusIndex(make_corpus(11), "euclidean")
        save_snapshot(new_index, target)
        assert not list(target.glob("*.tmp"))
        loaded = load_snapshot(target, verify=True)
        assert loaded.content_key == new_index.content_key
        pairs_a, _ = new_index.candidate_pairs(None, 2.0)
        pairs_b, _ = loaded.candidate_pairs(None, 2.0)
        assert pairs_a.tobytes() == pairs_b.tobytes()

    def test_inspect_reports_manifest(self, tmp_path):
        index = CorpusIndex(make_corpus(5), "euclidean")
        save_snapshot(index, tmp_path / "snap")
        info = inspect_snapshot(tmp_path / "snap")
        assert info["verified"] is True
        assert info["content_key"] == index.content_key
        assert info["n"] == index.n
        assert info["total_bytes"] > 0


class TestErrorPaths:
    def make_snapshot(self, tmp_path):
        index = CorpusIndex(make_corpus(6), "euclidean")
        save_snapshot(index, tmp_path / "snap")
        return tmp_path / "snap"

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(SnapshotError, match="manifest"):
            load_snapshot(tmp_path / "nothing")

    def test_version_mismatch(self, tmp_path):
        root = self.make_snapshot(tmp_path)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        manifest["version"] = 999
        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="version"):
            load_snapshot(root)
        with pytest.raises(SnapshotError, match="version"):
            inspect_snapshot(root)

    def test_foreign_format_rejected(self, tmp_path):
        root = self.make_snapshot(tmp_path)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        manifest["format"] = "something-else"
        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="format"):
            load_snapshot(root)

    def test_truncated_array(self, tmp_path):
        root = self.make_snapshot(tmp_path)
        payload = (root / "points.bin").read_bytes()
        (root / "points.bin").write_bytes(payload[:-8])
        with pytest.raises(SnapshotError, match="truncated|bytes"):
            load_snapshot(root)
        with pytest.raises(SnapshotError):
            inspect_snapshot(root)

    def test_missing_array_file(self, tmp_path):
        root = self.make_snapshot(tmp_path)
        (root / "simp_errors.bin").unlink()
        with pytest.raises(SnapshotError, match="missing"):
            load_snapshot(root)

    def test_flipped_byte_fails_verification(self, tmp_path):
        root = self.make_snapshot(tmp_path)
        payload = bytearray((root / "starts.bin").read_bytes())
        payload[0] ^= 0xFF
        (root / "starts.bin").write_bytes(bytes(payload))
        with pytest.raises(SnapshotError, match="digest"):
            load_snapshot(root, verify=True)
        with pytest.raises(SnapshotError, match="digest"):
            inspect_snapshot(root, verify=True)
        # Without digest verification the load itself succeeds (sizes
        # match) -- verify is the integrity gate, by design.
        load_snapshot(root, verify=False)

    def test_bad_trajectory_ids_rejected_before_any_write(self, tmp_path):
        index = CorpusIndex(make_corpus(7), "euclidean")
        target = tmp_path / "snap"
        with pytest.raises(SnapshotError, match="trajectory_ids"):
            save_snapshot(index, target, trajectory_ids=["only-one"])
        # Input validation runs before any file IO: nothing was left
        # behind to shadow or corrupt an existing snapshot.
        assert not target.exists()

    def test_unparseable_manifest(self, tmp_path):
        root = self.make_snapshot(tmp_path)
        (root / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(SnapshotError, match="unparseable"):
            load_snapshot(root)


def seeded_engine(tmp_path, corpus, metric, workers, executor):
    """An engine whose index cache is warmed from a snapshot on disk."""
    index = CorpusIndex(corpus, metric)
    save_snapshot(index, tmp_path / "snap")
    loaded = load_snapshot(tmp_path / "snap")
    trajs = snapshot_trajectories(loaded)
    engine = MotifEngine(workers=workers, executor=executor)
    engine._oracles.tables.put(
        corpus_index_cache_key(
            corpus_fingerprint(trajs), get_metric(metric)
        ),
        loaded,
    )
    return engine, trajs


class TestEngineParity:
    """Snapshot-served answers equal in-memory answers, all workers."""

    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_join_and_topk_parity(self, workers, tmp_path):
        executor = "process" if fork_context() is not None else "inline"
        corpus = make_corpus(SEED_BASE + 11, clustered=True)
        theta = 8.0
        with MotifEngine(workers=workers, executor=executor) as plain:
            ref_matches, ref_stats = plain.join(
                corpus, corpus, theta, index=True
            )
            ref_topk = plain.join_top_k(corpus, corpus, k=4)
        engine, trajs = seeded_engine(
            tmp_path, corpus, "euclidean", workers, executor
        )
        with engine:
            matches, stats = engine.join(trajs, trajs, theta, index=True)
            topk = engine.join_top_k(trajs, trajs, k=4)
            info = engine.transfer_info()
        assert matches == ref_matches
        assert topk == ref_topk
        assert stats.matches == ref_stats.matches
        assert stats.pruned_index == ref_stats.pruned_index
        # The snapshot-backed cascade ran no simplification DPs...
        assert stats.details["index"]["summary_builds"] == 0
        assert ref_stats.details["index"]["summary_builds"] == len(corpus)
        # ...and sharded tasks carried file-backed refs, not copies.
        if workers > 1 and executor == "process":
            assert info["snapshot_slab_refs"] > 0, info
            assert info["index_bytes_pickled"] == 0, info

    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_cluster_parity_on_mapped_trajectory(self, workers, tmp_path):
        """A memmap-backed trajectory clusters identically to RAM."""
        executor = "process" if fork_context() is not None else "inline"
        rng = np.random.default_rng(SEED_BASE + 29)
        traj = Trajectory(rng.normal(size=(120, 2)).cumsum(axis=0))
        index = CorpusIndex([traj], "euclidean")
        save_snapshot(index, tmp_path / "snap")
        mapped = snapshot_trajectories(load_snapshot(tmp_path / "snap"))[0]
        kwargs = dict(window_length=12, theta=2.0, stride=6)
        with MotifEngine(workers=workers, executor=executor) as engine:
            ref = engine.cluster(traj, **kwargs)
            out = engine.cluster(mapped, **kwargs)
        assert [c.members for c in out] == [c.members for c in ref]

    def test_discover_parity_on_mapped_trajectory(self, tmp_path):
        rng = np.random.default_rng(SEED_BASE + 31)
        traj = Trajectory(rng.normal(size=(60, 2)).cumsum(axis=0))
        save_snapshot(CorpusIndex([traj], "euclidean"), tmp_path / "snap")
        mapped = snapshot_trajectories(load_snapshot(tmp_path / "snap"))[0]
        with MotifEngine() as engine:
            ref = engine.discover(traj, min_length=5, algorithm="btm")
            out = engine.discover(mapped, min_length=5, algorithm="btm")
        assert (out.distance, out.indices) == (ref.distance, ref.indices)


class TestRestoreValidation:
    def test_restore_rejects_empty(self):
        with pytest.raises(ReproError):
            CorpusIndex.restore(
                metric="euclidean", simplify_frac=0.05,
                max_simplification_points=8, points=[], timestamps=[],
                starts=np.empty((0, 2)), ends=np.empty((0, 2)),
                box_lo=np.empty((0, 2)), box_hi=np.empty((0, 2)),
            )

    def test_metric_key_survives_roundtrip(self, tmp_path):
        """The restored metric resolves to the registry instance, so
        the engine's cache keys line up with query-time resolution."""
        index = CorpusIndex(make_corpus(8), "chebyshev")
        save_snapshot(index, tmp_path / "snap")
        loaded = load_snapshot(tmp_path / "snap")
        assert metric_key(loaded.metric) == metric_key(get_metric("chebyshev"))
