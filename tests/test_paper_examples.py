"""Golden tests: every worked numeric example in the paper's Sections 4-5.

The Figure 5 matrix fixture was decoded from the paper text; these tests
pin the decode and, more importantly, pin our implementations of the
DFD recurrence, every lower bound, and the grouping machinery to the
paper's own arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.core.bounds import TightBounds
from repro.core.grouping import GroupLevel, group_dfd_bounds
from repro.core.problem import self_space
from repro.distances import dfd_matrix, dfd_matrix_recursive


def sub_dfd(mat, i, ie, j, je):
    return dfd_matrix(mat[i : ie + 1, j : je + 1])


class TestFigure5Decode:
    def test_matrix_is_symmetric_zero_diagonal(self, fig5_matrix):
        assert np.array_equal(fig5_matrix, fig5_matrix.T)
        assert np.array_equal(np.diag(fig5_matrix), np.zeros(12))

    def test_figure6_block(self, fig5_matrix):
        # Figure 6(a): the relevant part of dG for S_{0,3} vs S_{6,9};
        # rows are i = 0..3, columns are j = 6..9.
        expected = np.array(
            [
                [1, 1, 3, 2],
                [2, 3, 1, 2],
                [3, 2, 1, 4],
                [2, 3, 2, 1],
            ]
        )
        assert np.array_equal(fig5_matrix[0:4, 6:10], expected)


class TestSection41Examples:
    """Non-monotonicity example (Lemma 1) and Figure 6."""

    def test_dfd_values_of_lemma1(self, fig5_matrix):
        assert sub_dfd(fig5_matrix, 0, 2, 6, 9) == 4
        assert sub_dfd(fig5_matrix, 0, 3, 6, 9) == 1
        assert sub_dfd(fig5_matrix, 0, 4, 6, 9) == 7

    def test_non_monotonicity(self, fig5_matrix):
        # S_{0,2} subset of S_{0,3} subset of S_{0,4}: the DFD first
        # decreases (4 -> 1) then increases (1 -> 7): not monotone.
        d1 = sub_dfd(fig5_matrix, 0, 2, 6, 9)
        d2 = sub_dfd(fig5_matrix, 0, 3, 6, 9)
        d3 = sub_dfd(fig5_matrix, 0, 4, 6, 9)
        assert d2 < d1 and d2 < d3

    def test_recursive_oracle_agrees(self, fig5_matrix):
        assert dfd_matrix_recursive(fig5_matrix[0:4, 6:10]) == 1


class TestSection42Examples:
    """Cell, cross and band bound examples."""

    def test_lb_cell_5_9(self, fig5_matrix):
        # LBcell(5, 9) = dG(5, 9) = 6; exact DFD of (S_{5,6}, S_{9,11}) is 7.
        assert fig5_matrix[5, 9] == 6
        assert sub_dfd(fig5_matrix, 5, 6, 9, 11) == 7

    def test_start_cross_4_8(self, fig5_matrix):
        space = self_space(12, 1)
        tight = TightBounds(space, fig5_matrix)
        assert tight.row(4, 8) == 6
        assert tight.col(4, 8) == 6
        assert tight.start_cross(4, 8) == 6

    def test_end_cross_3_9(self, fig5_matrix):
        # Example under Eq. 9: xi=2, end-cell (3, 9) -> bound 7.
        space = self_space(12, 2)
        tight = TightBounds(space, fig5_matrix)
        assert tight.row(3, 9) == 6
        assert tight.col(3, 9) == 7
        assert tight.end_cross(3, 9) == 7

    def test_row_band_1_6(self, fig5_matrix):
        # Figure 8(a): xi=4 -> per-row minima 2, 1, 1, 6 -> band 6.
        space = self_space(12, 4)
        tight = TightBounds(space, fig5_matrix)
        assert tight.row(1, 6) == 2
        assert tight.row(1, 7) == 1
        assert tight.row(1, 8) == 1
        assert tight.row(1, 9) == 6
        assert tight.band_row(1, 6) == 6

    def test_col_band_1_8(self, fig5_matrix):
        # Figure 8(b): xi=4 -> per-column minima 1, 1, 5, 6 -> band 6.
        space = self_space(12, 4)
        tight = TightBounds(space, fig5_matrix)
        assert tight.col(1, 8) == 1
        assert tight.col(2, 8) == 1
        assert tight.col(3, 8) == 5
        assert tight.col(4, 8) == 6
        assert tight.band_col(1, 8) == 6


class TestSection51Examples:
    """Grouping: Figure 10's dmin/dmax between groups g2 and g5."""

    def test_group_min_max_g2_g5(self, fig5_matrix):
        level = GroupLevel.from_matrix(fig5_matrix, tau=2, mode="self")
        assert level.n_row_groups == 6
        assert level.gmin[2, 5] == 6
        assert level.gmax[2, 5] == 9

    def test_group_extents(self, fig5_matrix):
        level = GroupLevel.from_matrix(fig5_matrix, tau=2, mode="self")
        assert list(level.row_starts) == [0, 2, 4, 6, 8, 10]
        assert list(level.row_ends) == [1, 3, 5, 7, 9, 11]

    def test_group_dfd_bounds_bracket_exact(self, fig5_matrix):
        """Lemma 3 on the Figure 5 data: dFmin <= dF <= dFmax.

        (Figure 12's printed numbers come from a different example
        matrix, so the property -- not the figure's values -- is
        checked here, exhaustively over valid candidates.)
        """
        space = self_space(12, 2)
        level = GroupLevel.from_matrix(fig5_matrix, tau=2, mode="self")
        glb, gub = group_dfd_bounds(level, space, 0, 3, bsf=np.inf, early_stop=False)
        # Candidates with i in g0={0,1}, j in g3={6,7}.
        exact = []
        for i in (0, 1):
            for j in (6, 7):
                for ie in range(i + 3, j):
                    for je in range(j + 3, 12):
                        exact.append(sub_dfd(fig5_matrix, i, ie, j, je))
        assert exact, "the group pair must contain candidates"
        assert glb <= min(exact)
        assert gub >= min(exact)
