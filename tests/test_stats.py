"""Tests for SearchStats counters and the phase timer."""

from __future__ import annotations

import time

from repro.core.stats import PhaseTimer, SearchStats


class TestSearchStats:
    def test_defaults(self):
        s = SearchStats()
        assert s.subsets_pruned == 0
        assert s.pruning_ratio == 0.0
        assert s.space_mb() == 0.0

    def test_pruning_ratio(self):
        s = SearchStats(subsets_total=100, pruned_by_cell=80, pruned_by_cross=10)
        assert s.subsets_pruned == 90
        assert s.pruning_ratio == 0.9

    def test_breakdown_fractions(self):
        s = SearchStats(
            subsets_total=10,
            pruned_by_cell=5,
            pruned_by_cross=2,
            pruned_by_band=1,
            subsets_expanded=2,
        )
        b = s.breakdown()
        assert b == {"LBcell": 0.5, "LBcross": 0.2, "LBband": 0.1, "DFD": 0.2}
        assert sum(b.values()) == 1.0

    def test_space_mb(self):
        s = SearchStats(space_bytes=2 * 1024 * 1024)
        assert s.space_mb() == 2.0

    def test_merge(self):
        a = SearchStats(subsets_total=5, pruned_by_cell=3, cells_expanded=10,
                        space_bytes=100)
        b = SearchStats(subsets_total=7, pruned_by_cell=4, cells_expanded=20,
                        space_bytes=50)
        a.merge_group_stats(b)
        assert a.subsets_total == 12
        assert a.pruned_by_cell == 7
        assert a.cells_expanded == 30
        assert a.space_bytes == 100  # max, not sum

    def test_summary_contains_key_fields(self):
        s = SearchStats(algorithm="btm", n_rows=10, n_cols=10, xi=2,
                        subsets_total=4, subsets_expanded=1)
        text = s.summary()
        assert "btm" in text and "xi=2" in text


class TestPhaseTimer:
    def test_accumulates(self):
        s = SearchStats()
        with PhaseTimer(s, "time_dp"):
            time.sleep(0.01)
        first = s.time_dp
        assert first >= 0.009
        with PhaseTimer(s, "time_dp"):
            time.sleep(0.01)
        assert s.time_dp > first

    def test_accumulates_on_exception(self):
        s = SearchStats()
        try:
            with PhaseTimer(s, "time_bounds"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert s.time_bounds > 0
