"""Tests for the future-work extensions (top-k, approximate, join, clustering)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import discover_motif
from repro.distances import discrete_frechet
from repro.extensions import (
    cluster_subtrajectories,
    discover_motif_approximate,
    discover_top_k_motifs,
    similarity_join,
)
from repro.datasets import make_trajectory
from repro.errors import ReproError

from repro.testing import random_walk


class TestTopK:
    def test_first_entry_is_the_motif(self):
        traj = random_walk(50, 3)
        exact = discover_motif(traj, min_length=3, algorithm="brute")
        top = discover_top_k_motifs(traj, min_length=3, k=4)
        assert top[0].distance == pytest.approx(exact.distance)

    def test_sorted_and_ranked(self):
        traj = random_walk(50, 4)
        top = discover_top_k_motifs(traj, min_length=3, k=5)
        distances = [r.distance for r in top]
        assert distances == sorted(distances)
        assert [r.rank for r in top] == list(range(1, len(top) + 1))

    def test_distinct_subsets(self):
        traj = random_walk(50, 5)
        top = discover_top_k_motifs(traj, min_length=3, k=6)
        starts = [(r.first.start, r.second.start) for r in top]
        assert len(set(starts)) == len(starts)

    def test_k_one_matches_motif(self):
        traj = random_walk(40, 6)
        top = discover_top_k_motifs(traj, min_length=3, k=1)
        exact = discover_motif(traj, min_length=3)
        assert len(top) == 1
        assert top[0].distance == pytest.approx(exact.distance)

    def test_distances_verified(self):
        traj = random_walk(45, 7)
        for r in discover_top_k_motifs(traj, min_length=3, k=3):
            direct = discrete_frechet(r.first.points, r.second.points)
            assert direct == pytest.approx(r.distance)
            assert r.indices[1] - r.indices[0] > 3

    def test_exhaustive_against_brute_enumeration(self):
        """Top-k distances must equal the k smallest per-subset minima."""
        from repro.core import self_space
        from repro.distances import dfd_matrix
        from repro.distances.ground import ground_matrix

        traj = random_walk(26, 8)
        xi = 2
        k = 5
        dmat = ground_matrix(traj.points)
        space = self_space(traj.n, xi)
        per_subset = []
        for i, j in space.start_pairs():
            best = np.inf
            for ie in range(i + xi + 1, space.ie_limit(i, j) + 1):
                for je in range(j + xi + 1, traj.n):
                    best = min(best, dfd_matrix(dmat[i : ie + 1, j : je + 1]))
            per_subset.append(best)
        want = sorted(per_subset)[:k]
        got = [r.distance for r in discover_top_k_motifs(traj, min_length=xi, k=k)]
        assert np.allclose(got, want)

    def test_cross_mode(self):
        a, b = random_walk(30, 9), random_walk(30, 10)
        top = discover_top_k_motifs(a, b, min_length=3, k=3)
        exact = discover_motif(a, b, min_length=3)
        assert top[0].distance == pytest.approx(exact.distance)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            discover_top_k_motifs(random_walk(30, 0), min_length=3, k=0)


class TestApproximate:
    @pytest.mark.parametrize("eps", [0.0, 0.2, 0.5])
    def test_certificate(self, eps):
        traj = random_walk(50, 11)
        exact = discover_motif(traj, min_length=3, algorithm="brute")
        approx = discover_motif_approximate(traj, min_length=3, epsilon=eps)
        assert approx.distance >= exact.distance - 1e-9
        assert approx.distance <= (1 + eps) * exact.distance + 1e-9
        assert approx.optimum_lower_bound <= exact.distance + 1e-9
        assert approx.epsilon == eps

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            discover_motif_approximate(random_walk(30, 0), min_length=3, epsilon=-0.1)

    def test_large_epsilon_expands_fewer_subsets(self):
        traj = random_walk(80, 12)
        tight = discover_motif_approximate(traj, min_length=4, epsilon=0.0)
        loose = discover_motif_approximate(traj, min_length=4, epsilon=2.0)
        assert (
            loose.result.stats.subsets_expanded
            <= tight.result.stats.subsets_expanded
        )


class TestSimilarityJoin:
    def make_sets(self, seed=0, count=6, n=25):
        rng = np.random.default_rng(seed)
        base = [rng.normal(size=(n, 2)).cumsum(axis=0) for _ in range(count)]
        # Include a near-duplicate so matches exist at small theta.
        base.append(base[0] + 0.05)
        return base

    def test_matches_naive_join(self):
        trajs = self.make_sets()
        for theta in (0.5, 2.0, 8.0):
            matches, stats = similarity_join(trajs, trajs, theta)
            naive = {
                (a, b)
                for a in range(len(trajs))
                for b in range(len(trajs))
                if discrete_frechet(trajs[a], trajs[b]) <= theta
            }
            assert set(matches) == naive
            assert stats.pairs_total == len(trajs) ** 2
            assert stats.matches == len(naive)

    def test_filters_account_for_everything(self):
        trajs = self.make_sets(seed=2)
        _, stats = similarity_join(trajs, trajs, theta=1.0)
        assert stats.pruned_total + stats.decisions == stats.pairs_total

    def test_self_pairs_always_match(self):
        trajs = self.make_sets(seed=3)
        matches, _ = similarity_join(trajs, trajs, theta=0.0)
        assert {(k, k) for k in range(len(trajs))} <= set(matches)

    def test_negative_theta_rejected(self):
        with pytest.raises(ValueError):
            similarity_join([], [], theta=-1.0)

    def test_filters_actually_fire(self):
        rng = np.random.default_rng(4)
        near = [rng.normal(size=(20, 2)) for _ in range(3)]
        far = [rng.normal(size=(20, 2)) + 500.0 for _ in range(3)]
        _, stats = similarity_join(near, far, theta=1.0)
        assert stats.pruned_endpoint + stats.pruned_bbox == stats.pairs_total

    def test_boxes_apart_exact_for_chebyshev(self):
        """The closest-point box construction is exact for every
        coordinate-monotone metric, so the filter now engages for
        Chebyshev too (it used to run only under Euclidean)."""
        from repro.distances.ground import get_metric
        from repro.extensions.join import _bbox, _boxes_apart

        m = get_metric("chebyshev")
        assert m.coordinate_monotone
        rng = np.random.default_rng(11)
        for _ in range(200):
            p = rng.uniform(-10, 10, size=(6, 2))
            q = rng.uniform(-10, 10, size=(6, 2))
            theta = float(rng.uniform(0.1, 15.0))
            # Exactness: the decision equals the brute-force min
            # point-to-point distance between the boxes' corners/edges,
            # which the all-pairs point distance lower-bounds.
            min_pair = m.pairwise(p, q).min()
            if _boxes_apart(_bbox(p), _bbox(q), theta, m):
                assert min_pair > theta  # never prunes a feasible pair
        # Haversine stays outside the gate.
        assert not get_metric("haversine").coordinate_monotone

    def test_chebyshev_join_matches_naive(self):
        rng = np.random.default_rng(9)
        trajs = [rng.integers(0, 8, size=(12, 2)).astype(float)
                 for _ in range(6)]
        for theta in (1.0, 3.0):
            matches, _ = similarity_join(trajs, trajs, theta,
                                         metric="chebyshev")
            naive = {
                (a, b)
                for a in range(len(trajs))
                for b in range(len(trajs))
                if discrete_frechet(trajs[a], trajs[b], metric="chebyshev")
                <= theta
            }
            assert set(matches) == naive

    def test_indexed_join_identical_matches(self):
        trajs = self.make_sets(seed=5)
        for theta in (0.5, 2.0, 8.0):
            ref_matches, _ = similarity_join(trajs, trajs, theta)
            idx_matches, idx_stats = similarity_join(trajs, trajs, theta,
                                                     index=True)
            assert idx_matches == ref_matches
            assert (idx_stats.pruned_total + idx_stats.decisions
                    == idx_stats.pairs_total)
            assert "index" in idx_stats.details

    def test_join_pairs_equals_full_join_on_full_grid(self):
        from repro.extensions.join import join_pairs

        trajs = self.make_sets(seed=6)
        pts = [np.asarray(t, dtype=float) for t in trajs]
        pairs = [(a, b) for a in range(len(pts)) for b in range(len(pts))]
        ref_matches, ref_stats = similarity_join(trajs, trajs, 2.0)
        got_matches, got_stats = join_pairs(
            lambda i: pts[i], lambda i: pts[i], pairs, 2.0
        )
        assert sorted(got_matches) == ref_matches
        assert got_stats.pruned_endpoint == ref_stats.pruned_endpoint
        assert got_stats.decisions == ref_stats.decisions


class TestJoinTopK:
    def make_sets(self, seed=0, count=5, n=18):
        rng = np.random.default_rng(seed)
        return [rng.normal(size=(n, 2)).cumsum(axis=0) for _ in range(count)]

    def test_matches_brute_force_ranking(self):
        from repro.extensions.join import join_top_k

        left = self.make_sets(seed=1)
        right = self.make_sets(seed=2)
        brute = sorted(
            (float(discrete_frechet(p, q)), (a, b))
            for a, p in enumerate(left)
            for b, q in enumerate(right)
        )
        for k in (1, 3, 7, 30):
            got = join_top_k(left, right, k)
            want = brute[: min(k, len(brute))]
            assert [pair for _, pair in got] == [pair for _, pair in want]
            assert [d for d, _ in got] == pytest.approx(
                [d for d, _ in want]
            )

    def test_ties_rank_canonically(self):
        from repro.extensions.join import join_top_k

        base = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        # Duplicate trajectories force exact distance ties; the (a, b)
        # order must break them deterministically.
        left = [base, base.copy(), base + 10.0]
        got = join_top_k(left, left, 4)
        assert [pair for _, pair in got] == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert all(d == 0.0 for d, _ in got)

    def test_k_validation(self):
        from repro.extensions.join import join_top_k

        with pytest.raises(ValueError):
            join_top_k([], [], k=0)


class TestClustering:
    def test_figure_eight_forms_clusters(self):
        t = make_trajectory("figure_eight", 256, seed=0)
        clusters = cluster_subtrajectories(
            t, window_length=16, theta=0.5, stride=8
        )
        assert clusters, "laps must cluster"
        # Windows one lap (64 points) apart retrace the same curve.
        biggest = clusters[0]
        assert len(biggest) >= 3

    def test_random_walk_rarely_clusters(self):
        t = random_walk(200, 13)
        clusters = cluster_subtrajectories(
            t, window_length=16, theta=0.05, stride=8
        )
        assert len(clusters) == 0

    def test_no_overlapping_members(self):
        t = make_trajectory("figure_eight", 200, seed=1)
        for cluster in cluster_subtrajectories(
            t, window_length=20, theta=0.5, stride=4
        ):
            members = sorted(cluster.members)
            # Direct neighbours in a cluster may chain, but each linked
            # pair was non-overlapping; at minimum the set is distinct.
            assert len(set(members)) == len(members)

    def test_parameter_validation(self):
        t = random_walk(50, 14)
        with pytest.raises(ReproError):
            cluster_subtrajectories(t, window_length=1, theta=1.0)
        with pytest.raises(ReproError):
            cluster_subtrajectories(t, window_length=5, theta=1.0, stride=0)
        with pytest.raises(ReproError):
            cluster_subtrajectories(t, window_length=5, theta=-2.0)

    def test_min_cluster_size_filter(self):
        t = make_trajectory("figure_eight", 200, seed=2)
        all_clusters = cluster_subtrajectories(
            t, window_length=16, theta=0.6, stride=8, min_cluster_size=2
        )
        big_only = cluster_subtrajectories(
            t, window_length=16, theta=0.6, stride=8, min_cluster_size=4
        )
        assert len(big_only) <= len(all_clusters)
        assert all(len(c) >= 4 for c in big_only)
