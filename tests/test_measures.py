"""Unit and property tests for DTW, LCSS, EDR, lock-step ED, Hausdorff."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.distances import (
    directed_hausdorff,
    directed_hausdorff_matrix,
    discrete_frechet,
    dtw,
    dtw_matrix,
    edr,
    edr_matrix,
    hausdorff,
    lcss,
    lcss_length_matrix,
    lcss_similarity_matrix,
    lockstep_distance,
)
from repro.errors import TrajectoryError

point_seqs = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 10), st.just(2)),
    elements=st.floats(-20.0, 20.0, allow_nan=False),
)


def line(n, y=0.0):
    return np.column_stack([np.arange(n, dtype=float), np.full(n, y)])


class TestDtw:
    def test_identical_is_zero(self):
        p = line(6)
        assert dtw(p, p) == 0.0

    def test_parallel_lines_lockstep(self):
        p, q = line(5), line(5, y=2.0)
        assert dtw(p, q) == pytest.approx(10.0)  # 5 matches x distance 2

    def test_known_small_case(self):
        # d matrix [[1, 2], [3, 1]]: path (0,0)->(1,1) diagonal = 2.
        d = np.array([[1.0, 2.0], [3.0, 1.0]])
        assert dtw_matrix(d) == pytest.approx(2.0)

    def test_window_equals_unconstrained_when_wide(self):
        rng = np.random.default_rng(0)
        d = rng.random((8, 8))
        assert dtw_matrix(d, window=8) == pytest.approx(dtw_matrix(d))

    def test_window_restricts(self):
        # Forcing the diagonal can only increase the cost.
        rng = np.random.default_rng(1)
        d = rng.random((10, 10))
        assert dtw_matrix(d, window=0) >= dtw_matrix(d) - 1e-12

    def test_window_zero_is_lockstep_sum(self):
        rng = np.random.default_rng(2)
        d = rng.random((6, 6))
        assert dtw_matrix(d, window=0) == pytest.approx(np.trace(d))

    def test_window_cannot_align_lengths(self):
        with pytest.raises(TrajectoryError):
            dtw_matrix(np.ones((3, 8)), window=2)

    def test_negative_window(self):
        with pytest.raises(TrajectoryError):
            dtw_matrix(np.ones((3, 3)), window=-1)

    def test_oversampling_inflates_dtw_not_dfd(self):
        # The Figure 3 phenomenon in miniature.
        rng = np.random.default_rng(3)
        p = line(30)
        dup = np.repeat(p, 5, axis=0) + rng.normal(0, 0.3, size=(150, 2))
        assert dtw(p, dup) > 5 * dtw(p, p + 0.05)
        assert discrete_frechet(p, dup) < 2.0

    @given(point_seqs, point_seqs)
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, p, q):
        assert dtw(p, q) == pytest.approx(dtw(q, p))

    @given(point_seqs, point_seqs)
    @settings(max_examples=30, deadline=None)
    def test_dfd_lower_bounds_dtw_over_length(self, p, q):
        # max matched distance <= sum of matched distances.
        assert discrete_frechet(p, q) <= dtw(p, q) + 1e-9


class TestLcss:
    def test_identical_full_match(self):
        p = line(8)
        assert lcss_length_matrix(np.zeros((8, 8)), eps=0.1) == 8
        assert lcss(p, p, eps=0.1) == 0.0

    def test_disjoint_no_match(self):
        p, q = line(5), line(5, y=10.0)
        assert lcss(p, q, eps=1.0) == 1.0

    def test_half_match(self):
        d = np.full((4, 4), 9.0)
        np.fill_diagonal(d[:2, :2], 0.0)
        assert lcss_length_matrix(d, eps=0.5) == 2
        assert lcss_similarity_matrix(d, eps=0.5) == pytest.approx(0.5)

    def test_delta_window(self):
        # Matches allowed only within |i - j| <= delta.
        d = np.full((4, 4), 9.0)
        d[0, 3] = 0.0
        assert lcss_length_matrix(d, eps=0.5) == 1
        assert lcss_length_matrix(d, eps=0.5, delta=1) == 0

    def test_subsequence_order_preserved(self):
        # Crossing matches cannot both count.
        d = np.full((2, 2), 9.0)
        d[0, 1] = 0.0
        d[1, 0] = 0.0
        assert lcss_length_matrix(d, eps=0.5) == 1

    def test_validation(self):
        with pytest.raises(TrajectoryError):
            lcss_length_matrix(np.ones((2, 2)), eps=-1.0)
        with pytest.raises(TrajectoryError):
            lcss_length_matrix(np.ones((2, 2)), eps=1.0, delta=-2)

    @given(point_seqs, point_seqs)
    @settings(max_examples=25, deadline=None)
    def test_distance_in_unit_interval(self, p, q):
        assert 0.0 <= lcss(p, q, eps=5.0) <= 1.0


class TestEdr:
    def test_identical_zero_edits(self):
        p = line(6)
        assert edr(p, p, eps=0.1) == 0

    def test_all_different_is_max_length(self):
        p, q = line(4), line(6, y=50.0)
        assert edr(p, q, eps=1.0) == 6  # 4 substitutions + 2 inserts

    def test_single_insert(self):
        p = line(5)
        q = np.vstack([p, [[5.0, 0.0]]])
        assert edr(p, q, eps=0.1) == 1

    def test_matches_levenshtein_semantics(self):
        # "kitten" -> "sitting" = 3 edits, encoded as 1-D points.
        def encode(word):
            return np.column_stack(
                [[float(ord(c)) for c in word], np.zeros(len(word))]
            )

        assert edr(encode("kitten"), encode("sitting"), eps=0.5) == 3

    def test_validation(self):
        with pytest.raises(TrajectoryError):
            edr_matrix(np.ones((2, 2)), eps=-0.5)

    @given(point_seqs, point_seqs)
    @settings(max_examples=25, deadline=None)
    def test_symmetry(self, p, q):
        assert edr(p, q, eps=2.0) == edr(q, p, eps=2.0)

    @given(point_seqs, point_seqs)
    @settings(max_examples=25, deadline=None)
    def test_bounded_by_max_length(self, p, q):
        assert 0 <= edr(p, q, eps=2.0) <= max(len(p), len(q))


class TestLockstep:
    def test_aggregates(self):
        p, q = line(4), line(4, y=3.0)
        assert lockstep_distance(p, q, aggregate="mean") == pytest.approx(3.0)
        assert lockstep_distance(p, q, aggregate="sum") == pytest.approx(12.0)
        assert lockstep_distance(p, q, aggregate="max") == pytest.approx(3.0)
        assert lockstep_distance(p, q, aggregate="rms") == pytest.approx(3.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(TrajectoryError):
            lockstep_distance(line(4), line(5))

    def test_unknown_aggregate(self):
        with pytest.raises(TrajectoryError):
            lockstep_distance(line(4), line(4), aggregate="median")

    def test_max_aggregate_upper_bounds_dfd(self):
        rng = np.random.default_rng(4)
        p = rng.normal(size=(12, 2))
        q = rng.normal(size=(12, 2))
        # The identity coupling is one valid coupling.
        assert discrete_frechet(p, q) <= lockstep_distance(p, q, aggregate="max") + 1e-9


class TestHausdorff:
    def test_directed_asymmetry(self):
        p = line(3)
        q = np.vstack([p, [[0.0, 10.0]]])
        assert directed_hausdorff(p, q) == pytest.approx(0.0)
        assert directed_hausdorff(q, p) == pytest.approx(10.0)

    def test_symmetric_is_max_of_directed(self):
        rng = np.random.default_rng(5)
        p, q = rng.normal(size=(8, 2)), rng.normal(size=(11, 2))
        assert hausdorff(p, q) == pytest.approx(
            max(directed_hausdorff(p, q), directed_hausdorff(q, p))
        )

    def test_empty_rejected(self):
        with pytest.raises(TrajectoryError):
            directed_hausdorff_matrix(np.empty((0, 2)))

    @given(point_seqs, point_seqs)
    @settings(max_examples=40, deadline=None)
    def test_hausdorff_lower_bounds_dfd(self, p, q):
        # Every point participates in a DFD coupling, so both directed
        # Hausdorff distances bound the DFD from below (join filter 3).
        assert hausdorff(p, q) <= discrete_frechet(p, q) + 1e-9
