"""Unit tests for the engine's plan/execute/cache layers (PR 4 split).

The planner must be pure (no pools, no shared memory, deterministic
keys), the oracle manager must cache by content, and the executor must
own the pool/shm lifecycle the facade delegates to.  The facade itself
is covered by ``tests/test_engine.py`` and the parity suite; these
tests pin the layer contracts the split introduced.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GTM
from repro.core.problem import self_space
from repro.distances.ground import get_metric
from repro.engine import EngineExecutor, MotifEngine, OracleManager
from repro.engine import planner
from repro.errors import ReproError
from repro.testing import random_walk
from repro.trajectory import Trajectory


# ----------------------------------------------------------------------
# Planner: pure decisions and keys
# ----------------------------------------------------------------------
class TestPlanner:
    def test_parse_item_single_and_pair(self):
        traj = random_walk(12, seed=1)
        a, b = planner.parse_item(traj)
        assert isinstance(a, Trajectory) and b is None
        a, b = planner.parse_item((traj, traj.points))
        assert isinstance(a, Trajectory) and isinstance(b, Trajectory)

    def test_build_space_modes(self):
        traj = random_walk(20, seed=2)
        assert planner.build_space(traj, None, 3).mode == "self"
        assert planner.build_space(traj, traj, 3).mode == "cross"
        with pytest.raises(ReproError):
            planner.matrix_space((4, 5), 1, "self")
        assert planner.matrix_space((4, 5), 1, "cross").mode == "cross"

    def test_keys_are_content_addressed(self):
        metric = get_metric("euclidean")
        a1 = random_walk(10, seed=3)
        a2 = Trajectory(a1.points.copy())  # same content, new object
        key1 = planner.dense_oracle_key(a1, None, metric)
        key2 = planner.dense_oracle_key(a2, None, metric)
        assert key1 == key2
        assert planner.dense_oracle_key(a1, a1, metric) != key1
        rk1 = planner.discover_result_key(a1, None, metric, 3, "btm", {})
        rk2 = planner.discover_result_key(a2, None, metric, 3, "BTM", {})
        assert rk1 == rk2  # algorithm names are case-normalised
        assert planner.discover_result_key(a1, None, metric, 3, GTM(), {}) is None

    def test_join_keys_depend_on_index_flag(self):
        metric = get_metric("euclidean")
        items = [random_walk(8, seed=s) for s in range(3)]
        k_plain = planner.join_result_key(items, items, metric, 1.0, False)
        k_index = planner.join_result_key(items, items, metric, 1.0, True)
        assert k_plain != k_index  # different statistics, different entry

    def test_should_partition(self):
        assert planner.should_partition(2, None, 1.0)
        assert not planner.should_partition(1, None, 1.0)
        assert not planner.should_partition(2, (1.0, None), 1.0)
        assert not planner.should_partition(2, None, 1.5)  # approximate

    def test_plan_pair_strides_cover_each_pair_once(self):
        strides = planner.plan_pair_strides(23, workers=2, chunks_per_worker=3)
        seen = sorted(
            pos for start, step in strides for pos in range(start, 23, step)
        )
        assert seen == list(range(23))

    def test_tau_schedule_matches_gtm_descent(self):
        algo = GTM(tau=16, min_tau=2)
        space = self_space(64, 4)
        assert list(planner.tau_schedule(algo, space)) == [16, 8, 4, 2]
        # Clamped entry point: tau capped at n_rows // 2.
        small = self_space(12, 2)
        assert list(planner.tau_schedule(algo, small))[0] == 6

    def test_band_edges_cover_rows(self):
        bands = planner.band_edges(10, 3)
        flat = np.concatenate(bands)
        assert flat.tolist() == list(range(10))

    def test_deadline_helpers(self):
        assert planner.deadline_for(None, 10.0) is None
        assert planner.deadline_for(2.5, 10.0) == 12.5
        assert planner.remaining_budget(None, 0.0, 5.0) is None
        assert planner.remaining_budget(4.0, 1.0, 3.0) == pytest.approx(2.0)


# ----------------------------------------------------------------------
# Oracle manager: content-addressed caching
# ----------------------------------------------------------------------
class TestOracleManager:
    def test_dense_oracle_cached_by_content(self):
        manager = OracleManager()
        metric = get_metric("euclidean")
        traj = random_walk(15, seed=4)
        twin = Trajectory(traj.points.copy())
        o1, k1 = manager.dense_oracle(traj, None, metric)
        o2, k2 = manager.dense_oracle(twin, None, metric)
        assert k1 == k2 and o1 is o2  # one build, served twice
        assert manager.cache_info()["oracle"]["hits"] == 1

    def test_serial_oracle_mirrors_algorithm_contract(self):
        from repro.core import BTM, GTMStar
        from repro.distances.ground import DenseGroundMatrix, LazyGroundMatrix

        manager = OracleManager()
        metric = get_metric("euclidean")
        traj = random_walk(15, seed=5)
        dense = manager.serial_oracle(BTM(), traj, None, metric, None)
        assert isinstance(dense, DenseGroundMatrix)
        lazy = manager.serial_oracle(GTMStar(), traj, None, metric, None)
        assert isinstance(lazy, LazyGroundMatrix)

    def test_disabled_caches_still_build(self):
        manager = OracleManager(oracle_cache_size=0, tables_cache_size=0,
                                result_cache_size=0)
        metric = get_metric("euclidean")
        traj = random_walk(10, seed=6)
        oracle, okey = manager.dense_oracle(traj, None, metric)
        assert oracle.shape == (10, 10)
        manager.put_result(("x",), 1)
        assert manager.result(("x",)) is None
        assert manager.result(None) is None

    def test_bound_tables_cached_per_geometry(self):
        manager = OracleManager()
        metric = get_metric("euclidean")
        traj = random_walk(14, seed=7)
        dense, okey = manager.dense_oracle(traj, None, metric)
        t1 = manager.bound_tables(okey, self_space(14, 2), dense)
        t2 = manager.bound_tables(okey, self_space(14, 2), dense)
        t3 = manager.bound_tables(okey, self_space(14, 3), dense)
        assert t1 is t2 and t1 is not t3


# ----------------------------------------------------------------------
# Executor: lifecycle and configuration
# ----------------------------------------------------------------------
class TestEngineExecutor:
    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            EngineExecutor("threads")
        with pytest.raises(ValueError):
            EngineExecutor("process", chunks_per_worker=0)
        with pytest.raises(ValueError):
            EngineExecutor("process", bsf_sync_every=0)

    def test_inline_kind_never_builds_a_pool(self):
        exec_ = EngineExecutor("inline")
        assert not exec_.pool_ready(4)
        assert not exec_.use_shared_memory()
        out = exec_.map_tasks([1, 2, 3], 4, lambda x: x * 2)
        assert out == [2, 4, 6]
        assert exec_._pool is None
        exec_.close()

    def test_transfer_counters_start_zeroed(self):
        exec_ = EngineExecutor("inline")
        info = exec_.transfer_info()
        for field in ("dense_bytes_pickled", "bounds_bytes_pickled",
                      "group_level_bytes_pickled", "index_bytes_pickled",
                      "shm_index_segments", "shm_index_refs"):
            assert info[field] == 0
        assert info["shm_live_segments"] == 0

    def test_count_transfer_accounts_index_payloads(self):
        from repro.engine.worker import PairsJoinTask

        exec_ = EngineExecutor("inline")
        pairs = np.zeros((4, 2), dtype=np.int64)
        pts = [np.zeros((5, 2)), np.zeros((3, 2))]
        exec_.count_transfer([
            PairsJoinTask(theta=1.0, metric="euclidean", pairs=pairs,
                          left_points=pts)
        ])
        info = exec_.transfer_info()
        expected = pairs.nbytes + sum(p.nbytes for p in pts)
        assert info["index_bytes_pickled"] == expected
        assert info["pool_tasks"] == 1

    def test_facade_delegates_lifecycle(self):
        eng = MotifEngine(executor="inline", chunks_per_worker=2,
                          bsf_sync_every=5)
        assert eng.executor == "inline"
        assert eng.chunks_per_worker == 2
        assert eng.bsf_sync_every == 5
        assert eng._pool is None
        assert eng._shm is eng._exec.shm
        eng.close()

    def test_remaining_budget_algo_timeouts(self):
        from repro.core import BTM, MotifTimeout

        exec_ = EngineExecutor("inline")
        algo = BTM()
        assert exec_.remaining_budget_algo(algo, 0.0) is algo  # no budget
        algo = BTM(timeout=1e-9)
        with pytest.raises(MotifTimeout):
            exec_.remaining_budget_algo(algo, 0.0)


# ----------------------------------------------------------------------
# Corpus workload edge cases (regressions from review)
# ----------------------------------------------------------------------
class TestCorpusEdgeCases:
    def test_cluster_reports_singletons_when_no_pairs_exist(self):
        """All windows overlap -> no candidate edges, but
        min_cluster_size=1 must still report every window (parity with
        the serial extension)."""
        from repro.extensions.clustering import cluster_subtrajectories

        traj = random_walk(10, seed=20)
        ref = cluster_subtrajectories(
            traj, window_length=8, theta=5.0, min_cluster_size=1
        )
        assert len(ref) == 3  # three singleton windows
        for workers in (1, 2):
            for use_index in (False, True):
                eng = MotifEngine(executor="inline")
                got = eng.cluster(
                    traj, window_length=8, theta=5.0, min_cluster_size=1,
                    workers=workers, index=use_index,
                )
                assert got == ref, (workers, use_index)

    def test_discover_many_indexed_mixed_dimensionality_falls_back(self):
        """A batch of independent queries may mix dimensionalities; the
        corpus transport must fall back to inline shipping, not crash."""
        from repro.core import discover_motif

        rng = np.random.default_rng(21)
        flat = [Trajectory(rng.normal(size=(24, 2)).cumsum(axis=0))
                for _ in range(2)]
        deep = [Trajectory(rng.normal(size=(24, 3)).cumsum(axis=0))
                for _ in range(2)]
        batch = flat + deep
        refs = [discover_motif(t, min_length=3, algorithm="btm")
                for t in batch]
        with MotifEngine(workers=2, index=True, result_cache_size=0) as eng:
            got = eng.discover_many(batch, min_length=3, algorithm="btm",
                                    dedupe=False)
        for g, r in zip(got, refs):
            assert g.distance == r.distance and g.indices == r.indices

    def test_join_negative_theta_same_exception_on_both_paths(self):
        traj = random_walk(10, seed=22)
        eng = MotifEngine(executor="inline")
        for use_index in (False, True):
            with pytest.raises(ValueError):
                eng.join([traj], [traj], theta=-1.0, index=use_index)


# ----------------------------------------------------------------------
# Adaptive chunk granularity (ISSUE 5 satellite)
# ----------------------------------------------------------------------
class TestAdaptiveChunks:
    """planner.adapt_chunks_per_worker is a pure map from observed
    chunk runtimes to the next round's granularity; the executor only
    applies it when asked, and answers never depend on it."""

    def test_no_observations_keeps_current(self):
        assert planner.adapt_chunks_per_worker(3, []) == 3
        assert planner.adapt_chunks_per_worker(3, [None, -1.0]) == 3

    def test_skewed_round_goes_finer(self):
        # One straggler dominating the round -> more, smaller chunks.
        assert planner.adapt_chunks_per_worker(3, [0.1, 0.1, 0.1, 1.0]) == 4

    def test_overhead_round_goes_coarser(self):
        # All chunks beneath the scheduling floor -> fewer, larger.
        assert planner.adapt_chunks_per_worker(3, [1e-4, 2e-4, 1e-4]) == 2

    def test_balanced_round_stays_put(self):
        assert planner.adapt_chunks_per_worker(3, [0.1, 0.11, 0.09]) == 3

    def test_bounds_respected(self):
        assert planner.adapt_chunks_per_worker(1, [1e-5, 1e-5]) == 1
        assert planner.adapt_chunks_per_worker(16, [0.01, 5.0]) == 16
        # Out-of-range inputs are clamped before adapting.
        assert planner.adapt_chunks_per_worker(99, [0.1, 0.1]) == 16

    def test_single_step_hysteresis(self):
        # However extreme the skew, granularity moves one step a round.
        assert planner.adapt_chunks_per_worker(3, [1e-9, 100.0]) == 4

    def test_executor_applies_only_when_enabled(self):
        fixed = EngineExecutor("inline", chunks_per_worker=3)
        fixed.observe_chunk_times([1e-5, 1e-5, 1e-5])
        assert fixed.chunks_per_worker == 3
        assert fixed.adapt_rounds == 0
        adaptive = EngineExecutor(
            "inline", chunks_per_worker=3, adaptive_chunks=True
        )
        adaptive.observe_chunk_times([1e-5, 1e-5, 1e-5])
        assert adaptive.chunks_per_worker == 2
        assert adaptive.adapt_rounds == 1
        assert adaptive.adapt_changes == 1
        info = adaptive.transfer_info()
        assert info["chunks_per_worker"] == 2
        assert info["adapt_rounds"] == 1

    def test_adaptive_engine_parity_with_serial(self):
        """Granularity drift must never change an answer: repeated
        discover/top-k rounds under adaptation stay byte-identical."""
        traj = random_walk(130, seed=31)
        with MotifEngine(workers=1) as serial:
            ref = serial.discover(traj, min_length=6, algorithm="btm")
            ref_topk = serial.top_k(traj, min_length=6, k=3)
        with MotifEngine(
            workers=2, executor="inline", adaptive_chunks=True,
            result_cache_size=0,
        ) as adaptive:
            for _ in range(3):  # several rounds so granularity can move
                got = adaptive.discover(
                    traj, min_length=6, algorithm="btm", cacheable=False
                )
                assert (got.distance, got.indices) == (
                    ref.distance, ref.indices
                )
            got_topk = adaptive.top_k(traj, min_length=6, k=3)
            info = adaptive.transfer_info()
        assert [(m.distance, m.indices) for m in got_topk] == [
            (m.distance, m.indices) for m in ref_topk
        ]
        assert info["adapt_rounds"] >= 4
        assert 1 <= info["chunks_per_worker"] <= 16
