"""Cross-cutting hypothesis invariants for the whole library.

These are the mathematical identities a DFD motif library must satisfy
regardless of implementation strategy; several of them caught real bugs
during development (see docs/algorithms.md §7).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import Trajectory, discover_motif
from repro.distances import (
    discrete_frechet,
    dfd_matrix,
    dtw,
    hausdorff,
    lockstep_distance,
)
from repro.errors import TrajectoryError
from repro.distances.ground import DenseGroundMatrix

point_seqs = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 12), st.just(2)),
    elements=st.floats(-25.0, 25.0, allow_nan=False),
)

walk_seeds = st.integers(0, 100_000)


def walk(seed: int, n: int = 32) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, 2)).cumsum(axis=0)


class TestDfdInvariances:
    @given(point_seqs, point_seqs, st.floats(0.1, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_scale_equivariance(self, p, q, factor):
        base = discrete_frechet(p, q)
        scaled = discrete_frechet(p * factor, q * factor)
        assert scaled == pytest.approx(base * factor, rel=1e-9, abs=1e-9)

    @given(point_seqs, point_seqs,
           st.floats(-100, 100), st.floats(-100, 100))
    @settings(max_examples=30, deadline=None)
    def test_translation_invariance(self, p, q, tx, ty):
        t = np.array([tx, ty])
        assert discrete_frechet(p + t, q + t) == pytest.approx(
            discrete_frechet(p, q), abs=1e-9
        )

    @given(point_seqs, st.integers(0, 10))
    @settings(max_examples=30, deadline=None)
    def test_duplicating_a_point_changes_nothing(self, p, pos):
        """Couplings may pause, so repeating a vertex is free for DFD
        (unlike DTW, which pays for every extra sample)."""
        pos = pos % p.shape[0]
        dup = np.insert(p, pos, p[pos], axis=0)
        assert discrete_frechet(p, dup) == pytest.approx(0.0, abs=1e-12)

    @given(point_seqs, point_seqs)
    @settings(max_examples=30, deadline=None)
    def test_reversal_symmetry(self, p, q):
        """Reversing both curves preserves the DFD (paths reverse)."""
        assert discrete_frechet(p[::-1], q[::-1]) == pytest.approx(
            discrete_frechet(p, q), abs=1e-9
        )

    @given(point_seqs, point_seqs)
    @settings(max_examples=30, deadline=None)
    def test_sandwich(self, p, q):
        """Hausdorff <= DFD <= lock-step max (for equal lengths)."""
        d = discrete_frechet(p, q)
        assert hausdorff(p, q) <= d + 1e-9
        if p.shape == q.shape:
            assert d <= lockstep_distance(p, q, aggregate="max") + 1e-9

    @given(point_seqs)
    @settings(max_examples=20, deadline=None)
    def test_dtw_zero_iff_dfd_zero(self, p):
        assert dtw(p, p) == 0.0
        assert discrete_frechet(p, p) == 0.0


class TestMotifInvariances:
    @given(walk_seeds)
    @settings(max_examples=12, deadline=None)
    def test_motif_translation_invariance(self, seed):
        pts = walk(seed)
        a = discover_motif(Trajectory(pts), min_length=3, algorithm="btm")
        b = discover_motif(
            Trajectory(pts + 1000.0), min_length=3, algorithm="btm"
        )
        assert a.indices == b.indices
        assert a.distance == pytest.approx(b.distance, rel=1e-9, abs=1e-9)

    @given(walk_seeds, st.floats(0.5, 4.0))
    @settings(max_examples=12, deadline=None)
    def test_motif_scale_equivariance(self, seed, factor):
        pts = walk(seed)
        a = discover_motif(Trajectory(pts), min_length=3, algorithm="btm")
        b = discover_motif(Trajectory(pts * factor), min_length=3,
                           algorithm="btm")
        assert b.distance == pytest.approx(a.distance * factor, rel=1e-9)

    @given(walk_seeds, st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=12, deadline=None)
    def test_gtm_tau_invariance(self, seed, tau):
        """The answer never depends on the grouping granularity."""
        pts = walk(seed, n=40)
        base = discover_motif(Trajectory(pts), min_length=3, algorithm="btm")
        gtm = discover_motif(
            Trajectory(pts), min_length=3, algorithm="gtm", tau=tau
        )
        assert gtm.distance == pytest.approx(base.distance, abs=1e-9)

    @given(walk_seeds)
    @settings(max_examples=10, deadline=None)
    def test_motif_distance_bounded_by_any_candidate(self, seed):
        """The motif beats a spot-check candidate pair."""
        pts = walk(seed, n=36)
        traj = Trajectory(pts)
        result = discover_motif(traj, min_length=3, algorithm="btm")
        spot = discrete_frechet(pts[0:5], pts[10:16])
        assert result.distance <= spot + 1e-9

    @given(walk_seeds)
    @settings(max_examples=10, deadline=None)
    def test_self_motif_upper_bounds_planted_revisit(self, seed):
        """Planting an exact revisit caps the motif distance at ~0."""
        pts = walk(seed, n=40)
        pts[30:36] = pts[5:11]
        result = discover_motif(Trajectory(pts), min_length=4,
                                algorithm="gtm", tau=4)
        assert result.distance <= 1e-9


class TestValidationProperties:
    def test_dense_oracle_rejects_nan(self):
        m = np.zeros((4, 4))
        m[1, 2] = np.nan
        with pytest.raises(TrajectoryError):
            DenseGroundMatrix(m)

    def test_dense_oracle_rejects_inf(self):
        m = np.zeros((4, 4))
        m[3, 0] = np.inf
        with pytest.raises(TrajectoryError):
            DenseGroundMatrix(m)

    def test_validation_can_be_disabled(self):
        m = np.zeros((4, 4))
        m[1, 2] = np.inf
        assert DenseGroundMatrix(m, validate=False).value(1, 2) == np.inf

    @given(hnp.arrays(dtype=np.float64, shape=st.tuples(st.integers(1, 6),
                                                        st.integers(1, 6)),
                      elements=st.floats(0, 100, allow_nan=False)))
    @settings(max_examples=25, deadline=None)
    def test_dfd_value_always_in_matrix(self, m):
        assert dfd_matrix(m) in m
