"""Tests for the synthetic dataset simulators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    dataset_names,
    get_dataset,
    local_xy_to_latlon,
    make_trajectory,
    meters_to_degrees,
    nonuniform_variant,
)
from repro.datasets.synthetic import PlantedMotifWalk
from repro.errors import DatasetError

ALL = ("geolife", "truck", "baboon", "random_walk", "planted", "figure_eight")


class TestRegistry:
    def test_names(self):
        assert set(ALL) <= set(dataset_names())

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            get_dataset("mars-rover")

    def test_make_trajectory(self):
        t = make_trajectory("random_walk", 50, seed=3)
        assert t.n == 50


@pytest.mark.parametrize("name", ALL)
class TestGeneratorContract:
    def test_exact_length(self, name):
        for n in (50, 137, 300):
            assert get_dataset(name, seed=1).generate(n).n == n

    def test_deterministic_per_seed(self, name):
        a = get_dataset(name, seed=7).generate(80)
        b = get_dataset(name, seed=7).generate(80)
        assert np.array_equal(a.points, b.points)
        assert np.array_equal(a.timestamps, b.timestamps)

    def test_seeds_differ(self, name):
        a = get_dataset(name, seed=1).generate(80)
        b = get_dataset(name, seed=2).generate(80)
        assert not np.array_equal(a.points, b.points)

    def test_timestamps_strictly_ascending(self, name):
        t = get_dataset(name, seed=3).generate(120)
        assert (np.diff(t.timestamps) > 0).all()

    def test_pair_generation(self, name):
        a, b = get_dataset(name, seed=5).generate_pair(60)
        assert a.n == b.n == 60
        assert not np.array_equal(a.points, b.points)

    def test_too_small_rejected(self, name):
        with pytest.raises(DatasetError):
            get_dataset(name).generate(1)


class TestDatasetCharacteristics:
    def test_geolife_varying_sampling(self):
        t = get_dataset("geolife", seed=0).generate(500)
        periods = np.diff(t.timestamps)
        # GeoLife-like logs mix sampling periods over a wide range.
        assert periods.max() / periods.min() > 10

    def test_baboon_uniform_1hz(self):
        t = get_dataset("baboon", seed=0).generate(300)
        assert np.allclose(np.diff(t.timestamps), 1.0)

    def test_truck_near_constant_period(self):
        t = get_dataset("truck", seed=0).generate(300)
        periods = np.diff(t.timestamps)
        assert periods.std() / periods.mean() < 0.2

    def test_latlon_ranges(self):
        for name, lat in (("geolife", 39.9), ("truck", 37.98), ("baboon", 0.29)):
            t = get_dataset(name, seed=1).generate(200)
            assert t.crs == "latlon"
            assert abs(t.points[:, 0].mean() - lat) < 1.0

    def test_figure_eight_revisits(self):
        t = get_dataset("figure_eight", seed=0).generate(200)
        # Two laps pass close to the same places: small motif distance.
        from repro import discover_motif

        r = discover_motif(t, min_length=8, algorithm="gtm")
        assert r.distance < 1.0


class TestPlantedMotif:
    def test_planted_segment_is_discovered(self):
        gen = PlantedMotifWalk(seed=11)
        n = 160
        traj = gen.generate(n)
        src, dst, m = gen.planted_indices(n)
        from repro import discover_motif

        xi = m - 2
        result = discover_motif(traj, min_length=xi, algorithm="gtm")
        # The motif must overlap the planted pair on both sides.
        i, ie, j, je = result.indices
        assert not (ie < src or i > src + m), (result.indices, (src, dst, m))
        assert not (je < dst or j > dst + m)
        # And its distance is within the planted noise scale.
        assert result.distance < 10 * gen.motif_noise + 1e-6

    def test_planted_indices_consistent(self):
        gen = PlantedMotifWalk(seed=1)
        src, dst, m = gen.planted_indices(100)
        assert src + m <= dst
        assert dst + m <= 100


class TestHelpers:
    def test_meters_to_degrees_roundtrip(self):
        dlat, dlon = meters_to_degrees(111_320.0, 111_320.0, 0.0)
        assert dlat == pytest.approx(1.0)
        assert dlon == pytest.approx(1.0)

    def test_local_xy_to_latlon(self):
        xy = np.array([[0.0, 0.0], [0.0, 111_320.0]])
        ll = local_xy_to_latlon(xy, 10.0, 20.0)
        assert ll[0, 0] == pytest.approx(10.0)
        assert ll[1, 0] == pytest.approx(11.0)

    def test_nonuniform_variant(self):
        t = make_trajectory("random_walk", 100, seed=1)
        thin = nonuniform_variant(t, keep_fraction=0.5, seed=2)
        assert 2 <= thin.n < 100
        assert (np.diff(thin.timestamps) > 0).all()

    def test_nonuniform_variant_validation(self):
        t = make_trajectory("random_walk", 50, seed=1)
        with pytest.raises(DatasetError):
            nonuniform_variant(t, keep_fraction=0.0)
