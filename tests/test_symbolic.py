"""Tests for the symbolic baseline (Figure 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrajectoryError
from repro.symbolic import (
    ALPHABET,
    fragment_headings,
    longest_repeated_substring,
    symbolic_motif,
    symbolize,
)
from repro.trajectory import Trajectory, translate
from repro.datasets import make_trajectory


def path_from_moves(moves, step=10.0):
    """Build a trajectory from unit moves ('N', 'E', 'S', 'W')."""
    deltas = {"N": (0, 1), "E": (1, 0), "S": (0, -1), "W": (-1, 0)}
    pts = [(0.0, 0.0)]
    for mv in moves:
        dx, dy = deltas[mv]
        for _ in range(4):
            x, y = pts[-1]
            pts.append((x + dx * step, y + dy * step))
    return Trajectory(np.asarray(pts))


class TestSymbolize:
    def test_alphabet_only(self):
        t = make_trajectory("truck", 300, seed=1)
        s = symbolize(t, fragment_length=8)
        assert set(s) <= set(ALPHABET)
        assert len(s) == (t.n - 1) // 7

    def test_vertical_and_horizontal(self):
        north = path_from_moves("NNNN")
        east = path_from_moves("EEEE")
        assert set(symbolize(north, fragment_length=5)) == {"V"}
        assert set(symbolize(east, fragment_length=5)) == {"H"}

    def test_left_turn_detected(self):
        # East then north: a counter-clockwise (left) turn.
        t = path_from_moves("EENN")
        s = symbolize(t, fragment_length=5)
        assert "L" in s

    def test_right_turn_detected(self):
        t = path_from_moves("EESS")
        s = symbolize(t, fragment_length=5)
        assert "R" in s

    def test_translation_invariance_failure_mode(self):
        """The Figure 4 phenomenon: same string, different city."""
        t = make_trajectory("truck", 250, seed=3)
        far = translate(t, (17.0, 17.0))
        assert symbolize(t, 8) == symbolize(far, 8)

    def test_too_short_rejected(self):
        t = path_from_moves("E")
        with pytest.raises(TrajectoryError):
            symbolize(t, fragment_length=50)

    def test_fragment_length_validation(self):
        with pytest.raises(TrajectoryError):
            symbolize(path_from_moves("EE"), fragment_length=1)

    def test_headings_shape(self):
        t = path_from_moves("EENN")
        h = fragment_headings(t, 5)
        assert h.shape == (4,)
        assert h[0] == pytest.approx(0.0)
        assert h[-1] == pytest.approx(np.pi / 2)


def naive_lrs(text):
    """O(n^3) reference for the longest repeated non-overlapping substring."""
    n = len(text)
    best = None
    for length in range(n // 2, 0, -1):
        for a in range(n - 2 * length + 1):
            for b in range(a + length, n - length + 1):
                if text[a : a + length] == text[b : b + length]:
                    return (a, b, length)
    return best


class TestLongestRepeatedSubstring:
    @pytest.mark.parametrize(
        "text,expected_length",
        [
            ("abcabc", 3),
            ("aaaa", 2),
            ("abab", 2),
            ("abcdef", 0),
            ("xyxyxyxy", 4),
            ("a", 0),
            ("", 0),
        ],
    )
    def test_known_lengths(self, text, expected_length):
        got = longest_repeated_substring(text)
        if expected_length == 0:
            assert got is None
        else:
            a, b, length = got
            assert length == expected_length
            assert text[a : a + length] == text[b : b + length]
            assert a + length <= b

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_naive_on_random_strings(self, seed):
        rng = np.random.default_rng(seed)
        text = "".join(rng.choice(list("VHLR"), size=rng.integers(2, 40)))
        got = longest_repeated_substring(text)
        want = naive_lrs(text)
        if want is None:
            assert got is None
        else:
            assert got is not None
            assert got[2] == want[2]  # same (maximal) length
            a, b, length = got
            assert text[a : a + length] == text[b : b + length]
            assert a + length <= b


class TestSymbolicMotif:
    def test_maps_back_to_point_indices(self):
        t = make_trajectory("figure_eight", 300, seed=0)
        frag = 8
        s = symbolize(t, frag)
        found = symbolic_motif(s, frag)
        assert found is not None
        (i0, i1), (j0, j1), length = found
        assert length >= 1
        assert i1 - i0 == j1 - j0 == length * (frag - 1)
        assert i1 <= j0  # non-overlapping in point space
        assert j1 <= t.n

    def test_none_when_no_repeat(self):
        assert symbolic_motif("VHLR", 8) is None
