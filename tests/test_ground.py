"""Unit tests for ground metrics and distance-matrix oracles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distances.ground import (
    EARTH_RADIUS_M,
    ChebyshevMetric,
    DenseGroundMatrix,
    EuclideanMetric,
    HaversineMetric,
    LazyGroundMatrix,
    cross_ground_matrix,
    get_metric,
    ground_matrix,
    register_metric,
)
from repro.errors import TrajectoryError


class TestEuclidean:
    def test_known_distance(self):
        m = EuclideanMetric()
        assert m.distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_pairwise_shape_and_values(self):
        m = EuclideanMetric()
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 1.0], [1.0, 1.0], [4.0, 0.0]])
        d = m.pairwise(a, b)
        assert d.shape == (2, 3)
        assert d[0, 0] == pytest.approx(1.0)
        assert d[1, 2] == pytest.approx(3.0)

    def test_rowwise_matches_pairwise_diagonal(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(8, 2)), rng.normal(size=(8, 2))
        m = EuclideanMetric()
        assert np.allclose(m.rowwise(a, b), np.diag(m.pairwise(a, b)))

    def test_rowwise_shape_mismatch(self):
        with pytest.raises(TrajectoryError):
            EuclideanMetric().rowwise(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_consecutive(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0], [3.0, 4.0]])
        assert np.allclose(EuclideanMetric().consecutive(pts), [5.0, 0.0])

    def test_consecutive_single_point(self):
        assert EuclideanMetric().consecutive(np.zeros((1, 2))).shape == (0,)


class TestHaversine:
    def test_equator_degree(self):
        # One degree of longitude at the equator ~ 111.2 km.
        m = HaversineMetric()
        d = m.distance([0.0, 0.0], [0.0, 1.0])
        assert d == pytest.approx(2 * np.pi * EARTH_RADIUS_M / 360.0, rel=1e-6)

    def test_antipodal(self):
        m = HaversineMetric()
        d = m.distance([0.0, 0.0], [0.0, 180.0])
        assert d == pytest.approx(np.pi * EARTH_RADIUS_M, rel=1e-6)

    def test_symmetry_and_zero(self):
        m = HaversineMetric()
        p, q = [39.9, 116.4], [40.0, 116.5]
        assert m.distance(p, q) == pytest.approx(m.distance(q, p))
        assert m.distance(p, p) == 0.0

    def test_matches_local_euclidean_for_small_offsets(self):
        # 0.001 deg latitude ~ 111.32 m.
        m = HaversineMetric()
        d = m.distance([40.0, 116.0], [40.001, 116.0])
        assert d == pytest.approx(111.19, rel=0.01)

    def test_extra_columns_ignored(self):
        m = HaversineMetric()
        a = np.array([[40.0, 116.0, 99.0]])
        b = np.array([[40.0, 116.0, -5.0]])
        assert m.pairwise(a, b)[0, 0] == 0.0

    def test_rejects_1d(self):
        with pytest.raises(TrajectoryError):
            HaversineMetric().pairwise(np.zeros(4), np.zeros((2, 2)))

    def test_invalid_radius(self):
        with pytest.raises(TrajectoryError):
            HaversineMetric(radius=0.0)


class TestChebyshev:
    def test_known(self):
        assert ChebyshevMetric().distance([0, 0], [3, -7]) == 7.0

    def test_rowwise(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[2.0, -3.0]])
        assert ChebyshevMetric().rowwise(a, b)[0] == 3.0


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_metric("euclidean").name == "euclidean"
        assert get_metric("haversine").name == "haversine"

    def test_lookup_passthrough(self):
        m = EuclideanMetric()
        assert get_metric(m) is m

    def test_default_by_crs(self):
        assert get_metric(None, crs="latlon").name == "haversine"
        assert get_metric(None, crs="plane").name == "euclidean"

    def test_unknown_metric(self):
        with pytest.raises(TrajectoryError):
            get_metric("manhattan-ish")

    def test_register_custom(self):
        class Custom(EuclideanMetric):
            name = "custom-test-metric"

        register_metric(Custom())
        assert get_metric("custom-test-metric").name == "custom-test-metric"


class TestMatrices:
    def test_ground_matrix_symmetric(self):
        rng = np.random.default_rng(1)
        pts = rng.normal(size=(10, 2))
        d = ground_matrix(pts)
        assert d.shape == (10, 10)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)

    def test_cross_matrix_shape(self):
        rng = np.random.default_rng(2)
        d = cross_ground_matrix(rng.normal(size=(4, 2)), rng.normal(size=(7, 2)))
        assert d.shape == (4, 7)


class TestDenseOracle:
    def test_interface(self):
        mat = np.arange(12.0).reshape(3, 4)
        o = DenseGroundMatrix(mat)
        assert o.shape == (3, 4)
        assert np.array_equal(o.row(1), mat[1])
        assert np.array_equal(o.block(0, 2, 1, 3), mat[0:2, 1:3])
        assert o.value(2, 3) == 11.0
        assert o.array is not None

    def test_rejects_non_2d(self):
        with pytest.raises(TrajectoryError):
            DenseGroundMatrix(np.zeros(5))


class TestLazyOracle:
    def test_agrees_with_dense_self(self):
        rng = np.random.default_rng(3)
        pts = rng.normal(size=(12, 2))
        lazy = LazyGroundMatrix(pts, metric="euclidean")
        dense = ground_matrix(pts)
        assert lazy.shape == (12, 12)
        for i in range(12):
            assert np.allclose(lazy.row(i), dense[i])
        assert lazy.value(3, 7) == pytest.approx(dense[3, 7])
        assert np.allclose(lazy.block(2, 5, 1, 9), dense[2:5, 1:9])

    def test_agrees_with_dense_cross(self):
        rng = np.random.default_rng(4)
        a, b = rng.normal(size=(6, 2)), rng.normal(size=(9, 2))
        lazy = LazyGroundMatrix(a, b, metric="euclidean")
        dense = cross_ground_matrix(a, b)
        assert lazy.shape == (6, 9)
        assert np.allclose(lazy.row(5), dense[5])

    def test_cache_eviction(self):
        rng = np.random.default_rng(5)
        pts = rng.normal(size=(20, 2))
        lazy = LazyGroundMatrix(pts, metric="euclidean", cache_rows=4)
        for i in range(20):
            lazy.row(i)
        assert lazy.rows_computed == 20
        lazy.row(19)  # cached
        assert lazy.rows_computed == 20
        lazy.row(0)  # evicted -> recomputed
        assert lazy.rows_computed == 21

    def test_cache_rows_validation(self):
        with pytest.raises(TrajectoryError):
            LazyGroundMatrix(np.zeros((3, 2)), cache_rows=0)

    def test_eviction_is_lru_not_fifo(self):
        """Regression: the row cache was documented as LRU but evicted
        FIFO (hits never refreshed recency).  A row re-read just before
        the cache fills must survive the next eviction; the row that
        has not been touched since insertion must be the victim."""
        rng = np.random.default_rng(6)
        pts = rng.normal(size=(10, 2))
        lazy = LazyGroundMatrix(pts, metric="euclidean", cache_rows=2)
        lazy.row(0)
        lazy.row(1)
        lazy.row(0)  # hit: row 0 becomes most recent
        assert lazy.rows_computed == 2
        lazy.row(2)  # cache full: must evict row 1 (LRU), not row 0
        assert lazy.rows_computed == 3
        lazy.row(0)  # still cached under LRU; FIFO would recompute
        assert lazy.rows_computed == 3
        lazy.row(1)  # evicted above -> recomputed
        assert lazy.rows_computed == 4

    def test_value_refreshes_nothing_but_row_hits_do(self):
        """A chain of hits keeps a hot row alive through many inserts."""
        rng = np.random.default_rng(7)
        pts = rng.normal(size=(12, 2))
        lazy = LazyGroundMatrix(pts, metric="euclidean", cache_rows=3)
        lazy.row(0)
        for i in range(1, 9):
            lazy.row(i)
            lazy.row(0)  # refresh the hot row between every insert
        assert lazy.rows_computed == 9
        lazy.row(0)
        assert lazy.rows_computed == 9  # survived every eviction round

    def test_haversine_lazy(self):
        pts = np.array([[39.9, 116.4], [39.91, 116.41], [39.92, 116.39]])
        lazy = LazyGroundMatrix(pts, metric="haversine")
        dense = ground_matrix(pts, "haversine")
        assert np.allclose(lazy.row(0), dense[0])
