"""Shared fixtures: the paper's Figure-5 example matrix and random data.

The data builders themselves live in :mod:`repro.testing` so that the
test modules can import them as a library (``from repro.testing import
random_walk``) instead of the old ``from conftest import ...`` pattern,
which collided with ``benchmarks/conftest.py`` and broke collection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distances.ground import DenseGroundMatrix
from repro.testing import (  # noqa: F401  (re-exported for convenience)
    build_fig5_matrix,
    random_walk,
    random_walk_points,
    walk_matrix,
)


@pytest.fixture(scope="session")
def fig5_matrix() -> np.ndarray:
    return build_fig5_matrix()


@pytest.fixture(scope="session")
def fig5_oracle(fig5_matrix) -> DenseGroundMatrix:
    return DenseGroundMatrix(fig5_matrix)


@pytest.fixture
def small_walk():
    return random_walk(40, seed=1)


@pytest.fixture
def medium_walk():
    return random_walk(120, seed=2)
