"""Tests for the scaled-parameter helpers in the bench harness."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    DEFAULT_TIMEOUT,
    XI_RATIO,
    default_tau,
    default_xi,
)


class TestScaledDefaults:
    def test_xi_matches_paper_setting(self):
        # The paper fixes xi=100 at n=5000.
        assert default_xi(5000) == 100
        assert XI_RATIO == pytest.approx(100 / 5000)

    def test_xi_floor(self):
        assert default_xi(50) == 4
        assert default_xi(10) == 4

    def test_xi_monotone(self):
        values = [default_xi(n) for n in range(100, 3000, 100)]
        assert values == sorted(values)

    def test_tau_keeps_group_count(self):
        # Group count n/tau stays near the paper's ~128-156.
        for n in (512, 1024, 2048, 4096):
            tau = default_tau(n)
            assert 64 <= n // tau <= 256

    def test_tau_floor(self):
        assert default_tau(50) == 2
        assert default_tau(2) == 2

    def test_feasibility_of_scaled_defaults(self):
        """default_xi must always leave a feasible self-mode query."""
        from repro.core import self_space

        for n in (100, 240, 480, 1600, 5000):
            self_space(n, default_xi(n))  # must not raise

    def test_timeout_positive(self):
        assert DEFAULT_TIMEOUT > 0


class TestAveragedRuns:
    def test_averages_over_seeds(self):
        from repro.bench import run_motif_averaged

        rec = run_motif_averaged("btm", "random_walk", 100, repeat=3)
        assert rec.seconds is not None and rec.seconds > 0
        assert rec.distance is not None
        assert not rec.timed_out

    def test_all_timed_out(self):
        from repro.bench import run_motif_averaged

        rec = run_motif_averaged(
            "brute", "random_walk", 200, repeat=2, timeout=0.0
        )
        assert rec.timed_out and rec.seconds is None

    def test_repeat_validation(self):
        from repro.bench import run_motif_averaged
        import pytest

        with pytest.raises(ValueError):
            run_motif_averaged("btm", "random_walk", 100, repeat=0)
