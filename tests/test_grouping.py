"""Tests for the grouping machinery (Section 5): levels, bounds, DP."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.grouping import (
    GroupBoundTables,
    GroupLevel,
    children_pairs,
    feasible_group_pairs,
    group_dfd_bounds,
    pattern_bounds_for_pairs,
    self_group_start_range,
)
from repro.core.problem import cross_space, self_space
from repro.distances import dfd_matrix
from repro.distances.ground import EuclideanMetric, cross_ground_matrix, ground_matrix

from repro.testing import random_walk_points, walk_matrix


def naive_block_minmax(dmat, tau, u, v, mode):
    n, m = dmat.shape
    rows = range(u * tau, min((u + 1) * tau, n))
    cols = range(v * tau, min((v + 1) * tau, m))
    vals = [
        dmat[i, j]
        for i in rows
        for j in cols
        if mode != "self" or i < j
    ]
    if not vals:
        return np.inf, -np.inf
    return min(vals), max(vals)


class TestGroupLevel:
    @pytest.mark.parametrize("tau", [2, 3, 4, 7])
    @pytest.mark.parametrize("mode", ["self", "cross"])
    def test_from_matrix_matches_naive(self, tau, mode):
        n = 18
        dmat = walk_matrix(n, 1)
        level = GroupLevel.from_matrix(dmat, tau, mode)
        for u in range(level.n_row_groups):
            for v in range(level.n_col_groups):
                lo, hi = naive_block_minmax(dmat, tau, u, v, mode)
                assert level.gmin[u, v] == pytest.approx(lo)
                assert level.gmax[u, v] == pytest.approx(hi)

    @pytest.mark.parametrize("tau", [2, 4, 5])
    def test_from_points_matches_from_matrix_self(self, tau):
        pts = random_walk_points(17, 2)
        dmat = ground_matrix(pts)
        a = GroupLevel.from_matrix(dmat, tau, "self")
        b = GroupLevel.from_points(pts, None, EuclideanMetric(), tau, "self")
        assert np.allclose(a.gmin, b.gmin)
        assert np.allclose(a.gmax, b.gmax)

    def test_from_points_matches_cross(self):
        a_pts = random_walk_points(14, 3)
        b_pts = random_walk_points(19, 4)
        dmat = cross_ground_matrix(a_pts, b_pts)
        a = GroupLevel.from_matrix(dmat, 4, "cross")
        b = GroupLevel.from_points(a_pts, b_pts, EuclideanMetric(), 4, "cross")
        assert np.allclose(a.gmin, b.gmin)
        assert np.allclose(a.gmax, b.gmax)

    def test_ragged_extents(self):
        level = GroupLevel.from_matrix(walk_matrix(10, 0), 4, "self")
        assert list(level.row_starts) == [0, 4, 8]
        assert list(level.row_ends) == [3, 7, 9]

    def test_masking_excludes_diagonal(self):
        # Diagonal blocks of a self matrix must not report min = 0.
        dmat = walk_matrix(12, 5)
        level = GroupLevel.from_matrix(dmat, 3, "self")
        for u in range(level.n_row_groups):
            assert level.gmin[u, u] > 0.0


class TestCorollary1:
    def test_group_minmax_bracket_every_cell(self):
        dmat = walk_matrix(15, 6)
        level = GroupLevel.from_matrix(dmat, 4, "cross")
        for i in range(15):
            for j in range(15):
                u, v = i // 4, j // 4
                assert level.gmin[u, v] <= dmat[i, j] + 1e-12
                assert level.gmax[u, v] >= dmat[i, j] - 1e-12


class TestPairEnumeration:
    def test_feasible_pairs_match_point_level(self):
        n, xi, tau = 20, 3, 4
        space = self_space(n, xi)
        level = GroupLevel.from_matrix(walk_matrix(n, 7), tau, "self")
        feasible = set(feasible_group_pairs(level, space))
        expected = {(i // tau, j // tau) for i, j in space.start_pairs()}
        assert feasible == expected

    def test_children_cover_parent_candidates(self):
        n, xi = 24, 3
        space = self_space(n, xi)
        dmat = walk_matrix(n, 8)
        coarse = GroupLevel.from_matrix(dmat, 8, "self")
        fine = GroupLevel.from_matrix(dmat, 4, "self")
        parents = feasible_group_pairs(coarse, space)
        kids = set(children_pairs(parents, 8, fine, space))
        # Every point-level start pair must appear under some child.
        for i, j in space.start_pairs():
            assert (i // 4, j // 4) in kids

    def test_children_cover_non_halving_sizes(self):
        """Regression: tau chain 3 -> 2 is not an exact halving; the
        extent-intersection children must still cover every candidate."""
        n, xi = 24, 4
        space = self_space(n, xi)
        dmat = walk_matrix(n, 1)
        coarse = GroupLevel.from_matrix(dmat, 3, "self")
        fine = GroupLevel.from_matrix(dmat, 2, "self")
        parents = feasible_group_pairs(coarse, space)
        kids = set(children_pairs(parents, 3, fine, space))
        for i, j in space.start_pairs():
            assert (i // 2, j // 2) in kids

    def test_start_range_none_when_infeasible(self):
        n, xi, tau = 20, 3, 4
        space = self_space(n, xi)
        level = GroupLevel.from_matrix(walk_matrix(n, 9), tau, "self")
        # (u, v) = (4, 0): j < i for every member -> infeasible.
        assert self_group_start_range(level, space, 4, 0) is None


class TestVectorisedEnumeration:
    """The NumPy fast paths must match naive scalar enumeration."""

    @pytest.mark.parametrize("n,xi,tau", [(20, 3, 4), (25, 2, 3), (30, 5, 8)])
    def test_feasible_pair_mask_matches_scalar(self, n, xi, tau):
        from repro.core.grouping import feasible_pair_mask

        space = self_space(n, xi)
        level = GroupLevel.from_matrix(walk_matrix(n, 3), tau, "self")
        g = level.n_row_groups
        for u in range(g):
            for v in range(g):
                scalar = self_group_start_range(level, space, u, v) is not None
                vec = bool(
                    feasible_pair_mask(
                        level, space, np.array([u]), np.array([v])
                    )[0]
                )
                assert scalar == vec, (u, v)

    @pytest.mark.parametrize("n,xi,tau", [(22, 3, 2), (27, 2, 3), (24, 4, 5)])
    def test_expand_pairs_matches_naive(self, n, xi, tau):
        from repro.core.gtm import expand_pairs_to_subsets

        space = self_space(n, xi)
        level = GroupLevel.from_matrix(walk_matrix(n, 4), tau, "self")
        pairs = feasible_group_pairs(level, space)
        i_idx, j_idx = expand_pairs_to_subsets(level, space, pairs)
        got = set(zip(i_idx.tolist(), j_idx.tolist()))
        want = set()
        for u, v in pairs:
            for i in range(level.row_starts[u], level.row_ends[u] + 1):
                for j in range(level.col_starts[v], level.col_ends[v] + 1):
                    j_lo, j_hi = space.j_range(i)
                    if j_lo <= j <= j_hi and i <= space.i_max:
                        want.add((i, j))
        assert got == want
        # With all pairs feasible, this is the full candidate space.
        assert got == set(space.start_pairs())

    def test_expand_pairs_cross_mode(self):
        from repro.core.gtm import expand_pairs_to_subsets

        n, m, xi, tau = 18, 22, 3, 4
        space = cross_space(n, m, xi)
        dmat = cross_ground_matrix(
            random_walk_points(n, 5), random_walk_points(m, 6)
        )
        level = GroupLevel.from_matrix(dmat, tau, "cross")
        pairs = feasible_group_pairs(level, space)
        i_idx, j_idx = expand_pairs_to_subsets(level, space, pairs)
        assert set(zip(i_idx.tolist(), j_idx.tolist())) == set(
            space.start_pairs()
        )

    def test_expand_pairs_empty(self):
        from repro.core.gtm import expand_pairs_to_subsets

        space = self_space(20, 3)
        level = GroupLevel.from_matrix(walk_matrix(20, 7), 4, "self")
        i_idx, j_idx = expand_pairs_to_subsets(level, space, [])
        assert i_idx.shape == j_idx.shape == (0,)


class TestGroupPatternBounds:
    @pytest.mark.parametrize("seed", range(3))
    def test_pattern_bounds_are_safe(self, seed):
        """Combined group pattern bound <= min DFD over the pair."""
        n, xi, tau = 18, 3, 2
        dmat = walk_matrix(n, seed + 20)
        space = self_space(n, xi)
        level = GroupLevel.from_matrix(dmat, tau, "self")
        tables = GroupBoundTables.build(level, xi)
        pairs = feasible_group_pairs(level, space)
        lbs = pattern_bounds_for_pairs(level, tables, pairs)
        for (u, v), lb in zip(pairs, lbs):
            exact = _exact_pair_min(dmat, space, level, u, v)
            assert lb <= exact + 1e-9, (u, v, lb, exact)

    def test_vacuous_when_tau_exceeds_xi(self):
        level = GroupLevel.from_matrix(walk_matrix(20, 1), 8, "self")
        tables = GroupBoundTables.build(level, xi=3)  # tau > xi + 1
        assert (tables.grmin == 0).all()
        assert (tables.gcmin == 0).all()

    def test_cross_mode_tables(self):
        n, xi, tau = 16, 3, 2
        dmat = walk_matrix(n, 2)
        space = cross_space(n, n, xi)
        level = GroupLevel.from_matrix(dmat, tau, "cross")
        tables = GroupBoundTables.build(level, xi)
        pairs = feasible_group_pairs(level, space)
        lbs = pattern_bounds_for_pairs(level, tables, pairs)
        for (u, v), lb in zip(pairs, lbs):
            exact = _exact_pair_min(dmat, space, level, u, v)
            assert lb <= exact + 1e-9


def _exact_pair_min(dmat, space, level, u, v):
    """Min DFD over all valid candidates with i in g_u, j in g_v."""
    xi = space.xi
    best = np.inf
    for i in range(level.row_starts[u], level.row_ends[u] + 1):
        for j in range(level.col_starts[v], level.col_ends[v] + 1):
            for ie in range(i + xi + 1, dmat.shape[0]):
                for je in range(j + xi + 1, dmat.shape[1]):
                    if not space.is_valid_candidate(i, ie, j, je):
                        continue
                    best = min(best, dfd_matrix(dmat[i : ie + 1, j : je + 1]))
    return best


class TestGroupDfdBounds:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("tau", [2, 3])
    def test_glb_gub_bracket_exact(self, seed, tau):
        n, xi = 16, 2
        dmat = walk_matrix(n, seed + 40)
        space = self_space(n, xi)
        level = GroupLevel.from_matrix(dmat, tau, "self")
        for u, v in feasible_group_pairs(level, space):
            glb, gub = group_dfd_bounds(
                level, space, u, v, bsf=np.inf, early_stop=False
            )
            exact = _exact_pair_min(dmat, space, level, u, v)
            assert glb <= exact + 1e-9, (u, v)
            assert gub >= exact - 1e-9, (u, v)

    def test_gub_witnessed_by_valid_candidate(self):
        """A finite GUB must be realised by at least one valid candidate."""
        n, xi, tau = 18, 2, 2
        dmat = walk_matrix(n, 44)
        space = self_space(n, xi)
        level = GroupLevel.from_matrix(dmat, tau, "self")
        for u, v in feasible_group_pairs(level, space):
            _, gub = group_dfd_bounds(level, space, u, v, bsf=np.inf, early_stop=False)
            if np.isfinite(gub):
                exact = _exact_pair_min(dmat, space, level, u, v)
                assert exact <= gub + 1e-9

    def test_early_stop_decision_matches_exact(self):
        """Early stop may loosen GLB only above bsf (prune decisions
        must be identical to the exact computation)."""
        n, xi, tau = 18, 2, 2
        dmat = walk_matrix(n, 45)
        space = self_space(n, xi)
        level = GroupLevel.from_matrix(dmat, tau, "self")
        pairs = feasible_group_pairs(level, space)
        exact_glbs = [
            group_dfd_bounds(level, space, u, v, bsf=np.inf, early_stop=False)[0]
            for u, v in pairs
        ]
        bsf = float(np.median(exact_glbs))
        for (u, v), exact_glb in zip(pairs, exact_glbs):
            glb, _ = group_dfd_bounds(level, space, u, v, bsf=bsf, early_stop=True)
            assert (glb <= bsf) == (exact_glb <= bsf), (u, v)
            if glb <= bsf:
                assert glb == pytest.approx(exact_glb)

    def test_cross_mode_bracket(self):
        n, xi, tau = 14, 2, 2
        dmat = walk_matrix(n, 46)
        space = cross_space(n, n, xi)
        level = GroupLevel.from_matrix(dmat, tau, "cross")
        for u, v in feasible_group_pairs(level, space)[::5]:
            glb, gub = group_dfd_bounds(
                level, space, u, v, bsf=np.inf, early_stop=False
            )
            exact = _exact_pair_min(dmat, space, level, u, v)
            assert glb <= exact + 1e-9
            assert gub >= exact - 1e-9
