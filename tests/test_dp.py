"""Tests for the subset-expansion DP kernels (scalar and wavefront)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import BoundTables
from repro.core.dp import (
    SCALAR_AREA_LIMIT,
    expand_subset,
    expand_subset_scalar,
    expand_subset_wavefront,
)
from repro.core.problem import cross_space, self_space
from repro.core.stats import SearchStats
from repro.distances import dfd_matrix
from repro.distances.ground import DenseGroundMatrix, LazyGroundMatrix

from repro.testing import random_walk_points, walk_matrix


def brute_subset(dmat, space, i, j):
    """Reference: min DFD + argmin over all valid candidates in CS_{i,j}."""
    xi = space.xi
    best, arg = np.inf, None
    for ie in range(i + xi + 1, space.ie_limit(i, j) + 1):
        for je in range(j + xi + 1, space.je_limit(i, j) + 1):
            d = dfd_matrix(dmat[i : ie + 1, j : je + 1])
            if d < best:
                best, arg = d, (i, ie, j, je)
    return best, arg


@pytest.mark.parametrize("mode", ["self", "cross"])
@pytest.mark.parametrize("seed", range(4))
def test_kernels_match_brute_reference(mode, seed):
    n, xi = 16, 2
    dmat = walk_matrix(n, seed)
    space = self_space(n, xi) if mode == "self" else cross_space(n, n, xi)
    oracle = DenseGroundMatrix(dmat)
    tables = BoundTables.build(space, oracle)
    for i, j in space.start_pairs():
        want, want_arg = brute_subset(dmat, space, i, j)
        got_s, arg_s = expand_subset_scalar(
            oracle, space, i, j, np.inf, None,
            cmin=tables.cmin, rmin=tables.rmin, prune=True,
        )
        got_w, arg_w = expand_subset_wavefront(
            dmat, space, i, j, np.inf, None,
            cmin=tables.cmin, rmin=tables.rmin, prune=True,
        )
        assert got_s == pytest.approx(want)
        assert got_w == pytest.approx(want)
        assert dfd_matrix(dmat[arg_s[0] : arg_s[1] + 1, arg_s[2] : arg_s[3] + 1]) == (
            pytest.approx(want)
        )
        assert dfd_matrix(dmat[arg_w[0] : arg_w[1] + 1, arg_w[2] : arg_w[3] + 1]) == (
            pytest.approx(want)
        )


@pytest.mark.parametrize("seed", range(4))
def test_pruning_never_loses_better_candidates(seed):
    """With a finite bsf, the kernel must still find anything below it."""
    n, xi = 18, 2
    dmat = walk_matrix(n, seed + 10)
    space = self_space(n, xi)
    oracle = DenseGroundMatrix(dmat)
    tables = BoundTables.build(space, oracle)
    for i, j in list(space.start_pairs())[::3]:
        want, _ = brute_subset(dmat, space, i, j)
        for factor in (0.5, 1.0, 1.5):
            bsf0 = want * factor + 1e-9
            got, arg = expand_subset_scalar(
                oracle, space, i, j, bsf0, None,
                cmin=tables.cmin, rmin=tables.rmin, prune=True,
            )
            if want < bsf0:
                assert got == pytest.approx(want)
                assert arg is not None
            else:
                assert got == bsf0 and arg is None


def test_prune_false_is_full_expansion():
    n, xi = 14, 2
    dmat = walk_matrix(n, 3)
    space = self_space(n, xi)
    oracle = DenseGroundMatrix(dmat)
    stats = SearchStats()
    i, j = next(iter(space.start_pairs()))
    expand_subset(oracle, space, i, j, np.inf, None, prune=False, stats=stats)
    height = space.ie_limit(i, j) - i  # interior rows
    width = space.je_limit(i, j) - j + 1
    assert stats.cells_expanded == height * width
    assert stats.cells_killed == 0


def test_early_termination_reduces_work():
    n, xi = 30, 2
    dmat = walk_matrix(n, 4)
    space = self_space(n, xi)
    oracle = DenseGroundMatrix(dmat)
    i, j = next(iter(space.start_pairs()))
    full = SearchStats()
    expand_subset_scalar(oracle, space, i, j, np.inf, None, prune=False, stats=full)
    pruned = SearchStats()
    expand_subset_scalar(oracle, space, i, j, 1e-8, None, prune=True, stats=pruned)
    assert pruned.cells_expanded <= full.cells_expanded


def test_dispatcher_uses_scalar_for_lazy_oracle():
    pts = random_walk_points(20, 5)
    lazy = LazyGroundMatrix(pts, metric="euclidean")
    dense = DenseGroundMatrix(
        np.asarray([[np.linalg.norm(a - b) for b in pts] for a in pts])
    )
    space = self_space(20, 2)
    i, j = next(iter(space.start_pairs()))
    got_l, _ = expand_subset(lazy, space, i, j, np.inf, None)
    got_d, _ = expand_subset(dense, space, i, j, np.inf, None)
    assert got_l == pytest.approx(got_d)


def test_force_kernel_flags():
    n, xi = 16, 2
    dmat = walk_matrix(n, 6)
    space = self_space(n, xi)
    oracle = DenseGroundMatrix(dmat)
    i, j = next(iter(space.start_pairs()))
    a, _ = expand_subset(oracle, space, i, j, np.inf, None, force_kernel="scalar")
    b, _ = expand_subset(oracle, space, i, j, np.inf, None, force_kernel="wavefront")
    assert a == pytest.approx(b)


def test_stats_counters_populated():
    n, xi = 20, 2
    dmat = walk_matrix(n, 7)
    space = self_space(n, xi)
    oracle = DenseGroundMatrix(dmat)
    tables = BoundTables.build(space, oracle)
    stats = SearchStats()
    i, j = next(iter(space.start_pairs()))
    bsf, best = expand_subset_scalar(
        oracle, space, i, j, np.inf, None,
        cmin=tables.cmin, rmin=tables.rmin, prune=True, stats=stats,
    )
    assert best is not None
    assert stats.cells_expanded > 0
    assert stats.candidates_checked > 0
    assert stats.bsf_updates >= 1


def test_scalar_area_limit_is_positive():
    assert SCALAR_AREA_LIMIT > 0
