"""``python -m repro.analysis src tests benchmarks``."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
