"""Command-line front end of the analyzer.

Reached two ways -- ``python -m repro.analysis`` and
``repro-motif analyze`` -- with the same arguments (both mount
:func:`configure` onto their parser); exits 0 only when every finding
is suppressed (with justification) or baselined.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .framework import (
    analyze_paths,
    apply_baseline,
    known_codes,
    load_baseline,
    render_json,
    render_text,
    rule_catalog,
    summarize,
    write_baseline,
)


def configure(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the analyzer's arguments to ``parser`` (shared with the
    ``repro-motif analyze`` subcommand)."""
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests", "benchmarks"],
        help="files or directories to analyze "
             "(default: src tests benchmarks)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="accepted-findings file; matches are reported but not fatal",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write the current active findings to FILE and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rule codes and exit",
    )
    return parser


def run(args: argparse.Namespace) -> int:
    """Execute one analyzer invocation from parsed arguments."""
    if args.list_rules:
        for entry in rule_catalog():
            print(f"{entry['code']}  {entry['name']}: {entry['description']}")
        return 0
    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",")
                  if code.strip()]
        unknown = [c for c in select if c not in known_codes()]
        if unknown:
            print(f"unknown rule code(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    findings = analyze_paths(args.paths, select=select)
    if args.baseline:
        baseline_path = Path(args.baseline)
        if baseline_path.exists():
            findings = apply_baseline(findings, load_baseline(baseline_path))
    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(f"baseline written: {args.write_baseline} "
              f"({summarize(findings)['active']} finding(s))")
        return 0

    report = (render_json(findings) if args.format == "json"
              else render_text(findings))
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
    else:
        print(report)
    return 0 if summarize(findings)["active"] == 0 else 1


def main(argv: Optional[Sequence[str]] = None,
         prog: str = "python -m repro.analysis") -> int:
    parser = configure(argparse.ArgumentParser(
        prog=prog,
        description=(
            "Run the repro project-invariant static analyzer "
            "(RPR0xx rules) over python files or directories."
        ),
    ))
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
