"""The AST-walking core of the project-invariant analyzer.

The engine's correctness rests on contracts no type checker sees: worker
tasks ship refs-and-strides instead of arrays, every shared-memory
publication has an unlink path, the planner's cache keys are pure, the
service's locks nest consistently.  Runtime parity tests defend those
invariants only on the inputs they happen to execute; this module (plus
:mod:`repro.analysis.rules`) enforces them on every commit, the way the
paper's bound cascade enforces admissibility before the expensive DP
ever runs.

The framework is deliberately small:

* :class:`Rule` subclasses register themselves (via :func:`register`)
  under a stable ``RPR0xx`` code and declare which files they apply to
  (path-fragment scoping, so the same rule runs on fixture snippets in
  tests).  A rule inspects one parsed module per :meth:`Rule.check`
  call and may emit cross-file findings from :meth:`Rule.finish` (the
  lock-order graph needs the whole scope before it can look for
  cycles).
* :class:`Finding` carries ``path:line:col``, the rule code, and a
  message; its :attr:`~Finding.fingerprint` is line-independent so a
  committed baseline survives unrelated edits.
* Suppressions are source comments of the form
  ``# repro: ignore[RPR006] -- <justification>`` -- on the flagged
  line, or on a standalone comment line directly above it.  The
  justification is *mandatory*: a bare suppression (or one naming an
  unknown code) is itself reported under :data:`META_CODE`, and meta
  findings cannot be suppressed -- so "zero findings" always means
  every waiver is explained in-line.

Reports render as text (``path:line:col CODE message``) or JSON (the
CI artifact shape), and an optional baseline file lets a rule be
introduced before its historical debt is paid down: baselined findings
are reported but do not fail the run.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

#: Code under which the framework reports its own hygiene findings
#: (unparseable files, suppressions without justification, unknown
#: codes).  Meta findings are never suppressible.
META_CODE = "RPR000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s]*)\]\s*(.*)$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored at ``path:line:col``."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0
    suppressed: bool = False
    baselined: bool = False

    @property
    def active(self) -> bool:
        """Whether this finding fails the run."""
        return not (self.suppressed or self.baselined)

    @property
    def fingerprint(self) -> str:
        """Line-independent identity (baseline entries survive edits)."""
        digest = hashlib.sha1(
            f"{self.code}|{_posix(self.path)}|{self.message}".encode()
        )
        return digest.hexdigest()[:16]

    def render(self) -> str:
        tag = ""
        if self.suppressed:
            tag = "  [suppressed]"
        elif self.baselined:
            tag = "  [baselined]"
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}{tag}"

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "path": _posix(self.path),
            "line": self.line,
            "col": self.col,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "fingerprint": self.fingerprint,
        }


def _posix(path: str) -> str:
    return str(path).replace("\\", "/")


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------
class Rule:
    """One invariant check; subclass, set the class attributes, register.

    ``paths`` is a tuple of path fragments; the rule runs on a file when
    any fragment occurs in (or suffixes) its normalised path, and on
    every file when the tuple is empty.  Fragment scoping -- rather than
    repo-absolute paths -- is what lets the test suite exercise each
    rule on synthetic snippets under the same virtual paths.
    """

    code: str = META_CODE
    name: str = "unnamed"
    description: str = ""
    paths: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        norm = _posix(path)
        return not self.paths or any(frag in norm for frag in self.paths)

    def check(self, tree: ast.Module, source: str, path: str) -> Iterable[Finding]:
        """Per-file findings (may also accumulate state for finish())."""
        return ()

    def finish(self) -> Iterable[Finding]:
        """Cross-file findings, emitted after every file was checked."""
        return ()

    def finding(self, path: str, node, message: str) -> Finding:
        line = getattr(node, "lineno", node if isinstance(node, int) else 1)
        col = getattr(node, "col_offset", 0)
        return Finding(self.code, message, _posix(path), int(line), int(col))


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def known_codes() -> Tuple[str, ...]:
    """Every registered rule code, plus the framework's meta code."""
    return tuple(sorted(_REGISTRY)) + (META_CODE,)


def fresh_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """New rule instances for one run (rules carry cross-file state)."""
    codes = sorted(_REGISTRY) if select is None else list(select)
    unknown = [c for c in codes if c not in _REGISTRY]
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(unknown)}")
    return [_REGISTRY[code]() for code in codes]


def rule_catalog() -> List[dict]:
    """``{code, name, description, paths}`` per registered rule."""
    return [
        {
            "code": code,
            "name": cls.name,
            "description": cls.description,
            "paths": list(cls.paths),
        }
        for code, cls in sorted(_REGISTRY.items())
    ]


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def parse_suppressions(
    source: str, path: str
) -> Tuple[Dict[int, Set[str]], List[Finding]]:
    """``{line: {codes}}`` plus hygiene findings for malformed waivers.

    A suppression comment applies to its own line; a *standalone*
    comment line additionally covers the next non-blank, non-comment
    source line, so long justifications can sit above the code they
    waive.  Missing justifications and unknown codes are reported under
    :data:`META_CODE` instead of being honoured.
    """
    lines = source.splitlines()
    suppressed: Dict[int, Set[str]] = {}
    meta: List[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        tokens = []
    valid = set(known_codes())
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            continue
        line = tok.start[0]
        codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
        justification = match.group(2).strip().lstrip("-: ").strip()
        if not codes:
            meta.append(Finding(
                META_CODE, "suppression lists no rule codes",
                _posix(path), line, tok.start[1],
            ))
            continue
        bad = sorted(codes - valid)
        if bad:
            meta.append(Finding(
                META_CODE,
                f"suppression names unknown rule code(s): {', '.join(bad)}",
                _posix(path), line, tok.start[1],
            ))
        if not justification:
            meta.append(Finding(
                META_CODE,
                "suppression without a justification "
                "(write `# repro: ignore[CODE] -- why this is safe`)",
                _posix(path), line, tok.start[1],
            ))
            continue
        codes &= valid
        if not codes:
            continue
        targets = [line]
        prefix = lines[line - 1][: tok.start[1]] if line <= len(lines) else ""
        if not prefix.strip():  # standalone comment: covers the next code line
            for follow in range(line + 1, len(lines) + 1):
                text = lines[follow - 1].strip()
                if not text:
                    continue
                targets.append(follow)
                if not text.startswith("#"):
                    break
        for target in targets:
            suppressed.setdefault(target, set()).update(codes)
    return suppressed, meta


def _apply_suppressions(
    findings: Iterable[Finding], by_path: Dict[str, Dict[int, Set[str]]]
) -> List[Finding]:
    out = []
    for f in findings:
        if f.code != META_CODE:
            codes = by_path.get(_posix(f.path), {}).get(f.line, ())
            if f.code in codes:
                f = replace(f, suppressed=True)
        out.append(f)
    return out


# ----------------------------------------------------------------------
# Analysis drivers
# ----------------------------------------------------------------------
def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py":
            yield path


def analyze_paths(
    paths: Sequence[str], *, select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run every (selected) rule over the python files under ``paths``."""
    rules = fresh_rules(select)
    findings: List[Finding] = []
    suppress_by_path: Dict[str, Dict[int, Set[str]]] = {}
    for file in iter_python_files(paths):
        path = _posix(str(file))
        try:
            source = file.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", None) or 1
            findings.append(Finding(
                META_CODE, f"cannot analyze file: {exc}", path, int(line)
            ))
            continue
        supp, meta = parse_suppressions(source, path)
        suppress_by_path[path] = supp
        findings.extend(meta)
        for rule in rules:
            if rule.applies_to(path):
                findings.extend(rule.check(tree, source, path))
    for rule in rules:
        findings.extend(rule.finish())
    findings = _apply_suppressions(findings, suppress_by_path)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def analyze_source(
    source: str, path: str, *, select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Analyze one in-memory module under a virtual ``path`` (tests)."""
    rules = fresh_rules(select)
    tree = ast.parse(source, filename=path)
    supp, findings = parse_suppressions(source, path)
    findings = list(findings)
    for rule in rules:
        if rule.applies_to(path):
            findings.extend(rule.check(tree, source, path))
    for rule in rules:
        findings.extend(rule.finish())
    findings = _apply_suppressions(findings, {_posix(path): supp})
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
def load_baseline(path) -> Set[str]:
    """The fingerprint set of a committed baseline file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = payload.get("findings", [])
    return {entry["fingerprint"] for entry in entries}


def write_baseline(path, findings: Sequence[Finding]) -> None:
    """Persist the active findings as the new accepted baseline."""
    payload = {
        "version": 1,
        "findings": [
            {
                "fingerprint": f.fingerprint,
                "code": f.code,
                "path": _posix(f.path),
                "message": f.message,
            }
            for f in findings
            if f.active
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def apply_baseline(
    findings: Sequence[Finding], fingerprints: Set[str]
) -> List[Finding]:
    return [
        replace(f, baselined=True)
        if f.active and f.fingerprint in fingerprints
        else f
        for f in findings
    ]


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def summarize(findings: Sequence[Finding]) -> dict:
    return {
        "total": len(findings),
        "active": sum(1 for f in findings if f.active),
        "suppressed": sum(1 for f in findings if f.suppressed),
        "baselined": sum(1 for f in findings if f.baselined),
    }


def render_text(findings: Sequence[Finding]) -> str:
    lines = [f.render() for f in findings]
    counts = summarize(findings)
    lines.append(
        f"{counts['active']} finding(s) "
        f"({counts['suppressed']} suppressed, "
        f"{counts['baselined']} baselined)"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    payload = {
        "version": 1,
        "rules": rule_catalog(),
        "findings": [f.as_dict() for f in findings],
        "summary": summarize(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
