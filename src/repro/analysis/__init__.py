"""Project-invariant static analysis (``python -m repro.analysis``).

See :mod:`repro.analysis.framework` for the engine and
:mod:`repro.analysis.rules` for the eight ``RPR0xx`` rules; DESIGN.md
section 11 catalogues the invariants each rule defends.
"""

from .framework import (  # noqa: F401
    META_CODE,
    Finding,
    Rule,
    analyze_paths,
    analyze_source,
    apply_baseline,
    known_codes,
    load_baseline,
    register,
    render_json,
    render_text,
    rule_catalog,
    summarize,
    write_baseline,
)
from . import rules  # noqa: F401  (importing registers the RPR rules)
from .cli import main  # noqa: F401
