"""The nine project-invariant rules (``RPR001``..``RPR009``).

Each rule encodes a contract an earlier PR established and the test
suite defends only dynamically; DESIGN.md section 11 catalogues them.
The rules are scoped by path fragment so the fixture suite can exercise
them on synthetic snippets under the same virtual paths.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .framework import Finding, Rule, register

# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _decorator_name(dec: ast.AST) -> Optional[str]:
    if isinstance(dec, ast.Call):
        dec = dec.func
    name = _dotted(dec)
    if name is None:
        return None
    return name.rsplit(".", 1)[-1]


def _is_none(node: Optional[ast.AST]) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _annotation_idents(node: ast.AST) -> Set[str]:
    """Every identifier mentioned anywhere in an annotation."""
    idents: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            idents.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            idents.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # String annotations ("np.ndarray") still name the type.
            idents.update(part for chunk in sub.value.replace("[", " ")
                          .replace("]", " ").replace(",", " ").split()
                          for part in chunk.split("."))
    return idents


# ----------------------------------------------------------------------
# RPR001 -- zero-copy task transport
# ----------------------------------------------------------------------
@register
class TaskPayloadRule(Rule):
    """Worker task dataclasses must ship refs and strides, not arrays.

    A declared ``np.ndarray`` / ``Trajectory`` field would be pickled
    into every task message, destroying the zero-copy transport built
    in PR 3.  ``Optional[...] = None`` fields are allowed: they are the
    inline *fallback* slot the executor fills only when shared memory
    is unavailable.
    """

    code = "RPR001"
    name = "task-payload"
    description = (
        "worker task dataclasses may not declare ndarray/Trajectory "
        "payload fields (refs and strides only)"
    )
    paths = ("repro/engine/worker.py",)

    _HEAVY = {"ndarray", "Trajectory"}

    def check(self, tree, source, path):
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(_decorator_name(d) == "dataclass"
                       for d in node.decorator_list):
                continue
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                if not isinstance(stmt.target, ast.Name):
                    continue
                heavy = self._HEAVY & _annotation_idents(stmt.annotation)
                if heavy and not _is_none(stmt.value):
                    findings.append(self.finding(
                        path, stmt,
                        f"task dataclass {node.name}.{stmt.target.id} "
                        f"declares a {'/'.join(sorted(heavy))} payload "
                        "without a None default; ship a SharedArrayRef/"
                        "SnapshotSlabRef plus strides instead",
                    ))
        return findings


# ----------------------------------------------------------------------
# RPR002 -- shared-memory release reachability
# ----------------------------------------------------------------------
def _try_spans(tree: ast.Module) -> List[Tuple[Set[int], List[ast.stmt]]]:
    """(ids of nodes inside try.body, finalbody stmts) per Try node."""
    spans = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Try) and node.finalbody:
            body_ids = {
                id(sub) for stmt in node.body for sub in ast.walk(stmt)
            }
            spans.append((body_ids, node.finalbody))
    return spans


def _final_releases(stmts: Sequence[ast.stmt], attrs: Set[str]) -> Set[str]:
    """Receivers of ``<recv>.<attr>()`` calls in a finally body."""
    receivers = set()
    for stmt in stmts:
        for sub in ast.walk(stmt):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in attrs):
                recv = _dotted(sub.func.value)
                if recv:
                    receivers.add(recv)
    return receivers


@register
class ShmReleaseRule(Rule):
    """Every shared-memory publication needs a reachable release.

    Three contracts from PR 2's leak tests:

    * raw ``SharedMemory(create=True)`` segments need an ``unlink()``
      path (a method of the owning class, or a same-function finally);
    * ``begin_batch()`` must sit inside a ``try`` whose ``finally``
      trims or closes the same store, so a worker crash between publish
      and dispatch cannot strand segments until process exit;
    * ``publish(...)`` on a ``self.*`` store requires the owning class
      to expose a release method (``close``/``stop``/``shutdown``/
      ``__exit__``/``__del__``) that closes, trims or unlinks it.
    """

    code = "RPR002"
    name = "shm-release"
    description = (
        "SharedMemory/SharedArrayStore publications must be reachable "
        "from a close/unlink in a finally or close() method"
    )
    paths = ("src/repro/",)

    _RELEASE_METHODS = {"close", "stop", "shutdown", "__exit__", "__del__"}
    _RELEASE_ATTRS = {"close", "trim", "unlink"}

    def check(self, tree, source, path):
        findings: List[Finding] = []
        spans = _try_spans(tree)

        def finally_releases(call: ast.Call, receiver: str,
                             attrs: Set[str]) -> bool:
            for body_ids, finalbody in spans:
                if id(call) in body_ids:
                    if receiver in _final_releases(finalbody, attrs):
                        return True
            return False

        def class_methods(cls: ast.ClassDef):
            for stmt in cls.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield stmt

        def class_has_unlink(cls: Optional[ast.ClassDef]) -> bool:
            if cls is None:
                return False
            for method in class_methods(cls):
                for sub in ast.walk(method):
                    if (isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr == "unlink"):
                        return True
            return False

        def class_has_release(cls: Optional[ast.ClassDef]) -> bool:
            if cls is None:
                return False
            for method in class_methods(cls):
                if method.name not in self._RELEASE_METHODS:
                    continue
                for sub in ast.walk(method):
                    if (isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr in self._RELEASE_ATTRS):
                        recv = _dotted(sub.func.value)
                        if recv and recv.startswith("self"):
                            return True
            return False

        def visit(node: ast.AST, cls: Optional[ast.ClassDef]):
            if isinstance(node, ast.ClassDef):
                cls = node
            if isinstance(node, ast.Call):
                func = node.func
                name = _dotted(func) or ""
                if name.rsplit(".", 1)[-1] == "SharedMemory" and any(
                    kw.arg == "create"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in node.keywords
                ):
                    if not (class_has_unlink(cls)
                            or self._creation_in_finally(node, spans)):
                        findings.append(self.finding(
                            path, node,
                            "SharedMemory(create=True) with no reachable "
                            "unlink() (add one to the owning class or a "
                            "finally block)",
                        ))
                elif isinstance(func, ast.Attribute):
                    recv = _dotted(func.value)
                    if func.attr == "begin_batch" and recv:
                        if not finally_releases(
                            node, recv, {"trim", "close"}
                        ):
                            findings.append(self.finding(
                                path, node,
                                f"{recv}.begin_batch() is not followed by "
                                f"a `finally: {recv}.trim()` -- an "
                                "exception between publish and dispatch "
                                "strands shared-memory segments",
                            ))
                    elif (func.attr == "publish" and recv
                          and recv.startswith("self")):
                        if not (class_has_release(cls)
                                or finally_releases(
                                    node, recv, self._RELEASE_ATTRS)):
                            findings.append(self.finding(
                                path, node,
                                f"{recv}.publish(...) but the owning class "
                                "has no close/stop/shutdown/__exit__ "
                                "method releasing the store",
                            ))
            for child in ast.iter_child_nodes(node):
                visit(child, cls)

        visit(tree, None)
        return findings

    @staticmethod
    def _creation_in_finally(call: ast.Call, spans) -> bool:
        for body_ids, finalbody in spans:
            if id(call) in body_ids:
                if _final_releases(finalbody, {"unlink"}):
                    return True
        return False


# ----------------------------------------------------------------------
# RPR003 -- cache-key purity
# ----------------------------------------------------------------------
@register
class CacheKeyPurityRule(Rule):
    """Planner cache-key functions must be pure.

    Request coalescing (PR 5) folds concurrent queries whose plan keys
    match; a key that reads the clock, RNG state or the environment
    would coalesce distinct work or split identical work.  Entry points
    are module-level functions named ``*_key`` or containing
    ``fingerprint``; the scan follows same-module callees.
    """

    code = "RPR003"
    name = "cache-key-purity"
    description = (
        "planner cache-key functions may not read time, randomness, "
        "the environment, or perform I/O"
    )
    paths = ("repro/engine/planner.py", "repro/engine/cache.py")

    _BANNED_PREFIXES = (
        "time.", "random.", "secrets.", "uuid.", "datetime.",
        "np.random", "numpy.random",
        "os.environ", "os.getenv", "os.urandom", "os.getpid",
    )
    _BANNED_BUILTINS = {"open", "input", "print", "id", "hash",
                        "eval", "exec", "globals", "vars"}
    _BANNED_MODULES = {"time", "random", "secrets", "uuid", "datetime", "os"}

    def check(self, tree, source, path):
        findings: List[Finding] = []
        module_funcs: Dict[str, ast.FunctionDef] = {
            stmt.name: stmt
            for stmt in tree.body
            if isinstance(stmt, ast.FunctionDef)
        }
        # Names imported *from* impure modules count as impure reads.
        tainted_imports: Set[str] = set()
        for stmt in tree.body:
            if (isinstance(stmt, ast.ImportFrom)
                    and stmt.module in self._BANNED_MODULES):
                tainted_imports.update(
                    alias.asname or alias.name for alias in stmt.names
                )

        def entry(name: str) -> bool:
            return name.endswith("_key") or "fingerprint" in name

        def impurities(func: ast.FunctionDef):
            # ast.walk yields outer attributes before inner ones, so the
            # seen-position set reports `os.environ.get` once, not also
            # its nested `os.environ` read.
            seen_at = set()
            for sub in ast.walk(func):
                if isinstance(sub, ast.Attribute):
                    name = _dotted(sub)
                    if name and name.startswith(self._BANNED_PREFIXES):
                        pos = (sub.lineno, sub.col_offset)
                        if pos in seen_at:
                            continue
                        seen_at.add(pos)
                        yield sub, name
                elif isinstance(sub, ast.Call):
                    if (isinstance(sub.func, ast.Name)
                            and sub.func.id in self._BANNED_BUILTINS):
                        yield sub, f"{sub.func.id}()"
                elif (isinstance(sub, ast.Name)
                        and isinstance(sub.ctx, ast.Load)
                        and sub.id in tainted_imports):
                    yield sub, sub.id

        for name, func in module_funcs.items():
            if not entry(name):
                continue
            seen = {name}
            queue = [(func, name)]
            while queue:
                current, via = queue.pop()
                for node, what in impurities(current):
                    suffix = "" if via == name else f" (via {via}())"
                    findings.append(self.finding(
                        path, node if hasattr(node, "lineno") else current,
                        f"cache-key function {name}() is impure: "
                        f"uses {what}{suffix}",
                    ))
                for sub in ast.walk(current):
                    if (isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Name)
                            and sub.func.id in module_funcs
                            and sub.func.id not in seen):
                        seen.add(sub.func.id)
                        queue.append((module_funcs[sub.func.id],
                                      sub.func.id))
        return findings


# ----------------------------------------------------------------------
# RPR004 -- monotonic deadlines in hot paths
# ----------------------------------------------------------------------
@register
class WallClockRule(Rule):
    """Worker and executor code paths may not read the wall clock.

    Deadlines thread through the ``MotifTimeout`` budget, which is
    anchored on ``time.perf_counter()``; a ``time.time()`` call in a
    chunk path would make budgets jump under NTP slew and break the
    deterministic replay harness.  ``perf_counter``/``monotonic`` are
    allowed.
    """

    code = "RPR004"
    name = "wall-clock"
    description = (
        "no wall-clock reads (time.time, datetime.now) in worker/"
        "executor chunk paths; use the MotifTimeout budget"
    )
    paths = ("repro/engine/worker.py", "repro/engine/executor.py")

    _BANNED = {
        "time.time", "time.time_ns", "time.ctime", "time.asctime",
        "time.localtime", "time.gmtime", "time.strftime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }

    def check(self, tree, source, path):
        aliases: Dict[str, str] = {}
        for stmt in ast.walk(tree):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    aliases[alias.asname or alias.name] = alias.name
            elif isinstance(stmt, ast.ImportFrom) and stmt.module:
                for alias in stmt.names:
                    aliases[alias.asname or alias.name] = (
                        f"{stmt.module}.{alias.name}"
                    )

        def resolve(func: ast.AST) -> Optional[str]:
            name = _dotted(func)
            if name is None:
                return None
            head, _, rest = name.partition(".")
            head = aliases.get(head, head)
            return f"{head}.{rest}" if rest else head

        findings = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                resolved = resolve(node.func)
                if resolved in self._BANNED:
                    findings.append(self.finding(
                        path, node,
                        f"wall-clock call {resolved}() in a worker/"
                        "executor path; thread deadlines through the "
                        "MotifTimeout budget (perf_counter-based)",
                    ))
        return findings


# ----------------------------------------------------------------------
# RPR005 -- typed service errors
# ----------------------------------------------------------------------
@register
class ServiceErrorRule(Rule):
    """Service handlers must map exceptions to the protocol taxonomy.

    A bare ``except:`` (or an ``except Exception`` that swallows the
    error without producing a typed ``protocol`` error or re-raising)
    would collapse the HTTP status mapping clients rely on.
    """

    code = "RPR005"
    name = "typed-service-errors"
    description = (
        "no bare except in service code; broad handlers must map to "
        "typed protocol errors or re-raise"
    )
    paths = ("repro/service/",)

    _PROTOCOL_NAMES = {
        "ServiceError", "BadRequestError", "UnknownSnapshotError",
        "OverloadedError", "DeadlineExceededError",
        "ServiceUnavailableError", "error_payload", "error_from_payload",
    }
    _BROAD = {"Exception", "BaseException"}

    def check(self, tree, source, path):
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(self.finding(
                    path, node,
                    "bare `except:` in service code; catch specific "
                    "exceptions and map them to protocol errors",
                ))
                continue
            caught = {
                sub.id
                for sub in ast.walk(node.type)
                if isinstance(sub, ast.Name)
            } | {
                sub.attr
                for sub in ast.walk(node.type)
                if isinstance(sub, ast.Attribute)
            }
            if not (caught & self._BROAD):
                continue
            referenced: Set[str] = set()
            reraises = False
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name):
                    referenced.add(sub.id)
                elif isinstance(sub, ast.Attribute):
                    referenced.add(sub.attr)
                elif isinstance(sub, ast.Raise) and sub.exc is None:
                    reraises = True
            if not (reraises or referenced & self._PROTOCOL_NAMES):
                findings.append(self.finding(
                    path, node,
                    "`except Exception` handler neither re-raises nor "
                    "maps the failure to a typed protocol error",
                ))
        return findings


# ----------------------------------------------------------------------
# RPR006 -- fork-safe module state
# ----------------------------------------------------------------------
@register
class ForkSafetyRule(Rule):
    """No module-level mutable state in modules imported by pool workers.

    Worker processes are started via spawn *or* fork depending on the
    platform; under fork, module-level dicts/lists are silently shared
    copy-on-write and then diverge, so cross-process caches must live
    behind explicit shared-memory plumbing or be re-derived per worker.
    ``None`` sentinels, tuples and frozensets are fine.
    """

    code = "RPR006"
    name = "fork-safety"
    description = (
        "no fork-unsafe module-level mutable state in modules imported "
        "by pool workers"
    )
    paths = ("repro/engine/worker.py", "repro/engine/shm.py")

    _MUTABLE_CALLS = {"dict", "list", "set", "bytearray", "OrderedDict",
                      "defaultdict", "deque", "Counter"}
    _MUTABLE_NODES = (ast.Dict, ast.List, ast.Set,
                      ast.DictComp, ast.ListComp, ast.SetComp)

    def check(self, tree, source, path):
        findings = []
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            if value is None:
                continue
            kind = None
            if isinstance(value, self._MUTABLE_NODES):
                kind = type(value).__name__.lower()
            elif isinstance(value, ast.Call):
                callee = _dotted(value.func)
                if callee and callee.rsplit(".", 1)[-1] in self._MUTABLE_CALLS:
                    kind = callee
            if kind is None:
                continue
            names = ", ".join(
                _dotted(t) or "<target>" for t in targets
            )
            findings.append(self.finding(
                path, stmt,
                f"module-level mutable state `{names}` ({kind}) in a "
                "module imported by pool workers; fork-unsafe -- guard "
                "it or move it into the worker context",
            ))
        return findings


# ----------------------------------------------------------------------
# RPR007 -- lock-order graph
# ----------------------------------------------------------------------
_LOCK_KINDS = {"Lock": "plain", "RLock": "reentrant", "Condition": "reentrant"}


@register
class LockOrderRule(Rule):
    """Cross-function lock-order graph; fails on cycles.

    Tracks every ``with self.<lock>:`` / ``with <x>.get_lock():``
    acquisition per class, propagates lock sets through ``self.m()``
    calls to a fixpoint, and accumulates held->acquired edges across
    all scoped files.  :meth:`finish` runs cycle detection over the
    combined graph -- two code paths taking the same pair of locks in
    opposite orders is a deadlock waiting for enough load (the
    coalescing + admission locks of PR 5 are the motivating pair).
    Re-acquiring a non-reentrant lock already held is reported
    immediately.
    """

    code = "RPR007"
    name = "lock-order"
    description = (
        "threading.Lock acquisitions must form an acyclic lock-order "
        "graph across service and executor code"
    )
    paths = (
        "repro/service/service.py",
        "repro/engine/executor.py",
        "repro/engine/shm.py",
    )

    def __init__(self) -> None:
        self._edges: Dict[Tuple[str, str], Tuple[str, int]] = {}

    def check(self, tree, source, path):
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(node, path))
        return findings

    # -- per-class analysis -------------------------------------------
    def _check_class(self, cls: ast.ClassDef, path: str) -> List[Finding]:
        declared: Dict[str, str] = {}  # attr chain -> kind
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, ast.FunctionDef)
        }
        for method in methods.values():
            for sub in ast.walk(method):
                if not isinstance(sub, ast.Assign):
                    continue
                value = sub.value
                if not isinstance(value, ast.Call):
                    continue
                callee = _dotted(value.func) or ""
                kind = _LOCK_KINDS.get(callee.rsplit(".", 1)[-1])
                if kind is None:
                    continue
                for target in sub.targets:
                    chain = _dotted(target)
                    if chain and chain.startswith("self."):
                        declared[chain[len("self."):]] = kind

        def lock_node(expr: ast.AST) -> Optional[Tuple[str, str]]:
            """(node name, kind) when ``expr`` acquires a lock."""
            if (isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == "get_lock"):
                recv = _dotted(expr.func.value)
                if recv:
                    return (f"{cls.name}.{recv}.get_lock", "plain")
                return None
            chain = _dotted(expr)
            if chain and chain.startswith("self."):
                tail = chain[len("self."):]
                if tail in declared:
                    return (f"{cls.name}.{tail}", declared[tail])
                if "lock" in tail.lower() or "cond" in tail.lower():
                    return (f"{cls.name}.{tail}", "plain")
            return None

        findings: List[Finding] = []
        # Per method: direct acquisitions and self-call sites, each with
        # the lock stack held at that point.
        acquisitions: Dict[str, List[Tuple[str, str, int, Tuple[str, ...]]]]
        acquisitions = {}
        call_sites: Dict[str, List[Tuple[str, Tuple[str, ...], int]]] = {}

        def scan(node: ast.AST, held: Tuple[str, ...], method: str):
            if isinstance(node, ast.With):
                entered: List[str] = []
                for item in node.items:
                    lock = lock_node(item.context_expr)
                    if lock is not None:
                        name, kind = lock
                        acquisitions[method].append(
                            (name, kind, item.context_expr.lineno, held)
                        )
                        held = held + (name,)
                        entered.append(name)
                for stmt in node.body:
                    scan(stmt, held, method)
                return
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.func.attr in methods):
                call_sites[method].append(
                    (node.func.attr, held, node.lineno)
                )
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    continue
                scan(child, held, method)

        for name, method in methods.items():
            acquisitions[name] = []
            call_sites[name] = []
            for stmt in method.body:
                scan(stmt, (), name)

        # Fixpoint: the set of locks a method may acquire, transitively.
        locksets: Dict[str, Set[str]] = {
            name: {acq[0] for acq in acqs}
            for name, acqs in acquisitions.items()
        }
        changed = True
        while changed:
            changed = False
            for name in methods:
                for callee, _held, _line in call_sites[name]:
                    before = len(locksets[name])
                    locksets[name] |= locksets.get(callee, set())
                    if len(locksets[name]) != before:
                        changed = True

        for name in methods:
            for lock, kind, line, held in acquisitions[name]:
                if lock in held and kind == "plain":
                    findings.append(self.finding(
                        path, line,
                        f"non-reentrant lock {lock} re-acquired while "
                        f"already held in {cls.name}.{name}() -- "
                        "guaranteed self-deadlock",
                    ))
                for prior in held:
                    if prior != lock:
                        self._edges.setdefault(
                            (prior, lock), (path, line)
                        )
            for callee, held, line in call_sites[name]:
                for lock in locksets.get(callee, ()):
                    for prior in held:
                        if prior != lock:
                            self._edges.setdefault(
                                (prior, lock), (path, line)
                            )
        return findings

    # -- cross-file cycle detection -----------------------------------
    def finish(self) -> Iterable[Finding]:
        graph: Dict[str, List[str]] = {}
        for (src, dst) in self._edges:
            graph.setdefault(src, []).append(dst)
            graph.setdefault(dst, [])
        findings: List[Finding] = []
        reported: Set[frozenset] = set()
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done
        stack: List[str] = []

        def dfs(node: str):
            state[node] = 0
            stack.append(node)
            for nxt in graph[node]:
                if nxt not in state:
                    dfs(nxt)
                elif state[nxt] == 0:
                    cycle = stack[stack.index(nxt):] + [nxt]
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        edge = (cycle[0], cycle[1])
                        site = self._edges.get(
                            edge, next(iter(self._edges.values()))
                        )
                        findings.append(Finding(
                            self.code,
                            "lock-order cycle: " + " -> ".join(cycle)
                            + " (opposite nesting orders deadlock "
                            "under contention)",
                            site[0], site[1],
                        ))
            stack.pop()
            state[node] = 1

        for node in sorted(graph):
            if node not in state:
                dfs(node)
        return findings


# ----------------------------------------------------------------------
# RPR008 -- crash-safe pool dispatch
# ----------------------------------------------------------------------
@register
class PoolDispatchRule(Rule):
    """All pool dispatch must route through the crash-safe dispatcher.

    PR 8 centralised worker-crash recovery in
    ``ProcessExecutor.pool_map``: submission, broken-pool detection,
    pool rebuild and re-dispatch of unfinished tasks live in one place.
    A direct ``pool.map(...)`` / ``pool.submit(...)`` call anywhere
    else would hang (or raise ``BrokenProcessPool``) the moment a
    worker dies, silently bypassing the ``worker_crashes`` /
    ``redispatches`` accounting and the typed ``WorkerCrashError``
    contract the service layer maps onto the wire.  Only the body of
    ``pool_map`` itself may touch the pool's dispatch surface.
    """

    code = "RPR008"
    name = "crash-safe-dispatch"
    description = (
        "no direct pool.map/imap/submit outside the pool_map "
        "crash-safe dispatcher"
    )
    paths = ("repro/engine/", "repro/service/")

    _DISPATCH_ATTRS = {
        "map", "imap", "imap_unordered", "starmap", "starmap_async",
        "map_async", "apply", "apply_async", "submit",
    }
    #: The one sanctioned dispatcher (executor.ProcessExecutor.pool_map).
    _SANCTIONED = "pool_map"

    def check(self, tree, source, path):
        sanctioned_ids: Set[int] = set()
        for node in ast.walk(tree):
            if (isinstance(node, ast.FunctionDef)
                    and node.name == self._SANCTIONED):
                sanctioned_ids.update(
                    id(sub) for stmt in node.body for sub in ast.walk(stmt)
                )
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if id(node) in sanctioned_ids:
                continue
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._DISPATCH_ATTRS):
                continue
            recv = _dotted(node.func.value)
            if recv is None or "pool" not in recv.lower():
                continue
            findings.append(self.finding(
                path, node,
                f"direct {recv}.{node.func.attr}() dispatch bypasses the "
                "crash-safe pool_map dispatcher (no broken-pool "
                "detection, no re-dispatch, no worker_crashes "
                "accounting)",
            ))
        return findings


# ----------------------------------------------------------------------
# RPR009 -- no stray output on library paths
# ----------------------------------------------------------------------
@register
class StrayOutputRule(Rule):
    """Library code must not write to stdout.

    The serving stack observes itself through the metrics registry,
    the trace sink and the ``repro.service`` logger -- never through
    ``print``.  A stray ``print`` on a library path corrupts
    machine-read stdout (the CLI's JSON mode, a piped scrape),
    interleaves arbitrarily across fleet workers and pool children,
    and vanishes entirely in daemonised deployments.  Only the
    operator-facing surfaces -- the CLIs, the plotting helpers and
    the test harness -- own stdout; everything else reports through
    ``logging`` or :mod:`repro.obs`.
    """

    code = "RPR009"
    name = "no-stray-output"
    description = (
        "no print()/sys.stdout.write() outside the CLI, viz and "
        "testing surfaces"
    )
    paths = ("repro/",)

    #: Operator-facing surfaces where stdout *is* the interface.
    _EXEMPT = (
        "repro/cli.py",
        "repro/analysis/cli.py",
        "repro/viz.py",
        "repro/testing.py",
    )

    def check(self, tree, source, path):
        normalized = path.replace("\\", "/")
        if any(fragment in normalized for fragment in self._EXEMPT):
            return []
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "print":
                what = "print()"
            elif _dotted(node.func) == "sys.stdout.write":
                what = "sys.stdout.write()"
            else:
                continue
            findings.append(self.finding(
                path, node,
                f"stray {what} on a library path; report through "
                "logging or repro.obs (stdout belongs to the CLI)",
            ))
        return findings
