"""Extensions from the paper's future-work section.

* :func:`discover_top_k_motifs` -- top-k motif discovery;
* :func:`discover_motif_approximate` -- certified (1+eps)-approximate
  motif via the best-first early stop;
* :func:`similarity_join` -- DFD join with a lower-bound filter cascade;
* :func:`cluster_subtrajectories` -- DFD subtrajectory clustering.
"""

from .approximate import ApproximateResult, discover_motif_approximate
from .clustering import WindowCluster, cluster_subtrajectories
from .join import JoinStats, similarity_join
from .streaming import StreamingMotif
from .topk import RankedMotif, discover_top_k_motifs

__all__ = [
    "ApproximateResult",
    "JoinStats",
    "RankedMotif",
    "StreamingMotif",
    "WindowCluster",
    "cluster_subtrajectories",
    "discover_motif_approximate",
    "discover_top_k_motifs",
    "similarity_join",
]
