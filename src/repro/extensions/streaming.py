"""Streaming motif maintenance over a sliding window.

The paper's related work points at trajectory *streams* (outlier
detection over massive-scale streams); a natural companion problem is
maintaining the motif of the most recent ``window`` samples as points
arrive.  This module implements the exact warm-start strategy:

* keep the last ``window`` points;
* on every append, rediscover the motif **seeded with the previous
  answer** -- if the previous motif pair still lies inside the window,
  its distance is a valid witnessed ``bsf``, so the best-first search
  prunes almost everything unless the new point creates a better pair.

The answer is exact at every step (validated against from-scratch
discovery in the tests); the warm seed only changes the work done.
The search itself runs through :class:`repro.engine.MotifEngine`
(seeded BTM with relaxed bounds), so streaming shares one code path
with the batched workloads.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.motif import MotifResult
from ..distances.frechet import dfd_matrix
from ..distances.ground import GroundMetric, get_metric
from ..errors import InfeasibleQueryError, ReproError
from ..trajectory import Trajectory


class StreamingMotif:
    """Exact sliding-window motif maintenance.

    Parameters
    ----------
    window:
        Number of most recent samples the motif is maintained over.
    min_length:
        The paper's ``xi``.
    metric:
        Ground metric (name or instance); Euclidean by default.
    engine:
        Optional :class:`repro.engine.MotifEngine` to search through; a
        private single-worker engine with caching disabled is created
        by default (window contents change on every append, so
        cross-call caching cannot help a single stream).
    verify_seed:
        Debug knob: recompute the warm seed's DFD from scratch on every
        append and assert it matches the carried value.  The carried
        previous distance is exact by construction -- the window shift
        translates both subtrajectories by whole indices, leaving every
        pairwise ground distance (hence the DFD) untouched -- so the
        O(L^2) recompute is off by default; it exists to diagnose a
        corrupted stream state.
    use_window_index:
        Consult the per-append endpoint/bbox summary bound before
        rerunning the seeded search (see :meth:`_append_lower_bound`):
        when even the cheapest admissible lower bound on every *new*
        candidate pair meets or exceeds the carried motif's distance,
        the append provably cannot change the answer and the O(L^2)
        rerun is skipped entirely (counted in ``appends_skipped``).
        Answers are identical either way (tested); the knob exists so
        effectiveness experiments can measure the skip rate against
        the always-search baseline.

    Usage::

        stream = StreamingMotif(window=200, min_length=10)
        for point in source:
            result = stream.append(point)   # None until enough points
    """

    def __init__(
        self,
        window: int,
        min_length: int,
        metric: Union[str, GroundMetric, None] = "euclidean",
        engine=None,
        verify_seed: bool = False,
        use_window_index: bool = True,
    ) -> None:
        if window < 2 * min_length + 4:
            raise InfeasibleQueryError(
                f"window={window} cannot hold two non-overlapping "
                f"subtrajectories of min_length={min_length}"
            )
        self.window = int(window)
        self.min_length = int(min_length)
        self.metric = get_metric(metric)
        self.verify_seed = bool(verify_seed)
        self.use_window_index = bool(use_window_index)
        self._engine = engine
        self._points: list = []
        self._dropped = 0  # absolute index of points[0]
        self._last: Optional[MotifResult] = None
        #: Cumulative expansion counter (for effectiveness reporting).
        self.subsets_expanded_total = 0
        #: Appends answered without a search: the window summary bound
        #: proved no new candidate pair could beat the carried motif.
        self.appends_skipped = 0
        #: Appends that ran the (seeded) search.
        self.appends_searched = 0

    @property
    def engine(self):
        """The engine executing the per-append searches (lazy)."""
        if self._engine is None:
            from ..engine import MotifEngine

            # Window contents change on every append, so content-keyed
            # caches can never hit for a single stream -- disable them
            # rather than pin the last windows' matrices in memory.
            self._engine = MotifEngine(
                workers=1,
                oracle_cache_size=0,
                tables_cache_size=0,
                result_cache_size=0,
            )
        return self._engine

    @property
    def size(self) -> int:
        """Current number of buffered points."""
        return len(self._points)

    @property
    def ready(self) -> bool:
        """True once the buffer can contain a valid motif."""
        return len(self._points) >= 2 * self.min_length + 4

    @property
    def last_result(self) -> Optional[MotifResult]:
        """The most recent motif (window-relative indices)."""
        return self._last

    def append(self, point) -> Optional[MotifResult]:
        """Add one sample; return the current window's motif (or None).

        The search is exact; the previous answer is reused only as a
        starting ``bsf`` when its pair is still inside the window.
        """
        pt = np.asarray(point, dtype=np.float64).reshape(-1)
        if self._points and pt.shape[0] != self._points[0].shape[0]:
            raise ReproError("point dimensionality changed mid-stream")
        self._points.append(pt)
        if len(self._points) > self.window:
            self._points.pop(0)
            self._dropped += 1
        if not self.ready:
            self._last = None
            return None
        self._last = self._search()
        return self._last

    def extend(self, points) -> Optional[MotifResult]:
        """Append many samples; return the final motif state."""
        out = None
        for pt in np.asarray(points, dtype=np.float64):
            out = self.append(pt)
        return out

    @property
    def skip_rate(self) -> float:
        """Fraction of ready appends answered without a search."""
        done = self.appends_skipped + self.appends_searched
        return self.appends_skipped / done if done else 0.0

    # ------------------------------------------------------------------
    def _search(self) -> MotifResult:
        pts = np.vstack(self._points)
        seed = self._warm_seed(pts)
        if (
            self.use_window_index
            and seed is not None
            and self._append_lower_bound(pts) >= seed[0]
        ):
            self.appends_skipped += 1
            return self._carried_result(pts, seed)
        self.appends_searched += 1
        result = self.engine.discover(
            Trajectory(pts),
            min_length=self.min_length,
            algorithm="btm",
            metric=self.metric,
            seed=seed,
            cacheable=False,
        )
        self.subsets_expanded_total += result.stats.subsets_expanded
        return result

    def _append_lower_bound(self, pts: np.ndarray) -> float:
        """Admissible DFD lower bound over every *new* candidate pair.

        Subtrajectories are contiguous, so a candidate pair unseen in
        the previous window must contain the newest point -- and can
        only contain it as the *last* point of its second
        subtrajectory (self mode orders the pair, so only the second
        can reach the window's end).  Any coupling matches final
        points, hence for every new pair

        ``DFD >= d(partner_end, p_new) >= min_e d(points[e], p_new)``

        with ``e`` ranging over the feasible first-subtrajectory end
        indices ``[xi+1, n-xi-3]`` (a superset keeps the bound
        admissible).  Every *old* pair survived the eviction and its
        distance is >= the carried motif's by definition of the
        previous minimum, so when this bound reaches the carried
        distance the seeded best-first rerun provably returns the
        carried witness -- the skip is exact (the witnessed ``bsf``
        prunes ties, see :mod:`repro.core.btm`'s witness rule).

        The window's summaries make the check cheap: a bounding-box
        gap test (coordinate-monotone metrics) answers most skips in
        O(d), and the fallback is one vectorised O(n) endpoint sweep
        -- against the O(L^2) search it replaces.
        """
        n, xi = pts.shape[0], self.min_length
        lo, hi = xi + 1, n - xi - 3
        if hi < lo:  # pragma: no cover - unreachable once ready
            return -np.inf
        band = pts[lo:hi + 1]
        p_new = pts[-1]
        if self.metric.coordinate_monotone:
            # Box summary first: the gap from p_new to the band's
            # bounding box lower-bounds every endpoint distance.
            gaps = np.maximum(
                0.0,
                np.maximum(band.min(axis=0) - p_new, p_new - band.max(axis=0)),
            )
            box_lb = float(self.metric.distance(np.zeros_like(gaps), gaps))
            if box_lb >= (self._last.distance if self._last else np.inf):
                return box_lb
        ends = self.metric.rowwise(band, np.tile(p_new, (band.shape[0], 1)))
        return float(ends.min())

    def _carried_result(self, pts: np.ndarray, seed) -> MotifResult:
        """The carried motif re-expressed in the current window.

        Byte-identical to what the seeded rerun would return: the
        rerun starts from this witnessed pair and (per
        :meth:`_append_lower_bound`) no candidate can strictly beat it
        or displace it on a tie.
        """
        from ..core.stats import SearchStats

        value, (i, ie, j, je) = seed
        traj = Trajectory(pts)
        stats = SearchStats(
            algorithm="streaming-skip", mode="self",
            n_rows=pts.shape[0], n_cols=pts.shape[0], xi=self.min_length,
        )
        return MotifResult(
            traj.subtrajectory(i, ie),
            traj.subtrajectory(j, je),
            float(value),
            stats,
        )

    def _warm_seed(self, pts: np.ndarray):
        """Previous answer as a witnessed starting candidate, if its
        index range survived the eviction (shifted by one per drop)."""
        if self._last is None:
            return None
        prev = self._last
        shift = 1 if len(self._points) == self.window and self._dropped else 0
        # Window indices move left by `shift` relative to the previous
        # call (at most one eviction per append).
        i = prev.first.start - shift
        ie = prev.first.end - shift
        j = prev.second.start - shift
        je = prev.second.end - shift
        if i < 0:
            return None
        # The distance is shift-invariant: the surviving pair covers the
        # same points at indices shifted by a constant, so every ground
        # distance -- and therefore the DFD -- is bit-identical.  Reuse
        # the previous answer instead of rebuilding the O(L x L)
        # pairwise matrix and DFD DP on every append.
        value = float(prev.distance)
        if self.verify_seed:  # debug: recompute from scratch and compare
            recomputed = float(dfd_matrix(
                self.metric.pairwise(pts[i : ie + 1], pts[j : je + 1])
            ))
            if recomputed != value:  # pragma: no cover - corruption guard
                raise ReproError(
                    f"streaming warm seed drifted: carried {value!r}, "
                    f"recomputed {recomputed!r}"
                )
            value = recomputed
        return value, (i, ie, j, je)
