"""Top-k motif discovery.

A natural generalisation of Problem 1: report the ``k`` best candidate
pairs, at most one per candidate subset ``CS_{i,j}`` (without the
per-subset restriction the answer is k near-duplicates of the motif
shifted by one index, which is useless).  The bounding machinery
carries over: a subset whose lower bound exceeds the current k-th best
distance cannot contribute, so the best-first loop simply prunes
against the heap maximum instead of the single ``bsf``.

Canonical answer
----------------
The answer is defined *canonically* so serial and partitioned-parallel
scans agree byte-for-byte even under distance ties: each subset
contributes its deterministic best candidate (the kernels report the
first scan-order cell attaining the subset minimum, independent of the
pruning threshold), and the top-k is the ``k`` smallest entries under
the total order ``(distance, (i, ie, j, je))``.  Retention by that key
is order-independent, which is what lets the engine merge per-chunk
heaps into the exact serial ranking without a resolution pass (see
``MotifEngine.top_k``).

:func:`scan_topk_entries` is the oracle-level core shared by the
serial wrapper and the engine's chunk workers; the engine additionally
supplies a cached ground matrix so repeated top-k calls on a serving
corpus skip the O(n^2) precompute.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.bounds import BoundTables, SubsetBounds, relaxed_subset_bounds
from ..core.dp import expand_subset
from ..core.motif import _as_trajectory, _build_oracle  # shared plumbing
from ..core.problem import SearchSpace, cross_space, self_space
from ..core.stats import PhaseTimer, SearchStats
from ..distances.ground import GroundMetric, get_metric
from ..trajectory import Subtrajectory, Trajectory

#: One answer entry before trajectory views are built.
TopKEntry = Tuple[float, Tuple[int, int, int, int]]


@dataclass(frozen=True)
class RankedMotif:
    """One entry of the top-k answer."""

    rank: int
    first: Subtrajectory
    second: Subtrajectory
    distance: float

    @property
    def indices(self):
        return (
            self.first.start,
            self.first.end,
            self.second.start,
            self.second.end,
        )


def scan_topk_entries(
    oracle,
    space: SearchSpace,
    bounds: SubsetBounds,
    cmin: Optional[np.ndarray],
    rmin: Optional[np.ndarray],
    k: int,
    stats: SearchStats,
    *,
    kth0: float = math.inf,
    sync: Optional[Callable[[float], float]] = None,
    sync_every: int = 64,
    positions: Optional[np.ndarray] = None,
) -> List[TopKEntry]:
    """Heap-pruned best-first scan; returns ascending ``(dist, cand)``.

    Exact: every subset whose bound is at or below the k-th best
    distance is expanded, with the expansion threshold nudged one ulp
    above the cut so tied candidates are still recorded.  ``kth0``
    seeds the cut with an externally proven k-th-best bound and
    ``sync`` (called every ``sync_every`` subsets with the local k-th
    best) exchanges thresholds with sibling chunk scans -- both only
    tighten pruning; the returned entries are unchanged.  ``positions``
    restricts the scan to a strided share of the bound arrays (the
    engine's zero-copy chunk tasks); the ascending order is consumed
    lazily via :meth:`SubsetBounds.order_blocks`, so sort cost scales
    with the subsets actually expanded.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    # Max-heap over the (distance, candidate) total order via negation.
    heap: List[Tuple[float, Tuple[int, int, int, int]]] = []
    external = float(kth0)

    def kth_dist() -> float:
        return -heap[0][0] if len(heap) == k else math.inf

    count = 0
    exhausted = False
    block_iter = bounds.order_blocks(within=positions)
    while not exhausted:
        # Pull the next block only while still consuming -- once the
        # cut is exhausted, generating another (doubled-size) block
        # would pay a full selection pass just to discard it.
        block = next(block_iter, None)
        if block is None:
            break
        for idx in block:
            if sync is not None and count % sync_every == 0:
                external = min(external, sync(kth_dist()))
            cut = min(kth_dist(), external)
            lb = float(bounds.combined[idx])
            if lb > cut:
                exhausted = True
                break
            i = int(bounds.i_idx[idx])
            j = int(bounds.j_idx[idx])
            dist, cand = expand_subset(
                oracle, space, i, j, float(np.nextafter(cut, np.inf)), None,
                cmin=cmin, rmin=rmin, prune=True, stats=stats,
            )
            count += 1
            if cand is None:
                continue
            heapq.heappush(heap, (-float(dist), tuple(-v for v in cand)))
            if len(heap) > k:
                heapq.heappop(heap)
    stats.subsets_total += len(bounds) if positions is None else len(positions)
    stats.subsets_expanded += count
    return sorted(
        (-neg_d, tuple(-v for v in neg_cand)) for neg_d, neg_cand in heap
    )


def merge_topk_entries(
    parts: Iterable[Sequence[TopKEntry]], k: int
) -> List[TopKEntry]:
    """The k smallest ``(dist, cand)`` entries across per-chunk answers.

    Each chunk retains its own k best, and any candidate in the global
    answer is among its chunk's k best, so the merge is exact.
    """
    return heapq.nsmallest(k, (entry for part in parts for entry in part))


def entries_to_ranked(
    traj_a: Trajectory, traj_b: Optional[Trajectory], entries: Sequence[TopKEntry]
) -> List[RankedMotif]:
    """Materialise subtrajectory views for an ascending entry list."""
    parent_b = traj_a if traj_b is None else traj_b
    return [
        RankedMotif(
            rank,
            traj_a.subtrajectory(i, ie),
            parent_b.subtrajectory(j, je),
            float(dist),
        )
        for rank, (dist, (i, ie, j, je)) in enumerate(entries, start=1)
    ]


def top_k_from_oracle(
    traj_a: Trajectory,
    traj_b: Optional[Trajectory],
    space: SearchSpace,
    oracle,
    k: int,
    stats: SearchStats,
) -> List[RankedMotif]:
    """Serial top-k over a prebuilt ground oracle (canonical answer)."""
    with PhaseTimer(stats, "time_bounds"):
        tables = BoundTables.build(space, oracle)
        bounds = relaxed_subset_bounds(space, oracle, tables)
    entries = scan_topk_entries(
        oracle, space, bounds, tables.cmin, tables.rmin, k, stats
    )
    return entries_to_ranked(traj_a, traj_b, entries)


def discover_top_k_motifs(
    trajectory: Union[Trajectory, np.ndarray],
    second: Optional[Union[Trajectory, np.ndarray]] = None,
    *,
    min_length: int,
    k: int = 5,
    metric: Union[str, GroundMetric, None] = None,
) -> List[RankedMotif]:
    """Return the ``k`` best subset-distinct motif pairs, ascending.

    One-shot convenience wrapper; batched callers should prefer
    :meth:`repro.engine.MotifEngine.top_k`, which caches the ground
    oracle across calls and can partition the scan over workers.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    traj_a = _as_trajectory(trajectory)
    traj_b = None if second is None else _as_trajectory(second)
    space = (
        self_space(traj_a.n, min_length)
        if traj_b is None
        else cross_space(traj_a.n, traj_b.n, min_length)
    )
    stats = SearchStats(algorithm="topk", mode=space.mode, xi=space.xi)
    resolved = get_metric(metric, crs=traj_a.crs)

    class _DenseAlgo:  # oracle builder expects an algorithm instance
        pass

    oracle = _build_oracle(_DenseAlgo(), traj_a, traj_b, resolved, stats)
    return top_k_from_oracle(traj_a, traj_b, space, oracle, k, stats)
