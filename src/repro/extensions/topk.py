"""Top-k motif discovery.

A natural generalisation of Problem 1: report the ``k`` best candidate
pairs, at most one per candidate subset ``CS_{i,j}`` (without the
per-subset restriction the answer is k near-duplicates of the motif
shifted by one index, which is useless).  The bounding machinery
carries over: a subset whose lower bound reaches the current k-th best
distance cannot contribute, so the best-first loop simply prunes
against the heap maximum instead of the single ``bsf``.

:func:`top_k_from_oracle` is the oracle-level core; it is shared with
:meth:`repro.engine.MotifEngine.top_k`, which supplies a cached ground
matrix so repeated top-k calls on a serving corpus skip the O(n^2)
precompute.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from ..core.bounds import BoundTables, relaxed_subset_bounds
from ..core.dp import expand_subset
from ..core.motif import _as_trajectory, _build_oracle  # shared plumbing
from ..core.problem import SearchSpace, cross_space, self_space
from ..core.stats import PhaseTimer, SearchStats
from ..distances.ground import GroundMetric, get_metric
from ..trajectory import Subtrajectory, Trajectory


@dataclass(frozen=True)
class RankedMotif:
    """One entry of the top-k answer."""

    rank: int
    first: Subtrajectory
    second: Subtrajectory
    distance: float

    @property
    def indices(self):
        return (
            self.first.start,
            self.first.end,
            self.second.start,
            self.second.end,
        )


def top_k_from_oracle(
    traj_a: Trajectory,
    traj_b: Optional[Trajectory],
    space: SearchSpace,
    oracle,
    k: int,
    stats: SearchStats,
) -> List[RankedMotif]:
    """The heap-pruned best-first loop over a prebuilt ground oracle.

    Exact: every subset whose bound beats the k-th best is expanded.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    with PhaseTimer(stats, "time_bounds"):
        tables = BoundTables.build(space, oracle)
        bounds = relaxed_subset_bounds(space, oracle, tables)
    order = bounds.order()

    # Max-heap of the k best (distance, candidate) via negated distance.
    heap: List[Tuple[float, Tuple[int, int, int, int]]] = []
    for idx in order:
        lb = float(bounds.combined[idx])
        kth = -heap[0][0] if len(heap) == k else float("inf")
        if lb >= kth:
            break
        i = int(bounds.i_idx[idx])
        j = int(bounds.j_idx[idx])
        dist, cand = expand_subset(
            oracle, space, i, j, kth, None,
            cmin=tables.cmin, rmin=tables.rmin, prune=True, stats=stats,
        )
        if cand is None:
            continue
        heapq.heappush(heap, (-dist, cand))
        if len(heap) > k:
            heapq.heappop(heap)
    ranked = sorted(((-negd, cand) for negd, cand in heap), key=lambda t: t[0])
    out: List[RankedMotif] = []
    parent_b = traj_a if traj_b is None else traj_b
    for rank, (dist, (i, ie, j, je)) in enumerate(ranked, start=1):
        out.append(
            RankedMotif(
                rank,
                traj_a.subtrajectory(i, ie),
                parent_b.subtrajectory(j, je),
                float(dist),
            )
        )
    return out


def discover_top_k_motifs(
    trajectory: Union[Trajectory, np.ndarray],
    second: Optional[Union[Trajectory, np.ndarray]] = None,
    *,
    min_length: int,
    k: int = 5,
    metric: Union[str, GroundMetric, None] = None,
) -> List[RankedMotif]:
    """Return the ``k`` best subset-distinct motif pairs, ascending.

    One-shot convenience wrapper; batched callers should prefer
    :meth:`repro.engine.MotifEngine.top_k`, which caches the ground
    oracle across calls.
    """
    traj_a = _as_trajectory(trajectory)
    traj_b = None if second is None else _as_trajectory(second)
    space = (
        self_space(traj_a.n, min_length)
        if traj_b is None
        else cross_space(traj_a.n, traj_b.n, min_length)
    )
    stats = SearchStats(algorithm="topk", mode=space.mode, xi=space.xi)
    resolved = get_metric(metric, crs=traj_a.crs)

    class _DenseAlgo:  # oracle builder expects an algorithm instance
        pass

    oracle = _build_oracle(_DenseAlgo(), traj_a, traj_b, resolved, stats)
    return top_k_from_oracle(traj_a, traj_b, space, oracle, k, stats)
