"""DFD similarity join between trajectory collections.

The paper's conclusion proposes accelerating "other trajectory analysis
operations that rely on DFD, such as similarity join".  Given two
collections and a threshold ``theta``, the join reports every pair of
whole trajectories with ``DFD <= theta``, using a cascade of cheap
lower-bound filters before the exact decision:

1. **endpoint filter** -- any coupling matches the first points and the
   last points of both curves, so
   ``max(d(p_0, q_0), d(p_{n-1}, q_{m-1})) <= DFD``;
2. **bounding-box filter** -- every coupled pair is one point from
   each trajectory, so the minimum box-to-box distance lower-bounds
   the DFD;
3. **Hausdorff filter** -- every point of each trajectory appears in
   some coupled pair, hence both directed Hausdorff distances (and so
   their max) lower-bound the DFD;
4. **exact decision** -- the vectorised reachability test
   :func:`repro.distances.frechet.dfd_decision` at ``theta``.

Filters 1-2 are O(1)-ish, filter 3 needs the O(nm) ground matrix that
step 4 reuses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union

import numpy as np

from ..distances.frechet import dfd_decision
from ..distances.ground import GroundMetric, get_metric
from ..distances.hausdorff import directed_hausdorff_matrix
from ..trajectory import Trajectory


@dataclass
class JoinStats:
    """Filter-cascade accounting for one join run."""

    pairs_total: int = 0
    pruned_endpoint: int = 0
    pruned_bbox: int = 0
    pruned_hausdorff: int = 0
    decisions: int = 0
    matches: int = 0
    details: dict = field(default_factory=dict)

    @property
    def pruned_total(self) -> int:
        return self.pruned_endpoint + self.pruned_bbox + self.pruned_hausdorff


def merge_join_stats(parts: Sequence[JoinStats]) -> JoinStats:
    """Fold per-chunk join statistics into one (engine-parallel joins).

    The filter cascade is per-pair, so every counter is additive across
    a partition of the pair grid.
    """
    total = JoinStats()
    for part in parts:
        total.pairs_total += part.pairs_total
        total.pruned_endpoint += part.pruned_endpoint
        total.pruned_bbox += part.pruned_bbox
        total.pruned_hausdorff += part.pruned_hausdorff
        total.decisions += part.decisions
        total.matches += part.matches
        total.details.update(part.details)
    return total


def similarity_join(
    left: Sequence[Union[Trajectory, np.ndarray]],
    right: Sequence[Union[Trajectory, np.ndarray]],
    theta: float,
    metric: Union[str, GroundMetric] = "euclidean",
    offsets: Tuple[int, int] = (0, 0),
) -> Tuple[List[Tuple[int, int]], JoinStats]:
    """All pairs ``(a, b)`` with ``DFD(left[a], right[b]) <= theta``.

    Returns the matching index pairs and the filter statistics.
    ``offsets`` shifts the reported indices -- a tile of a sharded join
    (see :meth:`repro.engine.MotifEngine.join`) passes the absolute
    positions of its first left/right trajectory so per-tile matches
    land directly in collection coordinates.
    """
    if theta < 0:
        raise ValueError("theta must be non-negative")
    off_a, off_b = (int(offsets[0]), int(offsets[1]))
    m = get_metric(metric)
    lpts = [np.asarray(getattr(t, "points", t), dtype=np.float64) for t in left]
    rpts = [np.asarray(getattr(t, "points", t), dtype=np.float64) for t in right]
    lboxes = [_bbox(p) for p in lpts]
    rboxes = [_bbox(p) for p in rpts]
    stats = JoinStats(pairs_total=len(lpts) * len(rpts))
    matches: List[Tuple[int, int]] = []
    for a, p in enumerate(lpts):
        for b, q in enumerate(rpts):
            # Filter 1: endpoints.
            if m.distance(p[0], q[0]) > theta or m.distance(p[-1], q[-1]) > theta:
                stats.pruned_endpoint += 1
                continue
            # Filter 2: bounding boxes.  The closest-point construction
            # is exact for the Euclidean metric only, so the filter is
            # skipped for other ground metrics.
            if m.name == "euclidean" and _boxes_apart(lboxes[a], rboxes[b], theta, m):
                stats.pruned_bbox += 1
                continue
            # Filter 3: symmetric Hausdorff from the shared matrix.
            dmat = m.pairwise(p, q)
            h = max(
                directed_hausdorff_matrix(dmat),
                directed_hausdorff_matrix(dmat.T),
            )
            if h > theta:
                stats.pruned_hausdorff += 1
                continue
            # Filter 4: exact decision.
            stats.decisions += 1
            if dfd_decision(dmat, theta):
                stats.matches += 1
                matches.append((a + off_a, b + off_b))
    return matches, stats


def _bbox(points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    return points.min(axis=0), points.max(axis=0)


def _boxes_apart(box_a, box_b, theta: float, metric: GroundMetric) -> bool:
    """True when the minimum box-to-box distance exceeds theta.

    Per axis, the closest pair of points of two intervals is either the
    facing endpoints (disjoint intervals) or any shared coordinate
    (overlapping intervals); assembling those coordinates gives the
    closest point pair of the boxes under the Euclidean metric.
    """
    lo_a, hi_a = box_a
    lo_b, hi_b = box_b
    near_a = np.where(hi_a < lo_b, hi_a, np.where(hi_b < lo_a, lo_a, np.maximum(lo_a, lo_b)))
    near_b = np.where(hi_a < lo_b, lo_b, np.where(hi_b < lo_a, hi_b, np.maximum(lo_a, lo_b)))
    return metric.distance(near_a, near_b) > theta
