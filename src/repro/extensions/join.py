"""DFD similarity join (and top-k closest pairs) between collections.

The paper's conclusion proposes accelerating "other trajectory analysis
operations that rely on DFD, such as similarity join".  Given two
collections and a threshold ``theta``, the join reports every pair of
whole trajectories with ``DFD <= theta``, using a cascade of cheap
lower-bound filters before the exact decision:

1. **endpoint filter** -- any coupling matches the first points and the
   last points of both curves, so
   ``max(d(p_0, q_0), d(p_{n-1}, q_{m-1})) <= DFD``;
2. **bounding-box filter** -- every coupled pair is one point from
   each trajectory, so the minimum box-to-box distance lower-bounds
   the DFD;
3. **Hausdorff filter** -- every point of each trajectory appears in
   some coupled pair, hence both directed Hausdorff distances (and so
   their max) lower-bound the DFD;
4. **exact decision** -- the vectorised reachability test
   :func:`repro.distances.frechet.dfd_decision` at ``theta``.

Filters 1-2 are O(1)-ish, filter 3 needs the O(nm) ground matrix that
step 4 reuses.  The bounding-box filter applies to every
*coordinate-monotone* ground metric
(:attr:`~repro.distances.ground.GroundMetric.coordinate_monotone`,
e.g. Euclidean and Chebyshev): the axis-wise closest-point
construction minimises every per-axis difference simultaneously, hence
the metric value too.

``index=True`` puts a :class:`~repro.index.CorpusIndex` in front of the
cascade: per-trajectory summaries (endpoints, boxes, Douglas-Peucker
simplifications with exact DFD error radii) plus endpoint-grid
bucketing prune most pairs before any of the per-pair filters run.
The pruning is admissible, so the *matches* are identical to the
unindexed path; the filter statistics account the index's share in
``pruned_index``.  :func:`join_pairs` is the candidate-list core the
indexed paths (serial and engine-sharded) share, and
:func:`scan_join_topk` the analogous core of the top-k closest-pair
join :func:`join_top_k`.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..distances.frechet import dfd_decision, dfd_matrix
from ..distances.ground import GroundMetric, get_metric
from ..distances.hausdorff import directed_hausdorff_matrix
from ..trajectory import Trajectory

#: One top-k closest-pair entry: ``(distance, (left index, right index))``.
JoinTopKEntry = Tuple[float, Tuple[int, int]]


@dataclass
class JoinStats:
    """Filter-cascade accounting for one join run."""

    pairs_total: int = 0
    pruned_index: int = 0
    pruned_endpoint: int = 0
    pruned_bbox: int = 0
    pruned_hausdorff: int = 0
    decisions: int = 0
    matches: int = 0
    details: dict = field(default_factory=dict)

    @property
    def pruned_total(self) -> int:
        return (
            self.pruned_index
            + self.pruned_endpoint
            + self.pruned_bbox
            + self.pruned_hausdorff
        )


def merge_join_stats(parts: Sequence[JoinStats]) -> JoinStats:
    """Fold per-chunk join statistics into one (engine-parallel joins).

    The filter cascade is per-pair, so every counter is additive across
    a partition of the pair grid.
    """
    total = JoinStats()
    for part in parts:
        total.pairs_total += part.pairs_total
        total.pruned_index += part.pruned_index
        total.pruned_endpoint += part.pruned_endpoint
        total.pruned_bbox += part.pruned_bbox
        total.pruned_hausdorff += part.pruned_hausdorff
        total.decisions += part.decisions
        total.matches += part.matches
        total.details.update(part.details)
    return total


def _points_getter(items: Sequence) -> Callable[[int], np.ndarray]:
    """Adapt a trajectory sequence into an index -> points callable."""
    arrays = [
        np.asarray(getattr(t, "points", t), dtype=np.float64) for t in items
    ]
    return lambda i: arrays[i]


def similarity_join(
    left: Sequence[Union[Trajectory, np.ndarray]],
    right: Sequence[Union[Trajectory, np.ndarray]],
    theta: float,
    metric: Union[str, GroundMetric] = "euclidean",
    offsets: Tuple[int, int] = (0, 0),
    index: bool = False,
) -> Tuple[List[Tuple[int, int]], JoinStats]:
    """All pairs ``(a, b)`` with ``DFD(left[a], right[b]) <= theta``.

    Returns the matching index pairs and the filter statistics.
    ``offsets`` shifts the reported indices -- a tile of a sharded join
    (see :meth:`repro.engine.MotifEngine.join`) passes the absolute
    positions of its first left/right trajectory so per-tile matches
    land directly in collection coordinates.  With ``index=True`` a
    :class:`~repro.index.CorpusIndex` generates the candidate pairs
    first; the matches are identical (the index bounds are admissible)
    and the pairs it removed are accounted in ``stats.pruned_index``.
    """
    if theta < 0:
        raise ValueError("theta must be non-negative")
    if index:
        return _indexed_join(left, right, theta, metric, offsets)
    off_a, off_b = (int(offsets[0]), int(offsets[1]))
    m = get_metric(metric)
    lpts = [np.asarray(getattr(t, "points", t), dtype=np.float64) for t in left]
    rpts = [np.asarray(getattr(t, "points", t), dtype=np.float64) for t in right]
    lboxes = [_bbox(p) for p in lpts]
    rboxes = [_bbox(p) for p in rpts]
    stats = JoinStats(pairs_total=len(lpts) * len(rpts))
    matches: List[Tuple[int, int]] = []
    for a, p in enumerate(lpts):
        for b, q in enumerate(rpts):
            if _pair_cascade(p, q, lboxes[a], rboxes[b], theta, m, stats):
                matches.append((a + off_a, b + off_b))
    return matches, stats


def _pair_cascade(p, q, box_p, box_q, theta, m, stats) -> bool:
    """Filters 1-4 on one pair; updates ``stats``, True on a match."""
    # Filter 1: endpoints.
    if m.distance(p[0], q[0]) > theta or m.distance(p[-1], q[-1]) > theta:
        stats.pruned_endpoint += 1
        return False
    # Filter 2: bounding boxes.  The closest-point construction is
    # exact for every coordinate-monotone ground metric (Euclidean,
    # Chebyshev); other metrics skip the filter.
    if m.coordinate_monotone and _boxes_apart(box_p, box_q, theta, m):
        stats.pruned_bbox += 1
        return False
    # Filter 3: symmetric Hausdorff from the shared matrix.
    dmat = m.pairwise(p, q)
    h = max(
        directed_hausdorff_matrix(dmat),
        directed_hausdorff_matrix(dmat.T),
    )
    if h > theta:
        stats.pruned_hausdorff += 1
        return False
    # Filter 4: exact decision.
    stats.decisions += 1
    if dfd_decision(dmat, theta):
        stats.matches += 1
        return True
    return False


def join_pairs(
    get_left: Callable[[int], np.ndarray],
    get_right: Callable[[int], np.ndarray],
    pairs,
    theta: float,
    metric: Union[str, GroundMetric] = "euclidean",
    offsets: Tuple[int, int] = (0, 0),
) -> Tuple[List[Tuple[int, int]], JoinStats]:
    """The filter cascade over an explicit candidate-pair list.

    The core the indexed join paths share: the serial
    ``similarity_join(index=True)`` and the engine's sharded pair
    chunks both call it, so their cascade statistics are additive and
    identical for identical candidate sets.  ``get_left`` /
    ``get_right`` map collection indices to point arrays (inline lists
    or shared-memory transport slabs); ``pairs`` is an ``(m, 2)``
    iterable of collection index pairs.  ``stats.pairs_total`` counts
    only the candidates scanned here -- callers fold the index's own
    accounting on top.
    """
    if theta < 0:
        raise ValueError("theta must be non-negative")
    off_a, off_b = (int(offsets[0]), int(offsets[1]))
    m = get_metric(metric)
    boxes_l: dict = {}
    boxes_r: dict = {}
    stats = JoinStats(pairs_total=len(pairs))
    matches: List[Tuple[int, int]] = []
    for a, b in pairs:
        a, b = int(a), int(b)
        p, q = get_left(a), get_right(b)
        box_p = boxes_l.get(a)
        if box_p is None:
            box_p = boxes_l[a] = _bbox(p)
        box_q = boxes_r.get(b)
        if box_q is None:
            box_q = boxes_r[b] = _bbox(q)
        if _pair_cascade(p, q, box_p, box_q, theta, m, stats):
            matches.append((a + off_a, b + off_b))
    return matches, stats


def _indexed_join(left, right, theta, metric, offsets):
    """Serial indexed join: index candidates, then the pair cascade."""
    from ..index import CorpusIndex

    if not len(left) or not len(right):
        return [], JoinStats()
    m = get_metric(metric)
    index_left = CorpusIndex(left, m)
    index_right = CorpusIndex(right, m)
    pairs, index_stats = index_left.candidate_pairs(index_right, theta)
    matches, stats = join_pairs(
        _points_getter(left), _points_getter(right), pairs, theta, m, offsets
    )
    stats.pairs_total = len(left) * len(right)
    stats.pruned_index = stats.pairs_total - len(pairs)
    stats.details["index"] = index_stats.as_dict()
    return matches, stats


# ----------------------------------------------------------------------
# Top-k closest pairs
# ----------------------------------------------------------------------
def scan_join_topk(
    get_left: Callable[[int], np.ndarray],
    get_right: Callable[[int], np.ndarray],
    pairs,
    k: int,
    metric: Union[str, GroundMetric] = "euclidean",
    *,
    bounds=None,
    ordered: bool = False,
    kth0: float = math.inf,
    sync: Optional[Callable[[float], float]] = None,
    sync_every: int = 64,
) -> List[JoinTopKEntry]:
    """Heap-pruned scan for the ``k`` closest pairs of a pair list.

    The answer is canonical -- the ``k`` smallest entries under the
    total order ``(distance, (a, b))`` -- so retention is
    order-independent and per-chunk heaps merge into the exact serial
    ranking (:func:`merge_join_topk`).  A pair is pruned only when a
    proven lower bound strictly exceeds the current cut
    ``min(local k-th best, external)``: its distance then strictly
    exceeds the final k-th best, so it cannot appear in the answer even
    under distance ties.  ``bounds`` supplies per-pair index lower
    bounds; with ``ordered=True`` they are ascending and the scan
    terminates at the first bound beyond the cut.  ``sync`` exchanges
    the local k-th best with sibling chunks (the engine's shared
    threshold), mirroring :func:`repro.extensions.topk.scan_topk_entries`.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    m = get_metric(metric)
    heap: List[Tuple[float, Tuple[int, int]]] = []  # negated max-heap

    def kth_dist() -> float:
        return -heap[0][0] if len(heap) == k else math.inf

    external = float(kth0)
    boxes_l: dict = {}
    boxes_r: dict = {}
    for count, (a, b) in enumerate(pairs):
        a, b = int(a), int(b)
        if sync is not None and count % sync_every == 0:
            external = min(external, sync(kth_dist()))
        cut = min(kth_dist(), external)
        if bounds is not None and float(bounds[count]) > cut:
            if ordered:
                break
            continue
        p, q = get_left(a), get_right(b)
        if m.distance(p[0], q[0]) > cut or m.distance(p[-1], q[-1]) > cut:
            continue
        if m.coordinate_monotone:
            box_p = boxes_l.get(a)
            if box_p is None:
                box_p = boxes_l[a] = _bbox(p)
            box_q = boxes_r.get(b)
            if box_q is None:
                box_q = boxes_r[b] = _bbox(q)
            if _boxes_apart(box_p, box_q, cut, m):
                continue
        dmat = m.pairwise(p, q)
        h = max(
            directed_hausdorff_matrix(dmat),
            directed_hausdorff_matrix(dmat.T),
        )
        if h > cut:
            continue
        dist = dfd_matrix(dmat)
        heapq.heappush(heap, (-float(dist), (-a, -b)))
        if len(heap) > k:
            heapq.heappop(heap)
    return sorted(
        (-neg_d, (-na, -nb)) for neg_d, (na, nb) in heap
    )


def merge_join_topk(parts, k: int) -> List[JoinTopKEntry]:
    """The k smallest entries across per-chunk answers (exact merge)."""
    return heapq.nsmallest(k, (entry for part in parts for entry in part))


def join_top_k(
    left: Sequence[Union[Trajectory, np.ndarray]],
    right: Sequence[Union[Trajectory, np.ndarray]],
    k: int = 5,
    metric: Union[str, GroundMetric] = "euclidean",
) -> List[JoinTopKEntry]:
    """The ``k`` closest ``(left, right)`` pairs by exact DFD, ascending.

    The serial reference of the engine's corpus top-k join
    (:meth:`repro.engine.MotifEngine.join_top_k`): every pair is
    scanned with the cascade's lower bounds pruning against the
    evolving k-th best distance, and the answer is the canonical
    ``(distance, (a, b))`` ranking -- identical for the indexed,
    sharded and serial paths.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    n_left, n_right = len(left), len(right)
    pair_iter = (
        (a, b) for a in range(n_left) for b in range(n_right)
    )
    return scan_join_topk(
        _points_getter(left), _points_getter(right), list(pair_iter), k, metric
    )


def _bbox(points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    return points.min(axis=0), points.max(axis=0)


def _boxes_apart(box_a, box_b, theta: float, metric: GroundMetric) -> bool:
    """True when the minimum box-to-box distance exceeds theta.

    Per axis, the closest pair of points of two intervals is either the
    facing endpoints (disjoint intervals) or any shared coordinate
    (overlapping intervals); assembling those coordinates minimises
    every per-axis difference simultaneously, which attains the minimum
    box-to-box distance for every coordinate-monotone metric
    (Euclidean, Chebyshev, ...).
    """
    lo_a, hi_a = box_a
    lo_b, hi_b = box_b
    near_a = np.where(hi_a < lo_b, hi_a, np.where(hi_b < lo_a, lo_a, np.maximum(lo_a, lo_b)))
    near_b = np.where(hi_a < lo_b, lo_b, np.where(hi_b < lo_a, hi_b, np.maximum(lo_a, lo_b)))
    return metric.distance(near_a, near_b) > theta
