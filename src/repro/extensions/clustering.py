"""Subtrajectory clustering under the discrete Frechet distance.

The second future-work direction of the paper's conclusion.  Fixed-
length sliding windows of a trajectory are clustered by DFD: two
windows are neighbours when their DFD is at most ``theta`` (decided
with the same filter cascade as the similarity join), and clusters are
the connected components of the neighbour graph, optionally restricted
to components with a minimum population (a lightweight DBSCAN flavour).

Overlapping windows are trivially similar, so windows whose index
ranges overlap are never considered neighbours -- the same non-overlap
rule Problem 1 imposes on the motif.

The module is split so the engine can parallelise it:
:func:`window_starts` / :func:`window_pair_grid` enumerate the
candidate space, the cascade decides the edges, and
:func:`clusters_from_edges` folds any edge set into clusters.
:meth:`repro.engine.MotifEngine.cluster` routes the edge decisions
through the engine's candidate-pair chunks (optionally pruned by a
window-level :class:`~repro.index.CorpusIndex`) and reuses
:func:`clusters_from_edges`, so its answer is identical to this serial
loop's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

import numpy as np

from ..distances.frechet import dfd_decision
from ..distances.ground import GroundMetric, get_metric
from ..distances.hausdorff import directed_hausdorff_matrix
from ..errors import ReproError
from ..trajectory import Trajectory


@dataclass(frozen=True)
class WindowCluster:
    """One cluster: the member windows' start indices."""

    members: tuple
    window_length: int

    def __len__(self) -> int:
        return len(self.members)


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def window_starts(
    n: int, window_length: int, stride: int, theta: float
) -> List[int]:
    """Validated start indices of the sliding windows."""
    if window_length < 2:
        raise ReproError("window_length must be at least 2")
    if stride < 1:
        raise ReproError("stride must be at least 1")
    if theta < 0:
        raise ReproError("theta must be non-negative")
    return list(range(0, n - window_length + 1, stride))


def window_pair_grid(
    starts: Sequence[int], window_length: int
) -> np.ndarray:
    """Non-overlapping window pairs ``(a, b)``, ``a < b``, lex-sorted.

    The candidate space of the clustering problem: overlapping windows
    are trivially similar and therefore excluded, mirroring Problem
    1's non-overlap rule.
    """
    starts_arr = np.asarray(starts, dtype=np.int64)
    n = len(starts_arr)
    if n < 2:
        return np.empty((0, 2), dtype=np.int64)
    a_idx, b_idx = np.triu_indices(n, k=1)
    keep = starts_arr[b_idx] >= starts_arr[a_idx] + window_length
    return np.stack([a_idx[keep], b_idx[keep]], axis=1)


def clusters_from_edges(
    starts: Sequence[int],
    edges: Sequence[Tuple[int, int]],
    window_length: int,
    min_cluster_size: int,
) -> List[WindowCluster]:
    """Connected components of an edge set over window positions.

    ``edges`` must be iterated in the serial discovery order (sorted
    ``(a, b)``) for the union-find evolution -- and hence the cluster
    ordering under size ties -- to match the serial loop exactly.
    """
    uf = _UnionFind(len(starts))
    for a, b in edges:
        uf.union(int(a), int(b))
    groups: dict = {}
    for k, s in enumerate(starts):
        groups.setdefault(uf.find(k), []).append(s)
    clusters = [
        WindowCluster(tuple(sorted(members)), window_length)
        for members in groups.values()
        if len(members) >= min_cluster_size
    ]
    clusters.sort(key=len, reverse=True)
    return clusters


def cluster_subtrajectories(
    trajectory: Union[Trajectory, np.ndarray],
    *,
    window_length: int,
    theta: float,
    stride: int = 1,
    min_cluster_size: int = 2,
    metric: Union[str, GroundMetric, None] = None,
) -> List[WindowCluster]:
    """Cluster sliding windows by DFD-connectivity at threshold theta.

    Returns clusters (largest first) with at least ``min_cluster_size``
    members.
    """
    traj = trajectory if isinstance(trajectory, Trajectory) else Trajectory(
        np.asarray(trajectory, dtype=np.float64)
    )
    m = get_metric(metric, crs=traj.crs)
    starts = window_starts(traj.n, window_length, stride, theta)
    windows = [traj.points[s : s + window_length] for s in starts]
    edges: List[Tuple[int, int]] = []
    for a, b in window_pair_grid(starts, window_length):
        p, q = windows[a], windows[b]
        if m.distance(p[0], q[0]) > theta or m.distance(p[-1], q[-1]) > theta:
            continue
        dmat = m.pairwise(p, q)
        h = max(
            directed_hausdorff_matrix(dmat),
            directed_hausdorff_matrix(dmat.T),
        )
        if h > theta:
            continue
        if dfd_decision(dmat, theta):
            edges.append((int(a), int(b)))
    return clusters_from_edges(starts, edges, window_length, min_cluster_size)
