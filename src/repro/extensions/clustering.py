"""Subtrajectory clustering under the discrete Frechet distance.

The second future-work direction of the paper's conclusion.  Fixed-
length sliding windows of a trajectory are clustered by DFD: two
windows are neighbours when their DFD is at most ``theta`` (decided
with the same filter cascade as the similarity join), and clusters are
the connected components of the neighbour graph, optionally restricted
to components with a minimum population (a lightweight DBSCAN flavour).

Overlapping windows are trivially similar, so windows whose index
ranges overlap are never considered neighbours -- the same non-overlap
rule Problem 1 imposes on the motif.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

import numpy as np

from ..distances.frechet import dfd_decision
from ..distances.ground import GroundMetric, get_metric
from ..distances.hausdorff import directed_hausdorff_matrix
from ..errors import ReproError
from ..trajectory import Trajectory


@dataclass(frozen=True)
class WindowCluster:
    """One cluster: the member windows' start indices."""

    members: tuple
    window_length: int

    def __len__(self) -> int:
        return len(self.members)


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def cluster_subtrajectories(
    trajectory: Union[Trajectory, np.ndarray],
    *,
    window_length: int,
    theta: float,
    stride: int = 1,
    min_cluster_size: int = 2,
    metric: Union[str, GroundMetric, None] = None,
) -> List[WindowCluster]:
    """Cluster sliding windows by DFD-connectivity at threshold theta.

    Returns clusters (largest first) with at least ``min_cluster_size``
    members.
    """
    if window_length < 2:
        raise ReproError("window_length must be at least 2")
    if stride < 1:
        raise ReproError("stride must be at least 1")
    if theta < 0:
        raise ReproError("theta must be non-negative")
    traj = trajectory if isinstance(trajectory, Trajectory) else Trajectory(
        np.asarray(trajectory, dtype=np.float64)
    )
    m = get_metric(metric, crs=traj.crs)
    starts = list(range(0, traj.n - window_length + 1, stride))
    windows = [traj.points[s : s + window_length] for s in starts]
    uf = _UnionFind(len(starts))
    for a in range(len(starts)):
        for b in range(a + 1, len(starts)):
            if starts[b] < starts[a] + window_length:
                continue  # overlapping windows are not neighbours
            p, q = windows[a], windows[b]
            if m.distance(p[0], q[0]) > theta or m.distance(p[-1], q[-1]) > theta:
                continue
            dmat = m.pairwise(p, q)
            h = max(
                directed_hausdorff_matrix(dmat),
                directed_hausdorff_matrix(dmat.T),
            )
            if h > theta:
                continue
            if dfd_decision(dmat, theta):
                uf.union(a, b)
    groups = {}
    for k, s in enumerate(starts):
        groups.setdefault(uf.find(k), []).append(s)
    clusters = [
        WindowCluster(tuple(sorted(members)), window_length)
        for members in groups.values()
        if len(members) >= min_cluster_size
    ]
    clusters.sort(key=len, reverse=True)
    return clusters
