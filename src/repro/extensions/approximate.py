"""Approximate motif discovery (the paper's future-work direction).

The conclusion of the paper names "approximate solutions that trade
exactness for shorter running times" as a promising direction.  The
best-first structure of BTM makes a principled version almost free:
stop as soon as ``(1 + eps) * LB >= bsf`` for the next subset in bound
order.  Every unexpanded subset then satisfies
``dF >= LB >= bsf / (1 + eps)``, so the reported pair is within a
``(1 + eps)`` factor of the optimum -- a certified approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..core.motif import MotifResult, discover_motif
from ..distances.ground import GroundMetric
from ..trajectory import Trajectory


@dataclass(frozen=True)
class ApproximateResult:
    """Motif answer with its approximation certificate."""

    result: MotifResult
    epsilon: float

    @property
    def distance(self) -> float:
        """The reported (achieved) motif distance."""
        return self.result.distance

    @property
    def optimum_lower_bound(self) -> float:
        """Certified lower bound on the true motif distance."""
        return self.result.distance / (1.0 + self.epsilon)


def discover_motif_approximate(
    trajectory: Union[Trajectory, np.ndarray],
    second: Optional[Union[Trajectory, np.ndarray]] = None,
    *,
    min_length: int,
    epsilon: float = 0.1,
    metric: Union[str, GroundMetric, None] = None,
    timeout: Optional[float] = None,
) -> ApproximateResult:
    """(1+eps)-approximate motif via the BTM early stop.

    ``epsilon = 0`` degenerates to the exact search.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    result = discover_motif(
        trajectory,
        second,
        min_length=min_length,
        algorithm="btm",
        metric=metric,
        approx_factor=1.0 + epsilon,
        timeout=timeout,
    )
    return ApproximateResult(result, epsilon)
