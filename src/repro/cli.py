"""Command-line interface.

Subcommands::

    repro-motif discover --dataset geolife --n 500 --min-length 10
    repro-motif discover --input track.csv --algorithm btm --min-length 20
    repro-motif topk --dataset geolife --min-length 10 --k 5 --workers 4
    repro-motif join --dataset truck --count 12 --theta 25 --workers 4
    repro-motif snapshot build --dataset truck --count 12 --output snap/
    repro-motif snapshot inspect snap/
    repro-motif serve --snapshot fleet=snap/ --port 8707 --workers 2
    repro-motif metrics --port 8707 --filter repro_service
    repro-motif bench fig18 --scale quick
    repro-motif analyze src tests benchmarks --format json
    repro-motif datasets
    repro-motif info

``python -m repro ...`` is equivalent.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from pathlib import Path
from typing import List, Optional

from . import __version__
from .analysis.cli import configure as _analyze_configure
from .analysis.cli import run as _analyze_run
from .bench import EXPERIMENTS, SCALES
from .datasets import dataset_names, get_dataset
from .engine import MotifEngine, default_engine
from .trajectory import read_csv, read_json, read_plt


def _engine_for(args: argparse.Namespace):
    """Context manager yielding the engine backing one CLI invocation.

    ``--workers N`` builds a dedicated parallel engine that is closed
    (pool shut down, shared-memory segments unlinked) when the command
    finishes; the default shares the process-wide serial engine (and
    its caches), which is left running.  ``--no-shared-memory`` forces
    the legacy pickled-payload transfer path (a debugging/ops knob for
    hosts with a constrained ``/dev/shm``); answers are identical.
    """
    workers = getattr(args, "workers", 1)
    if workers is None:
        workers = 1
    if workers < 1:
        raise SystemExit("--workers must be at least 1")
    no_shm = bool(getattr(args, "no_shared_memory", False))
    if workers > 1 or no_shm:
        return MotifEngine(  # context manager: closes itself
            workers=workers,
            shared_memory=not no_shm,
            shared_bounds=not no_shm,
        )
    return contextlib.nullcontext(default_engine())


def _load_input(path: str):
    suffix = Path(path).suffix.lower()
    readers = {".plt": read_plt, ".csv": read_csv, ".json": read_json}
    if suffix not in readers:
        raise SystemExit(f"unsupported input format {suffix!r} (use .plt/.csv/.json)")
    return readers[suffix](path)


def _cmd_discover(args: argparse.Namespace) -> int:
    if bool(args.input) == bool(args.dataset):
        raise SystemExit("provide exactly one of --input or --dataset")
    if args.input:
        traj = _load_input(args.input)
        second = _load_input(args.second) if args.second else None
    else:
        gen = get_dataset(args.dataset, seed=args.seed)
        if args.cross:
            traj, second = gen.generate_pair(args.n)
        else:
            traj, second = gen.generate(args.n), None
    options = {}
    if args.tau is not None:
        options["tau"] = args.tau
    if args.timeout is not None:
        options["timeout"] = args.timeout
    with _engine_for(args) as engine:
        result = engine.discover(
            traj, second, min_length=args.min_length,
            algorithm=args.algorithm, **options,
        )
    i, ie, j, je = result.indices
    print(f"motif: S[{i}..{ie}]  ~  {'T' if second is not None else 'S'}[{j}..{je}]")
    print(f"discrete Frechet distance: {result.distance:.6g}")
    first_t = result.first.time_interval
    second_t = result.second.time_interval
    print(f"first:  {result.first.n} points, t=[{first_t[0]:.0f}, {first_t[1]:.0f}]s")
    print(f"second: {result.second.n} points, t=[{second_t[0]:.0f}, {second_t[1]:.0f}]s")
    if args.stats:
        print(result.stats.summary())
    if args.plot:
        from .viz import render_motif, render_trajectory

        print()
        if second is None:
            print(render_motif(result))
        else:
            print(render_trajectory(
                traj, highlights={"A": (result.first.start, result.first.end)}
            ))
            print(render_trajectory(
                second,
                highlights={"B": (result.second.start, result.second.end)},
            ))
    return 0


def _cmd_topk(args: argparse.Namespace) -> int:
    if args.input:
        traj = _load_input(args.input)
    else:
        traj = get_dataset(args.dataset or "geolife", seed=args.seed).generate(args.n)
    with _engine_for(args) as engine:
        ranked = engine.top_k(traj, min_length=args.min_length, k=args.k)
    for motif in ranked:
        i, ie, j, je = motif.indices
        print(f"#{motif.rank}: S[{i}..{ie}] ~ S[{j}..{je}]  "
              f"DFD = {motif.distance:.6g}")
    return 0


def _collection_for_join(paths, dataset, count, n, seed_base):
    if paths:
        return [_load_input(p) for p in paths]
    return [
        get_dataset(dataset or "geolife", seed=seed_base + i).generate(n)
        for i in range(count)
    ]


def _index_arg(value):
    """Map the CLI ``--index`` spelling onto the engine knob."""
    return False if value in (False, "off") else value


def _cmd_join(args: argparse.Namespace) -> int:
    if bool(args.left) != bool(args.right):
        raise SystemExit("provide both --left and --right (or neither, for synthetic)")
    if (args.theta is None) == (args.top_k is None):
        raise SystemExit("provide exactly one of --theta or --top-k")
    left = _collection_for_join(args.left, args.dataset, args.count, args.n, args.seed)
    right = _collection_for_join(
        args.right, args.dataset, args.count, args.n, args.seed + 1000
    )
    workers = getattr(args, "workers", 1)
    index = _index_arg(args.index)
    with _engine_for(args) as engine:
        if args.top_k is not None:
            ranked = engine.join_top_k(
                left, right, k=args.top_k, workers=workers, index=index
            )
            print(f"{len(ranked)} closest pair(s) by DFD")
            for rank, (dist, (a, b)) in enumerate(ranked, start=1):
                print(f"  #{rank}: left[{a}] ~ right[{b}]  DFD = {dist:.6g}")
            return 0
        matches, stats = engine.join(
            left, right, theta=args.theta, workers=workers, index=index
        )
    print(f"{len(matches)} matching pair(s) at theta={args.theta:g} "
          f"({stats.pairs_total} pairs examined)")
    for a, b in matches:
        print(f"  left[{a}] ~ right[{b}]")
    if args.stats:
        print(f"pruned: index={stats.pruned_index} "
              f"endpoint={stats.pruned_endpoint} bbox={stats.pruned_bbox} "
              f"hausdorff={stats.pruned_hausdorff}; exact decisions={stats.decisions}")
        _print_index_stats(stats.details.get("index"))
    return 0


def _print_index_stats(index_stats) -> None:
    """One ``index: ...`` line from an ``IndexStats.as_dict()`` payload.

    ``summary_builds=0`` is the observable signature of a snapshot (or
    warm-cache) hit: the candidate pass ran no simplification DPs.
    """
    if not index_stats:
        return
    rendered = " ".join(f"{k}={v}" for k, v in sorted(index_stats.items()))
    print(f"index: {rendered}")


def _cmd_query(args: argparse.Namespace) -> int:
    if (args.radius is None) == (args.k is None):
        raise SystemExit("provide exactly one of --radius or --k")
    corpus = _collection_for_join(
        args.corpus, args.dataset, args.count, args.n, args.seed
    )
    query = (
        _load_input(args.query) if args.query
        else get_dataset(args.dataset or "geolife",
                         seed=args.seed + 5000).generate(args.n)
    )
    index = _index_arg(args.index)
    with _engine_for(args) as engine:
        if args.k is not None:
            neighbors, stats = engine.knn(query, corpus, k=args.k,
                                          index=index)
            print(f"{len(neighbors)} nearest neighbour(s) by DFD")
            for rank, (dist, i) in enumerate(neighbors, start=1):
                print(f"  #{rank}: corpus[{i}]  DFD = {dist:.6g}")
        else:
            matches, stats = engine.range(query, corpus, args.radius,
                                          index=index)
            print(f"{len(matches)} trajectory(ies) within "
                  f"radius={args.radius:g}")
            for i, dist in matches:
                print(f"  corpus[{i}]  DFD = {dist:.6g}")
    if args.stats:
        _print_index_stats(stats.as_dict())
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    if args.input:
        traj = _load_input(args.input)
    else:
        traj = get_dataset(args.dataset or "figure_eight", seed=args.seed).generate(
            args.n
        )
    with _engine_for(args) as engine:
        out = engine.cluster(
            traj,
            window_length=args.window,
            theta=args.theta,
            stride=args.stride,
            min_cluster_size=args.min_size,
            workers=getattr(args, "workers", 1),
            index=_index_arg(args.index),
            with_stats=args.stats,
        )
    clusters, info = out if args.stats else (out, None)
    if not clusters:
        print("no clusters at this threshold")
    for k, cluster in enumerate(clusters):
        starts = ", ".join(str(s) for s in cluster.members[:8])
        more = ", ..." if len(cluster) > 8 else ""
        print(f"cluster {k}: {len(cluster)} windows at starts [{starts}{more}]")
    if info is not None:
        print(f"windows={info['windows']} pair_grid={info['pairs_total']} "
              f"candidates={info['candidates']}")
        cascade = info.get("cascade")
        if cascade:
            print("cascade: " + " ".join(
                f"{k}={v}" for k, v in sorted(cascade.items())
            ))
        _print_index_stats(info.get("index"))
    return 0


def _collection_for_snapshot(args: argparse.Namespace):
    if args.inputs:
        return [_load_input(p) for p in args.inputs]
    return [
        get_dataset(args.dataset or "geolife", seed=args.seed + i).generate(args.n)
        for i in range(args.count)
    ]


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from .index import CorpusIndex
    from .store import SnapshotError, inspect_snapshot, save_snapshot

    if args.snapshot_command == "inspect":
        try:
            info = inspect_snapshot(args.path, verify=not args.no_verify)
        except SnapshotError as exc:
            raise SystemExit(f"snapshot inspect failed: {exc}") from exc
        print(f"snapshot at {info['path']}")
        print(f"  content_key: {info['content_key']}")
        print(f"  corpus: {info['n']} trajectories, "
              f"{info['dimensions']}-d, metric={info['metric']}")
        if "shards" in info:
            blocks = ", ".join(
                str(s["stop"] - s["start"]) for s in info["shards"]
            )
            print(f"  shards: {len(info['shards'])} ({blocks})")
        else:
            print(f"  simplify: frac={info['simplify_frac']:g} "
                  f"max_points={info['max_simplification_points']}")
        print(f"  arrays: {len(info['arrays'])} files, "
              f"{info['total_bytes']} bytes"
              + (" (digests verified)" if info["verified"] else ""))
        return 0
    # build
    corpus = _collection_for_snapshot(args)
    index = CorpusIndex(
        corpus,
        args.metric,
        simplify_frac=args.simplify_frac,
        max_simplification_points=args.max_simplification_points,
    )
    manifest = save_snapshot(
        index,
        args.output,
        crs=corpus[0].crs,
        trajectory_ids=[t.trajectory_id for t in corpus],
        shards=args.shards,
    )
    print(f"snapshot written to {args.output}")
    print(f"  content_key: {manifest['content_key']}")
    if "shards" in manifest:
        blocks = ", ".join(
            str(s["stop"] - s["start"]) for s in manifest["shards"]
        )
        print(f"  corpus: {manifest['n']} trajectories in "
              f"{len(manifest['shards'])} shards ({blocks})")
    else:
        total = sum(spec["nbytes"] for spec in manifest["arrays"].values())
        print(f"  corpus: {manifest['n']} trajectories, {total} array bytes")
    return 0


def _parse_snapshot_mounts(specs):
    mounts = []
    for spec in specs or []:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise SystemExit(
                f"bad --snapshot {spec!r}; expected NAME=PATH"
            )
        mounts.append((name, path))
    return mounts


def _cmd_serve(args: argparse.Namespace) -> int:
    from . import obs
    from .service import MotifService, ServiceFleet, serve, serve_fleet
    from .store import SnapshotError

    if args.trace_path:
        # Before any fork, so fleet workers and pool children inherit
        # the sink and their spans interleave into one JSONL file.
        obs.configure(trace_path=args.trace_path)
    service_kwargs = dict(
        workers=args.workers,
        service_workers=args.service_workers,
        max_pending=args.queue_limit,
        coalesce=not args.no_coalesce,
        snapshot_watch_interval=args.reload_interval,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        slow_query_threshold=args.slow_query_threshold,
    )
    mounts = _parse_snapshot_mounts(args.snapshot)
    if args.fleet > 1:
        fleet = ServiceFleet(
            workers=args.fleet,
            host=args.host,
            port=args.port,
            snapshots=[(name, path, args.verify) for name, path in mounts],
            service_kwargs=service_kwargs,
        )
        serve_fleet(fleet)
        return 0
    service = MotifService(**service_kwargs)
    for name, path in mounts:
        try:
            info = service.load_snapshot(name, path, verify=args.verify)
        except SnapshotError as exc:
            raise SystemExit(f"cannot load snapshot {name!r}: {exc}") from exc
        print(f"loaded snapshot {name!r}: {info['n']} trajectories "
              f"({info['content_key'][:12]}...) from {path}")
    print(f"serving on http://{args.host}:{args.port} "
          f"(engine workers={args.workers}, "
          f"service workers={args.service_workers}, "
          f"queue limit={args.queue_limit}, "
          f"coalescing={'off' if args.no_coalesce else 'on'})")
    serve(service, host=args.host, port=args.port)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    names = list(EXPERIMENTS) if args.experiment == ["all"] else args.experiment
    for name in names:
        if name not in EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
            )
    for name in names:
        table = EXPERIMENTS[name](scale=args.scale, seed=args.seed)
        print(table.render())
        if args.chart:
            charts = table.charts()
            if charts:
                print()
                print(charts)
        print()
        if args.output:
            out = Path(args.output) / f"{name}.json"
            table.save_json(out)
            print(f"  saved {out}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient
    from .service.protocol import ServiceError

    client = ServiceClient(args.host, args.port, retries=0)
    try:
        text = client.metrics_text()
    except ServiceError as exc:
        raise SystemExit(str(exc)) from exc
    if args.filter:
        text = "\n".join(
            line for line in text.splitlines() if args.filter in line
        )
    try:
        print(text)
    except BrokenPipeError:  # e.g. `repro-motif metrics | head`
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
    return 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    for name in dataset_names():
        gen = get_dataset(name)
        print(f"{name:14s} {gen.description}")
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    print(f"repro {__version__} -- motif discovery with discrete Frechet distance")
    print("reproduction of Tang, Yiu, Mouratidis, Wang (EDBT 2017)")
    print("algorithms: brute_dp, btm, gtm, gtm_star (engine: --workers N)")
    print(f"datasets:   {', '.join(dataset_names())}")
    print(f"experiments: {', '.join(EXPERIMENTS)}")
    return 0


def _add_trace_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", action="store_true",
                   help="record observability spans for this run and "
                        "print the trace tree afterwards")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-motif",
        description="Trajectory motif discovery with the discrete Frechet distance",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("discover", help="discover a motif")
    p.add_argument("--input", help="trajectory file (.plt/.csv/.json)")
    p.add_argument("--second", help="second trajectory file (cross-trajectory variant)")
    p.add_argument("--dataset", choices=dataset_names(), help="synthetic dataset name")
    p.add_argument("--n", type=int, default=500, help="synthetic trajectory length")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cross", action="store_true",
                   help="cross-trajectory variant on a generated pair")
    p.add_argument("--min-length", type=int, required=True, help="the paper's xi")
    p.add_argument("--algorithm", default="gtm",
                   choices=["brute", "btm", "gtm", "gtm_star"])
    p.add_argument("--tau", type=int, help="group size for gtm/gtm_star")
    p.add_argument("--timeout", type=float, help="wall-clock budget (seconds)")
    p.add_argument("--workers", type=int, default=1,
                   help="partition the search across N worker processes")
    p.add_argument("--no-shared-memory", action="store_true",
                   help="ship dG and bound arrays through the pool pipe "
                        "instead of shared-memory segments (debug/ops knob)")
    p.add_argument("--stats", action="store_true", help="print search statistics")
    p.add_argument("--plot", action="store_true",
                   help="render the motif as ASCII art")
    _add_trace_flag(p)
    p.set_defaults(func=_cmd_discover)

    p = sub.add_parser("topk", help="top-k motif discovery")
    p.add_argument("--input", help="trajectory file (.plt/.csv/.json)")
    p.add_argument("--dataset", choices=dataset_names())
    p.add_argument("--n", type=int, default=400)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--min-length", type=int, required=True)
    p.add_argument("--k", type=int, default=5)
    p.add_argument("--workers", type=int, default=1,
                   help="partition the top-k scan across N worker processes")
    p.add_argument("--no-shared-memory", action="store_true",
                   help="ship dG and bound arrays through the pool pipe "
                        "instead of shared-memory segments (debug/ops knob)")
    _add_trace_flag(p)
    p.set_defaults(func=_cmd_topk)

    p = sub.add_parser("join", help="DFD similarity join between two collections")
    p.add_argument("--left", nargs="+",
                   help="left trajectory files (.plt/.csv/.json)")
    p.add_argument("--right", nargs="+",
                   help="right trajectory files (.plt/.csv/.json)")
    p.add_argument("--dataset", choices=dataset_names(),
                   help="synthetic dataset when no files are given")
    p.add_argument("--count", type=int, default=8,
                   help="synthetic trajectories per side")
    p.add_argument("--n", type=int, default=120,
                   help="synthetic trajectory length")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--theta", type=float, help="DFD threshold")
    p.add_argument("--top-k", type=int,
                   help="report the k closest pairs instead of a threshold join")
    p.add_argument("--workers", type=int, default=1,
                   help="shard the candidate pairs across N worker processes")
    p.add_argument("--index", nargs="?", const="grid", default="off",
                   choices=["off", "grid", "tree"],
                   help="prune candidate pairs with the corpus proximity "
                        "index before the filter cascade (same matches); "
                        "'tree' walks the hierarchical dual traversal "
                        "instead of the flat pair grid")
    p.add_argument("--stats", action="store_true",
                   help="print filter-cascade statistics")
    _add_trace_flag(p)
    p.set_defaults(func=_cmd_join)

    p = sub.add_parser("query",
                       help="range / k-nearest-neighbour corpus search")
    p.add_argument("--query", help="query trajectory file (.plt/.csv/.json)")
    p.add_argument("--corpus", nargs="+",
                   help="corpus trajectory files (.plt/.csv/.json)")
    p.add_argument("--dataset", choices=dataset_names())
    p.add_argument("--count", type=int, default=8,
                   help="synthetic corpus size when no --corpus is given")
    p.add_argument("--n", type=int, default=120)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--radius", type=float,
                   help="report every trajectory within this exact DFD")
    p.add_argument("--k", type=int,
                   help="report the k nearest trajectories instead")
    p.add_argument("--index", nargs="?", const="tree", default="tree",
                   choices=["off", "grid", "tree"],
                   help="'tree' (default) prunes with the hierarchical "
                        "index; 'off' scans brute-force (same answer)")
    p.add_argument("--stats", action="store_true",
                   help="print the traversal's IndexStats accounting")
    _add_trace_flag(p)
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("cluster", help="DFD subtrajectory clustering")
    p.add_argument("--input", help="trajectory file (.plt/.csv/.json)")
    p.add_argument("--dataset", choices=dataset_names())
    p.add_argument("--n", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--window", type=int, required=True, help="window length")
    p.add_argument("--theta", type=float, required=True, help="DFD threshold")
    p.add_argument("--stride", type=int, default=1)
    p.add_argument("--min-size", type=int, default=2)
    p.add_argument("--workers", type=int, default=1,
                   help="shard the window-pair cascade across N worker processes")
    p.add_argument("--index", nargs="?", const="grid", default="off",
                   choices=["off", "grid", "tree"],
                   help="prune window pairs with the corpus proximity "
                        "index ('tree' for the hierarchical traversal)")
    p.add_argument("--stats", action="store_true",
                   help="print window/candidate counts and index pruning stats")
    _add_trace_flag(p)
    p.set_defaults(func=_cmd_cluster)

    p = sub.add_parser("snapshot",
                       help="build or inspect persisted corpus-index snapshots")
    snap_sub = p.add_subparsers(dest="snapshot_command", required=True)
    b = snap_sub.add_parser("build", help="index a corpus and write a snapshot")
    b.add_argument("--output", required=True, help="snapshot directory")
    b.add_argument("--inputs", nargs="+",
                   help="trajectory files (.plt/.csv/.json)")
    b.add_argument("--dataset", choices=dataset_names(),
                   help="synthetic dataset when no files are given")
    b.add_argument("--count", type=int, default=8,
                   help="synthetic trajectories to generate")
    b.add_argument("--n", type=int, default=120,
                   help="synthetic trajectory length")
    b.add_argument("--seed", type=int, default=0)
    b.add_argument("--metric", default="euclidean",
                   help="ground metric the summaries are computed under")
    b.add_argument("--simplify-frac", type=float, default=0.05)
    b.add_argument("--max-simplification-points", type=int, default=8)
    b.add_argument("--shards", type=int, default=1,
                   help="split the corpus into K contiguous shard snapshots "
                        "behind one shard-set manifest (serving layers "
                        "scatter corpus queries across shards)")
    b.set_defaults(func=_cmd_snapshot)
    i = snap_sub.add_parser("inspect", help="validate and describe a snapshot")
    i.add_argument("path", help="snapshot directory")
    i.add_argument("--no-verify", action="store_true",
                   help="skip the per-array SHA-1 verification (size checks only)")
    i.set_defaults(func=_cmd_snapshot)

    p = sub.add_parser("serve",
                       help="run the persistent motif-query service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8707)
    p.add_argument("--snapshot", action="append", metavar="NAME=PATH",
                   help="load a snapshot directory under NAME (repeatable)")
    p.add_argument("--verify", action="store_true",
                   help="digest-verify snapshots while loading")
    p.add_argument("--workers", type=int, default=1,
                   help="engine worker processes")
    p.add_argument("--service-workers", type=int, default=2,
                   help="serving threads executing admitted requests")
    p.add_argument("--queue-limit", type=int, default=32,
                   help="admission bound; overflow answers HTTP 429")
    p.add_argument("--no-coalesce", action="store_true",
                   help="give every request its own computation (disable "
                        "in-flight sharing of identical queries)")
    p.add_argument("--fleet", type=int, default=1,
                   help="pre-fork this many serving processes sharing one "
                        "listening socket (and one snapshot page cache)")
    p.add_argument("--reload-interval", type=float, default=None,
                   help="poll loaded snapshots every S seconds and hot-swap "
                        "rebuilt ones without dropping in-flight requests")
    p.add_argument("--breaker-threshold", type=int, default=5,
                   help="consecutive infrastructure failures before the "
                        "circuit breaker opens and sheds load with 503")
    p.add_argument("--breaker-cooldown", type=float, default=5.0,
                   help="seconds the open breaker sheds load before "
                        "admitting a half-open probe request")
    p.add_argument("--slow-query-threshold", type=float, default=None,
                   help="log a WARNING with the span tree for requests "
                        "whose execution exceeds this many seconds")
    p.add_argument("--trace-path", default=None,
                   help="append span/event records (JSONL) from every "
                        "serving process to this file")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("metrics",
                       help="scrape a running service's /metrics endpoint")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8707)
    p.add_argument("--filter",
                   help="print only lines containing this substring")
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser("bench", help="run experiment(s) and print tables")
    p.add_argument("experiment", nargs="+",
                   help=f"experiment id(s) or 'all'; known: {', '.join(EXPERIMENTS)}")
    p.add_argument("--scale", default="quick", choices=sorted(SCALES))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", help="directory for JSON result files")
    p.add_argument("--chart", action="store_true",
                   help="render ASCII charts of numeric series")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "analyze",
        help="run the project-invariant static analyzer (RPR0xx rules)",
    )
    _analyze_configure(p)
    p.set_defaults(func=_analyze_run)

    p = sub.add_parser("datasets", help="list synthetic datasets")
    p.set_defaults(func=_cmd_datasets)

    p = sub.add_parser("info", help="package summary")
    p.set_defaults(func=_cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "trace", False):
        from . import obs

        # The tree below holds this process's spans; pool-worker spans
        # land in the children's rings (point REPRO_TRACE_PATH at a
        # file to capture the cross-process view).
        trace_id = obs.start_trace()
        try:
            code = args.func(args)
        finally:
            print()
            print(f"trace {trace_id}:")
            print(obs.format_trace(obs.recent_records(trace_id)))
            obs.clear_trace()
        return code
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
