"""Command-line interface.

Subcommands::

    repro-motif discover --dataset geolife --n 500 --min-length 10
    repro-motif discover --input track.csv --algorithm btm --min-length 20
    repro-motif topk --dataset geolife --min-length 10 --k 5 --workers 4
    repro-motif join --dataset truck --count 12 --theta 25 --workers 4
    repro-motif bench fig18 --scale quick
    repro-motif datasets
    repro-motif info

``python -m repro ...`` is equivalent.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path
from typing import List, Optional

from . import __version__
from .bench import EXPERIMENTS, SCALES
from .datasets import dataset_names, get_dataset
from .engine import MotifEngine, default_engine
from .trajectory import read_csv, read_json, read_plt


def _engine_for(args: argparse.Namespace):
    """Context manager yielding the engine backing one CLI invocation.

    ``--workers N`` builds a dedicated parallel engine that is closed
    (pool shut down, shared-memory segments unlinked) when the command
    finishes; the default shares the process-wide serial engine (and
    its caches), which is left running.  ``--no-shared-memory`` forces
    the legacy pickled-payload transfer path (a debugging/ops knob for
    hosts with a constrained ``/dev/shm``); answers are identical.
    """
    workers = getattr(args, "workers", 1)
    if workers is None:
        workers = 1
    if workers < 1:
        raise SystemExit("--workers must be at least 1")
    no_shm = bool(getattr(args, "no_shared_memory", False))
    if workers > 1 or no_shm:
        return MotifEngine(  # context manager: closes itself
            workers=workers,
            shared_memory=not no_shm,
            shared_bounds=not no_shm,
        )
    return contextlib.nullcontext(default_engine())


def _load_input(path: str):
    suffix = Path(path).suffix.lower()
    readers = {".plt": read_plt, ".csv": read_csv, ".json": read_json}
    if suffix not in readers:
        raise SystemExit(f"unsupported input format {suffix!r} (use .plt/.csv/.json)")
    return readers[suffix](path)


def _cmd_discover(args: argparse.Namespace) -> int:
    if bool(args.input) == bool(args.dataset):
        raise SystemExit("provide exactly one of --input or --dataset")
    if args.input:
        traj = _load_input(args.input)
        second = _load_input(args.second) if args.second else None
    else:
        gen = get_dataset(args.dataset, seed=args.seed)
        if args.cross:
            traj, second = gen.generate_pair(args.n)
        else:
            traj, second = gen.generate(args.n), None
    options = {}
    if args.tau is not None:
        options["tau"] = args.tau
    if args.timeout is not None:
        options["timeout"] = args.timeout
    with _engine_for(args) as engine:
        result = engine.discover(
            traj, second, min_length=args.min_length,
            algorithm=args.algorithm, **options,
        )
    i, ie, j, je = result.indices
    print(f"motif: S[{i}..{ie}]  ~  {'T' if second is not None else 'S'}[{j}..{je}]")
    print(f"discrete Frechet distance: {result.distance:.6g}")
    first_t = result.first.time_interval
    second_t = result.second.time_interval
    print(f"first:  {result.first.n} points, t=[{first_t[0]:.0f}, {first_t[1]:.0f}]s")
    print(f"second: {result.second.n} points, t=[{second_t[0]:.0f}, {second_t[1]:.0f}]s")
    if args.stats:
        print(result.stats.summary())
    if args.plot:
        from .viz import render_motif, render_trajectory

        print()
        if second is None:
            print(render_motif(result))
        else:
            print(render_trajectory(
                traj, highlights={"A": (result.first.start, result.first.end)}
            ))
            print(render_trajectory(
                second,
                highlights={"B": (result.second.start, result.second.end)},
            ))
    return 0


def _cmd_topk(args: argparse.Namespace) -> int:
    if args.input:
        traj = _load_input(args.input)
    else:
        traj = get_dataset(args.dataset or "geolife", seed=args.seed).generate(args.n)
    with _engine_for(args) as engine:
        ranked = engine.top_k(traj, min_length=args.min_length, k=args.k)
    for motif in ranked:
        i, ie, j, je = motif.indices
        print(f"#{motif.rank}: S[{i}..{ie}] ~ S[{j}..{je}]  "
              f"DFD = {motif.distance:.6g}")
    return 0


def _collection_for_join(paths, dataset, count, n, seed_base):
    if paths:
        return [_load_input(p) for p in paths]
    return [
        get_dataset(dataset or "geolife", seed=seed_base + i).generate(n)
        for i in range(count)
    ]


def _cmd_join(args: argparse.Namespace) -> int:
    if bool(args.left) != bool(args.right):
        raise SystemExit("provide both --left and --right (or neither, for synthetic)")
    if (args.theta is None) == (args.top_k is None):
        raise SystemExit("provide exactly one of --theta or --top-k")
    left = _collection_for_join(args.left, args.dataset, args.count, args.n, args.seed)
    right = _collection_for_join(
        args.right, args.dataset, args.count, args.n, args.seed + 1000
    )
    workers = getattr(args, "workers", 1)
    with _engine_for(args) as engine:
        if args.top_k is not None:
            ranked = engine.join_top_k(
                left, right, k=args.top_k, workers=workers, index=args.index
            )
            print(f"{len(ranked)} closest pair(s) by DFD")
            for rank, (dist, (a, b)) in enumerate(ranked, start=1):
                print(f"  #{rank}: left[{a}] ~ right[{b}]  DFD = {dist:.6g}")
            return 0
        matches, stats = engine.join(
            left, right, theta=args.theta, workers=workers, index=args.index
        )
    print(f"{len(matches)} matching pair(s) at theta={args.theta:g} "
          f"({stats.pairs_total} pairs examined)")
    for a, b in matches:
        print(f"  left[{a}] ~ right[{b}]")
    if args.stats:
        print(f"pruned: index={stats.pruned_index} "
              f"endpoint={stats.pruned_endpoint} bbox={stats.pruned_bbox} "
              f"hausdorff={stats.pruned_hausdorff}; exact decisions={stats.decisions}")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    if args.input:
        traj = _load_input(args.input)
    else:
        traj = get_dataset(args.dataset or "figure_eight", seed=args.seed).generate(
            args.n
        )
    with _engine_for(args) as engine:
        clusters = engine.cluster(
            traj,
            window_length=args.window,
            theta=args.theta,
            stride=args.stride,
            min_cluster_size=args.min_size,
            workers=getattr(args, "workers", 1),
            index=args.index,
        )
    if not clusters:
        print("no clusters at this threshold")
        return 0
    for k, cluster in enumerate(clusters):
        starts = ", ".join(str(s) for s in cluster.members[:8])
        more = ", ..." if len(cluster) > 8 else ""
        print(f"cluster {k}: {len(cluster)} windows at starts [{starts}{more}]")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    names = list(EXPERIMENTS) if args.experiment == ["all"] else args.experiment
    for name in names:
        if name not in EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
            )
    for name in names:
        table = EXPERIMENTS[name](scale=args.scale, seed=args.seed)
        print(table.render())
        if args.chart:
            charts = table.charts()
            if charts:
                print()
                print(charts)
        print()
        if args.output:
            out = Path(args.output) / f"{name}.json"
            table.save_json(out)
            print(f"  saved {out}")
    return 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    for name in dataset_names():
        gen = get_dataset(name)
        print(f"{name:14s} {gen.description}")
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    print(f"repro {__version__} -- motif discovery with discrete Frechet distance")
    print("reproduction of Tang, Yiu, Mouratidis, Wang (EDBT 2017)")
    print("algorithms: brute_dp, btm, gtm, gtm_star (engine: --workers N)")
    print(f"datasets:   {', '.join(dataset_names())}")
    print(f"experiments: {', '.join(EXPERIMENTS)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-motif",
        description="Trajectory motif discovery with the discrete Frechet distance",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("discover", help="discover a motif")
    p.add_argument("--input", help="trajectory file (.plt/.csv/.json)")
    p.add_argument("--second", help="second trajectory file (cross-trajectory variant)")
    p.add_argument("--dataset", choices=dataset_names(), help="synthetic dataset name")
    p.add_argument("--n", type=int, default=500, help="synthetic trajectory length")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cross", action="store_true",
                   help="cross-trajectory variant on a generated pair")
    p.add_argument("--min-length", type=int, required=True, help="the paper's xi")
    p.add_argument("--algorithm", default="gtm",
                   choices=["brute", "btm", "gtm", "gtm_star"])
    p.add_argument("--tau", type=int, help="group size for gtm/gtm_star")
    p.add_argument("--timeout", type=float, help="wall-clock budget (seconds)")
    p.add_argument("--workers", type=int, default=1,
                   help="partition the search across N worker processes")
    p.add_argument("--no-shared-memory", action="store_true",
                   help="ship dG and bound arrays through the pool pipe "
                        "instead of shared-memory segments (debug/ops knob)")
    p.add_argument("--stats", action="store_true", help="print search statistics")
    p.add_argument("--plot", action="store_true",
                   help="render the motif as ASCII art")
    p.set_defaults(func=_cmd_discover)

    p = sub.add_parser("topk", help="top-k motif discovery")
    p.add_argument("--input", help="trajectory file (.plt/.csv/.json)")
    p.add_argument("--dataset", choices=dataset_names())
    p.add_argument("--n", type=int, default=400)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--min-length", type=int, required=True)
    p.add_argument("--k", type=int, default=5)
    p.add_argument("--workers", type=int, default=1,
                   help="partition the top-k scan across N worker processes")
    p.add_argument("--no-shared-memory", action="store_true",
                   help="ship dG and bound arrays through the pool pipe "
                        "instead of shared-memory segments (debug/ops knob)")
    p.set_defaults(func=_cmd_topk)

    p = sub.add_parser("join", help="DFD similarity join between two collections")
    p.add_argument("--left", nargs="+",
                   help="left trajectory files (.plt/.csv/.json)")
    p.add_argument("--right", nargs="+",
                   help="right trajectory files (.plt/.csv/.json)")
    p.add_argument("--dataset", choices=dataset_names(),
                   help="synthetic dataset when no files are given")
    p.add_argument("--count", type=int, default=8,
                   help="synthetic trajectories per side")
    p.add_argument("--n", type=int, default=120,
                   help="synthetic trajectory length")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--theta", type=float, help="DFD threshold")
    p.add_argument("--top-k", type=int,
                   help="report the k closest pairs instead of a threshold join")
    p.add_argument("--workers", type=int, default=1,
                   help="shard the candidate pairs across N worker processes")
    p.add_argument("--index", action="store_true",
                   help="prune candidate pairs with the corpus proximity "
                        "index before the filter cascade (same matches)")
    p.add_argument("--stats", action="store_true",
                   help="print filter-cascade statistics")
    p.set_defaults(func=_cmd_join)

    p = sub.add_parser("cluster", help="DFD subtrajectory clustering")
    p.add_argument("--input", help="trajectory file (.plt/.csv/.json)")
    p.add_argument("--dataset", choices=dataset_names())
    p.add_argument("--n", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--window", type=int, required=True, help="window length")
    p.add_argument("--theta", type=float, required=True, help="DFD threshold")
    p.add_argument("--stride", type=int, default=1)
    p.add_argument("--min-size", type=int, default=2)
    p.add_argument("--workers", type=int, default=1,
                   help="shard the window-pair cascade across N worker processes")
    p.add_argument("--index", action="store_true",
                   help="prune window pairs with the corpus proximity index")
    p.set_defaults(func=_cmd_cluster)

    p = sub.add_parser("bench", help="run experiment(s) and print tables")
    p.add_argument("experiment", nargs="+",
                   help=f"experiment id(s) or 'all'; known: {', '.join(EXPERIMENTS)}")
    p.add_argument("--scale", default="quick", choices=sorted(SCALES))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", help="directory for JSON result files")
    p.add_argument("--chart", action="store_true",
                   help="render ASCII charts of numeric series")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("datasets", help="list synthetic datasets")
    p.set_defaults(func=_cmd_datasets)

    p = sub.add_parser("info", help="package summary")
    p.set_defaults(func=_cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
