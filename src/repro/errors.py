"""Exception hierarchy for the :mod:`repro` package.

Keeping a small, explicit hierarchy lets callers distinguish user errors
(bad trajectories, infeasible queries) from internal invariant violations
without matching on message strings.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class TrajectoryError(ReproError, ValueError):
    """Raised when trajectory data is malformed.

    Examples: non-finite coordinates, timestamps that are not strictly
    ascending, or a point array with the wrong dimensionality.
    """


class InfeasibleQueryError(ReproError, ValueError):
    """Raised when a motif query cannot have any valid answer.

    The single-trajectory motif problem requires two non-overlapping
    subtrajectories, each spanning more than ``min_length`` steps, so a
    trajectory must contain at least ``2 * min_length + 4`` points.  The
    cross-trajectory variant needs ``min_length + 2`` points per input.
    """


class DatasetError(ReproError, ValueError):
    """Raised for unknown dataset names or invalid generator parameters."""


class WorkerCrashError(ReproError, RuntimeError):
    """Raised when pool workers keep dying and re-dispatch gives up.

    The executor's crash-safe dispatcher rebuilds a broken pool and
    re-runs only the unfinished tasks; after ``max_dispatch_attempts``
    consecutive pool losses it raises this instead of retrying forever.
    Deliberately *not* an :class:`OSError`: the fork/pipe-failure
    fallback (which silently degrades to inline execution) must not
    swallow a systematically crashing workload.
    """

