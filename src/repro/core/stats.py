"""Search instrumentation shared by every motif algorithm.

The paper's pruning-effectiveness experiments (Figures 13-15) report how
many candidate subsets each bound class eliminated and how many required
an exact DFD computation.  :class:`SearchStats` collects those counters
plus timing and an analytic space model so the benchmark harness can
regenerate the figures without re-instrumenting each algorithm.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class SearchStats:
    """Counters, timings and space accounting for one motif search."""

    algorithm: str = ""
    mode: str = ""
    n_rows: int = 0
    n_cols: int = 0
    xi: int = 0

    #: Total number of candidate subsets CS_{i,j} in the search space.
    subsets_total: int = 0
    #: Subsets eliminated by each bound class (paper Figure 15 breakdown).
    pruned_by_cell: int = 0
    pruned_by_cross: int = 0
    pruned_by_band: int = 0
    #: Subsets that needed the exact shared-DFD dynamic program.
    subsets_expanded: int = 0
    #: Interior DP cells actually expanded across all subsets.
    cells_expanded: int = 0
    #: DP cells skipped via the end-cross bound (Eq. 9 pruning).
    cells_killed: int = 0
    #: Candidate pairs whose exact DFD value was inspected.
    candidates_checked: int = 0
    #: Times the best-so-far improved.
    bsf_updates: int = 0

    #: Engine chunk-scan work (parallel distance phase).  Kept separate
    #: from the serial counters above so the witness-resolution pass
    #: does not double-count the subset space in the paper figures.
    scan_subsets_expanded: int = 0
    scan_cells_expanded: int = 0

    #: How many times a ground oracle was *built* from trajectory points
    #: for this search (0 when it came from a cache or shared memory).
    ground_builds: int = 0
    #: Where the ground oracle came from: "dense" / "lazy" (built from
    #: points), "shared_memory" (attached to a parent-published dG
    #: segment), or "" when the search ran on a caller-supplied oracle.
    oracle_source: str = ""

    #: Group-level counters (GTM / GTM*): per-level survivor counts.
    group_levels: Dict[int, int] = field(default_factory=dict)
    group_pairs_considered: int = 0
    group_pairs_pruned_pattern: int = 0
    group_pairs_pruned_glb: int = 0
    gub_tightenings: int = 0

    #: Wall-clock seconds per phase.
    time_total: float = 0.0
    time_precompute: float = 0.0
    time_bounds: float = 0.0
    time_sort: float = 0.0
    time_dp: float = 0.0
    time_grouping: float = 0.0

    #: Analytic peak-space model in bytes (dominant allocations).
    space_bytes: int = 0

    # ------------------------------------------------------------------
    @property
    def subsets_pruned(self) -> int:
        """Subsets eliminated without an exact DFD computation."""
        return self.pruned_by_cell + self.pruned_by_cross + self.pruned_by_band

    @property
    def pruning_ratio(self) -> float:
        """Fraction of subsets pruned (the y-axis of Figures 13a/14a)."""
        if self.subsets_total == 0:
            return 0.0
        return self.subsets_pruned / self.subsets_total

    def breakdown(self) -> Dict[str, float]:
        """Fractions per Figure 15: cell / cross / band / exact DFD."""
        total = max(self.subsets_total, 1)
        return {
            "LBcell": self.pruned_by_cell / total,
            "LBcross": self.pruned_by_cross / total,
            "LBband": self.pruned_by_band / total,
            "DFD": self.subsets_expanded / total,
        }

    def space_mb(self) -> float:
        """Analytic peak space in megabytes (Figure 19's y-axis)."""
        return self.space_bytes / (1024.0 * 1024.0)

    def merge_group_stats(self, other: "SearchStats") -> None:
        """Fold a sub-search's counters into this one (GTM phase 2)."""
        self.subsets_total += other.subsets_total
        self.pruned_by_cell += other.pruned_by_cell
        self.pruned_by_cross += other.pruned_by_cross
        self.pruned_by_band += other.pruned_by_band
        self.subsets_expanded += other.subsets_expanded
        self.cells_expanded += other.cells_expanded
        self.cells_killed += other.cells_killed
        self.candidates_checked += other.candidates_checked
        self.bsf_updates += other.bsf_updates
        self.time_bounds += other.time_bounds
        self.time_sort += other.time_sort
        self.time_dp += other.time_dp
        self.space_bytes = max(self.space_bytes, other.space_bytes)

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"[{self.algorithm}] n={self.n_rows}x{self.n_cols} xi={self.xi} "
            f"subsets={self.subsets_total} pruned={self.pruning_ratio:.1%} "
            f"dfd={self.subsets_expanded} cells={self.cells_expanded} "
            f"time={self.time_total:.3f}s space={self.space_mb():.1f}MB"
        )


class PhaseTimer:
    """Context helper accumulating elapsed seconds onto a stats field."""

    def __init__(self, stats: SearchStats, attr: str) -> None:
        self._stats = stats
        self._attr = attr
        self._start: Optional[float] = None

    def __enter__(self) -> "PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - (self._start or time.perf_counter())
        setattr(self._stats, self._attr, getattr(self._stats, self._attr) + elapsed)
