"""GTM* -- the space-efficient GTM variant (paper Section 5.5).

Three ideas reduce the space complexity to ``O(max{(n/tau)^2, n})``:

(i)   ground distances are computed on-the-fly (no precomputed ``dG``
      matrix) through a :class:`~repro.distances.ground.LazyGroundMatrix`
      with a bounded row cache;
(ii)  the DFD dynamic program keeps only two rows at a time (the scalar
      kernel in :mod:`repro.core.dp` already does);
(iii) the grouping loop runs exactly **once** at the configured ``tau``
      instead of halving, so only one ``(n/tau)^2`` pair of block
      matrices ever exists.

Because only one grouping level prunes, the number of surviving group
pairs ``c'`` is expected to exceed GTM's ``c`` (Section 5.5), trading
time for space -- exactly the behaviour Figures 18-19 report.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional, Tuple

import numpy as np

from ..distances.ground import LazyGroundMatrix
from .bounds import BoundTables, relaxed_subset_bounds_for_pairs
from .btm import run_best_first
from .brute import MotifTimeout
from .dp import Best
from .grouping import (
    GroupBoundTables,
    GroupLevel,
    feasible_group_pairs,
    group_dfd_bounds,
    pattern_bounds_for_pairs,
)
from .gtm import expand_pairs_to_subsets
from .problem import SearchSpace
from .stats import PhaseTimer, SearchStats


class GTMStar:
    """Space-efficient grouping-based motif discovery (Section 5.5).

    Parameters
    ----------
    tau:
        Group size for the single grouping pass.
    use_gub:
        Disable to ablate ``GUB_DFD`` bsf-tightening.
    timeout:
        Optional wall-clock budget in seconds.
    """

    name = "gtm_star"

    #: Optional ``(level, space, pairs) -> (i_idx, j_idx)`` hook; same
    #: contract as :attr:`repro.core.gtm.GTM.subset_expander`.  The
    #: engine wires a per-``(level, space)`` expansion cache through
    #: here so repeated searches over the same corpus expand each
    #: surviving pair set once.  ``None`` means
    #: :func:`~repro.core.gtm.expand_pairs_to_subsets`.
    subset_expander = None

    def __init__(
        self,
        tau: int = 32,
        use_gub: bool = True,
        cache_rows: int = 256,
        timeout: Optional[float] = None,
    ) -> None:
        if tau < 2:
            raise ValueError("tau must be at least 2")
        if cache_rows < 1:
            raise ValueError("cache_rows must be at least 1")
        self.tau = tau
        self.use_gub = use_gub
        self.cache_rows = cache_rows
        self.timeout = timeout

    def search(
        self,
        oracle,
        space: SearchSpace,
        stats: Optional[SearchStats] = None,
        bsf0: float = math.inf,
        best0: Best = None,
    ) -> Tuple[float, Best]:
        """Return ``(distance, (i, ie, j, je))`` of the motif.

        ``oracle`` should be a :class:`LazyGroundMatrix`; a dense oracle
        also works (the space benefit is then forfeited).  ``bsf0`` /
        ``best0`` seed the search with an external threshold (see
        :meth:`repro.core.btm.BTM.search`); a correct seed only reduces
        work, never changes the answer.
        """
        stats = stats if stats is not None else SearchStats()
        stats.algorithm = self.name
        started_at = time.perf_counter()
        deadline = None if self.timeout is None else started_at + self.timeout
        tau = min(self.tau, max(2, space.n_rows // 2))

        with PhaseTimer(stats, "time_grouping"):
            level = self._build_level(oracle, space, tau)
            pairs = feasible_group_pairs(level, space)
            tables_g = GroupBoundTables.build(level, space.xi)
            lbs = pattern_bounds_for_pairs(level, tables_g, pairs)
            order = np.argsort(lbs, kind="stable")
            bsf = float(bsf0)
            best: Best = best0
            witnessed = best0 is not None
            survivors: List[Tuple[int, int]] = []
            stats.group_pairs_considered += len(pairs)
            for count, k in enumerate(order):
                lb = float(lbs[k])
                if lb > bsf or (witnessed and lb >= bsf):
                    stats.group_pairs_pruned_pattern += len(pairs) - count
                    break
                u, v = pairs[k]
                glb, gub = group_dfd_bounds(level, space, u, v, bsf=bsf)
                if glb > bsf or (witnessed and glb >= bsf):
                    stats.group_pairs_pruned_glb += 1
                    continue
                survivors.append((u, v))
                if self.use_gub and gub < bsf:
                    bsf = gub
                    best = None
                    witnessed = False
                    stats.gub_tightenings += 1
                if deadline is not None and count % 64 == 0:
                    if time.perf_counter() > deadline:
                        raise MotifTimeout(f"GTM* exceeded {self.timeout:.1f}s")
            survivors.sort()
            stats.group_levels[tau] = len(survivors)

        expand = self.subset_expander or expand_pairs_to_subsets
        i_idx, j_idx = expand(level, space, survivors)
        with PhaseTimer(stats, "time_bounds"):
            point_tables = BoundTables.build(space, oracle)
            bounds = relaxed_subset_bounds_for_pairs(
                space, oracle, point_tables, i_idx, j_idx
            )
        bsf, best = run_best_first(
            oracle, space, bounds, point_tables, stats, bsf=bsf, best=best,
            timeout=self.timeout, started_at=started_at,
        )
        g = level.n_row_groups * level.n_col_groups
        cache_rows = min(getattr(oracle, "cache_rows", 0), space.n_rows)
        stats.space_bytes = max(
            stats.space_bytes,
            2 * 8 * g                              # gmin / gmax
            + 8 * 4 * space.n_cols                 # point-level tables
            + 8 * 6 * len(bounds)                  # surviving subset bounds
            + 8 * cache_rows * space.n_cols,       # lazy row cache
        )
        return bsf, best

    @staticmethod
    def _build_level(oracle, space: SearchSpace, tau: int) -> GroupLevel:
        if isinstance(oracle, LazyGroundMatrix):
            points_b = (
                None if oracle.points_a is oracle.points_b else oracle.points_b
            )
            return GroupLevel.from_points(
                oracle.points_a, points_b, oracle.metric, tau, space.mode
            )
        return GroupLevel.from_matrix(oracle.array, tau, space.mode)
