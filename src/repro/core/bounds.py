"""Lower bound functions for DFD motif search (paper Sections 4.2-4.3).

Pattern-based bounds
--------------------
All bounds read the ground distance matrix ``dG`` along fixed patterns:

* ``LB_cell(i, j) = dG(i, j)`` -- every path of a candidate in subset
  ``CS_{i,j}`` starts at cell ``(i, j)`` (Observation 2).
* ``LB_row(i, j) = min_{i'} dG(i', j+1)`` and
  ``LB_col(i, j) = min_{j'} dG(i+1, j')`` -- the path must cross row
  ``j+1`` and column ``i+1`` (Observation 3); their max is the
  cross bound ``LB_cross^start`` (Eq. 4).
* band bounds (Eqs. 5-6) -- with minimum length ``xi`` the path must
  cross *each* of rows ``j+1 .. j+xi`` and columns ``i+1 .. i+xi``, so
  the max of the per-row / per-column bounds applies (Observation 4).

Relaxed O(1) bounds (Section 4.3)
---------------------------------
Precompute ``Rmin[j] = min_{i'} dG(i', j+1)`` and ``Cmin[i] =
min_{j'} dG(i+1, j')`` over ranges valid for *every* candidate subset
(ranges derived in :meth:`repro.core.problem.SearchSpace.rmin_range` /
``cmin_range``; the printed Eqs. 10-11 contain free variables, we follow
Lemma 2's proof).  Band bounds relax to sliding-window maxima over
``Rmin`` / ``Cmin``.  Everything amortises to O(1) per subset.

End-cell pruning (Eq. 9) -- a soundness fix
-------------------------------------------
The paper kills DP cell ``(ie, je)`` when
``max(LB_row(ie,je), LB_col(ie,je)) >= bsf``.  That is only valid for
candidates extending *strictly* beyond the cell in both axes.  A
candidate extending along a single axis (``ic = ie, jc > je`` or
``ic > ie, jc = je``) is constrained by just one of the two components,
so the max-form can prune an optimal single-axis extension.  We
therefore kill a cell only when ``min(component_row, component_col) >=
bsf``, treating a component as vacuously ``+inf`` when no extension in
that axis exists (e.g. ``je = n-1``).  This is proven safe for every
extension type and is validated against brute force in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .problem import SELF_MODE, SearchSpace

_INF = np.inf


# ----------------------------------------------------------------------
# Relaxed bound tables (Section 4.3)
# ----------------------------------------------------------------------
@dataclass
class BoundTables:
    """Precomputed relaxed bound arrays for one search space.

    Attributes
    ----------
    rmin:
        ``Rmin[j]``: smallest ground distance in row ``j+1`` over the
        mode-appropriate column range; ``+inf`` where undefined.
    cmin:
        ``Cmin[i]``: smallest ground distance in column ``i+1`` over the
        mode-appropriate row range; ``+inf`` where undefined.
    rband_row:
        ``rLB_band^row(j) = max_{j' in [j, j+xi-1]} Rmin[j']``.
    rband_col:
        ``rLB_band^col(i) = max_{i' in [i, i+xi-1]} Cmin[i']``.
    """

    space: SearchSpace
    rmin: np.ndarray
    cmin: np.ndarray
    rband_row: np.ndarray
    rband_col: np.ndarray

    @classmethod
    def build(cls, space: SearchSpace, oracle) -> "BoundTables":
        """Stream the ground matrix row by row and fill all tables.

        Works identically for dense and lazy (O(n)-space) oracles: only
        one matrix row plus O(n) running vectors live at a time.
        """
        n, m = space.n_rows, space.n_cols
        rmin = np.full(m, _INF)
        cmin = np.full(n, _INF)
        if space.mode == SELF_MODE:
            colmin = np.full(m, _INF)
            for r in range(n):
                row = oracle.row(r)
                # Cmin[i] with i = r - 1: min of dG[r, r+1 .. n-1].
                if r >= 1 and r + 1 <= m - 1:
                    cmin[r - 1] = row[r + 1 :].min()
                np.minimum(colmin, row, out=colmin)
                # Rmin[j] with j = r + 1: min of dG[0..r, j+1] = colmin[j+1].
                j = r + 1
                if j + 1 <= m - 1:
                    rmin[j] = colmin[j + 1]
        else:
            colmin = np.full(m, _INF)
            for r in range(n):
                row = oracle.row(r)
                if r >= 1:
                    cmin[r - 1] = row.min()
                np.minimum(colmin, row, out=colmin)
            rmin[: m - 1] = colmin[1:]
        rband_row = _sliding_max(rmin, space.xi)
        rband_col = _sliding_max(cmin, space.xi)
        return cls(space, rmin, cmin, rband_row, rband_col)

    # ------------------------------------------------------------------
    def start_cross(self, i: int, j: int) -> float:
        """``rLB_cross^start(i, j)`` (Eq. 12)."""
        return float(max(self.cmin[i], self.rmin[j]))

    def band(self, i: int, j: int) -> float:
        """``max(rLB_band^row(j), rLB_band^col(i))`` (Eqs. 14-15)."""
        return float(max(self.rband_col[i], self.rband_row[j]))

    def end_kill_threshold(self, ie: int, je: int) -> float:
        """Safe end-cell kill value: ``min(Cmin[ie], Rmin[je])``.

        See the module docstring: a DP cell may be killed once the
        *smaller* of the two relaxed components reaches ``bsf``, which
        covers single-axis extensions as well.
        """
        return float(min(self.cmin[ie], self.rmin[je]))


def _sliding_max(values: np.ndarray, window: int) -> np.ndarray:
    """Max over ``values[k : k+window]`` per position; +inf past the end."""
    n = values.shape[0]
    out = np.full(n, _INF)
    if window <= 1:
        return values.copy() if window == 1 else out
    if n >= window:
        view = np.lib.stride_tricks.sliding_window_view(values, window)
        out[: n - window + 1] = view.max(axis=1)
    return out


# ----------------------------------------------------------------------
# Tight bounds (Section 4.2) -- O(n) / O(xi n) per subset
# ----------------------------------------------------------------------
class TightBounds:
    """Per-subset tight bounds computed directly from a dense ``dG``.

    These follow Eqs. 2-6 verbatim and are deliberately *not*
    precomputed: the point of Figures 13-14 is that tight bounds prune
    slightly better but cost O(n) / O(xi n) per candidate subset,
    whereas the relaxed bounds amortise to O(1).
    """

    def __init__(self, space: SearchSpace, dmat: np.ndarray) -> None:
        self.space = space
        self.dmat = np.asarray(dmat, dtype=np.float64)

    def row(self, i: int, j: int) -> float:
        """``LB_row(i, j)`` (Eq. 2)."""
        lo, hi = self.space.row_bound_range(i, j)
        if lo > hi or j + 1 > self.space.n_cols - 1:
            return _INF
        return float(self.dmat[lo : hi + 1, j + 1].min())

    def col(self, i: int, j: int) -> float:
        """``LB_col(i, j)`` (Eq. 3)."""
        lo, hi = self.space.col_bound_range(i, j)
        if lo > hi or i + 1 > self.space.n_rows - 1:
            return _INF
        return float(self.dmat[i + 1, lo : hi + 1].min())

    def start_cross(self, i: int, j: int) -> float:
        """``LB_cross^start(i, j) = max(LB_row, LB_col)`` (Eq. 4)."""
        return max(self.row(i, j), self.col(i, j))

    def end_cross(self, ie: int, je: int) -> float:
        """``LB_cross^end(ie, je)`` (Eq. 9) -- max form, for reporting."""
        return max(self.row(ie, je), self.col(ie, je))

    def end_kill_threshold(self, ie: int, je: int) -> float:
        """Safe end-cell kill value (min form; see module docstring)."""
        return min(self.row(ie, je), self.col(ie, je))

    def band_row(self, i: int, j: int) -> float:
        """``LB_band^row(i, j)`` (Eq. 5)."""
        best = 0.0
        for jp in range(j, j + self.space.xi):
            value = self.row(i, jp)
            if value > best:
                best = value
        return best

    def band_col(self, i: int, j: int) -> float:
        """``LB_band^col(i, j)`` (Eq. 6)."""
        best = 0.0
        for ip in range(i, i + self.space.xi):
            value = self.col(ip, j)
            if value > best:
                best = value
        return best

    def band(self, i: int, j: int) -> float:
        """``max(LB_band^row, LB_band^col)``."""
        return max(self.band_row(i, j), self.band_col(i, j))


# ----------------------------------------------------------------------
# Vectorised per-subset bound assembly
# ----------------------------------------------------------------------
@dataclass
class SubsetBounds:
    """Flat per-subset bound arrays over all feasible start pairs.

    ``lb_cell[k]``, ``lb_cross[k]``, ``lb_band[k]`` are the three bound
    classes for subset ``(i_idx[k], j_idx[k])``; ``combined`` is their
    max restricted to the enabled bound classes.
    """

    i_idx: np.ndarray
    j_idx: np.ndarray
    lb_cell: np.ndarray
    lb_cross: np.ndarray
    lb_band: np.ndarray
    combined: np.ndarray

    def __len__(self) -> int:
        return self.i_idx.shape[0]

    def order(self) -> np.ndarray:
        """Subset indices sorted ascending by combined bound (Alg. 2 L4)."""
        return np.argsort(self.combined, kind="stable")

    def order_blocks(self, within: Optional[np.ndarray] = None,
                     block_size: int = 1024):
        """Yield the stable ascending order lazily, in sorted blocks.

        The concatenation of the yielded blocks equals :meth:`order`
        (restricted to ``within`` when given), *including tie order*:
        ties on ``combined`` resolve by original subset index, exactly
        as a stable argsort does.  ``within`` must be ascending (the
        identity range and the engine's strided chunk positions both
        are), since tie order is inherited from its element order.

        Each block costs one ``np.argpartition`` pass over the not-yet
        yielded candidates plus a sort of the block itself, so the
        total ordering cost scales with the number of subsets the
        best-first loop actually consumes rather than with the full
        O(n^2) candidate set.  Block sizes double each round, bounding
        the worst case (everything consumed) at O(N log N) -- the same
        as the eager sort it replaces.
        """
        if block_size < 1:
            raise ValueError("block_size must be at least 1")
        combined = self.combined
        if within is None:
            remaining = np.arange(combined.shape[0], dtype=np.int64)
        else:
            remaining = np.asarray(within, dtype=np.int64)
        block = int(block_size)
        while remaining.size:
            if remaining.size <= block:
                sel, remaining = remaining, remaining[:0]
            else:
                values = combined[remaining]
                part = np.argpartition(values, block - 1)
                pivot = values[part[block - 1]]
                # Everything strictly below the pivot belongs to the
                # block; pivot-valued ties are admitted lowest-index
                # first so the block boundary never scrambles ties.
                select = values < pivot
                take_eq = block - int(np.count_nonzero(select))
                eq_positions = np.flatnonzero(values == pivot)
                select[eq_positions[:take_eq]] = True
                sel = remaining[select]
                remaining = remaining[~select]
            yield sel[np.argsort(combined[sel], kind="stable")]
            block *= 2


def relaxed_subset_bounds(
    space: SearchSpace,
    oracle,
    tables: BoundTables,
    use_cell: bool = True,
    use_cross: bool = True,
    use_band: bool = True,
) -> SubsetBounds:
    """Assemble relaxed bounds for every feasible subset, vectorised per row.

    The ``use_*`` switches support the Figure 15/16 bound-ablation
    experiments; a disabled class contributes ``-inf`` to ``combined``
    but its array is still populated for reporting.
    """
    i_list, j_list = [], []
    cell_list, cross_list, band_list = [], [], []
    for i in range(space.i_max + 1):
        j_lo, j_hi = space.j_range(i)
        if j_hi < j_lo:
            continue
        js = np.arange(j_lo, j_hi + 1)
        row = oracle.row(i)
        cell = row[js]
        cross = np.maximum(tables.cmin[i], tables.rmin[js])
        band = np.maximum(tables.rband_col[i], tables.rband_row[js])
        i_list.append(np.full(js.shape[0], i, dtype=np.int64))
        j_list.append(js.astype(np.int64))
        cell_list.append(cell)
        cross_list.append(cross)
        band_list.append(band)
    if not i_list:
        empty_f = np.empty(0)
        empty_i = np.empty(0, dtype=np.int64)
        return SubsetBounds(empty_i, empty_i, empty_f, empty_f, empty_f, empty_f)
    i_idx = np.concatenate(i_list)
    j_idx = np.concatenate(j_list)
    lb_cell = np.concatenate(cell_list)
    lb_cross = np.concatenate(cross_list)
    lb_band = np.concatenate(band_list)
    combined = _combine(lb_cell, lb_cross, lb_band, use_cell, use_cross, use_band)
    return SubsetBounds(i_idx, j_idx, lb_cell, lb_cross, lb_band, combined)


def relaxed_subset_bounds_for_pairs(
    space: SearchSpace,
    oracle,
    tables: BoundTables,
    i_idx: np.ndarray,
    j_idx: np.ndarray,
    use_cell: bool = True,
    use_cross: bool = True,
    use_band: bool = True,
) -> SubsetBounds:
    """Relaxed bounds for an explicit subset list (GTM/GTM* phase 2).

    Row accesses are batched per distinct ``i`` so a lazy ground oracle
    computes each needed row exactly once.
    """
    i_idx = np.asarray(i_idx, dtype=np.int64)
    j_idx = np.asarray(j_idx, dtype=np.int64)
    lb_cell = np.empty(i_idx.shape[0])
    order = np.argsort(i_idx, kind="stable")
    pos = 0
    while pos < order.shape[0]:
        i = int(i_idx[order[pos]])
        end = pos
        while end < order.shape[0] and i_idx[order[end]] == i:
            end += 1
        sel = order[pos:end]
        lb_cell[sel] = oracle.row(i)[j_idx[sel]]
        pos = end
    lb_cross = np.maximum(tables.cmin[i_idx], tables.rmin[j_idx])
    lb_band = np.maximum(tables.rband_col[i_idx], tables.rband_row[j_idx])
    combined = _combine(lb_cell, lb_cross, lb_band, use_cell, use_cross, use_band)
    return SubsetBounds(i_idx, j_idx, lb_cell, lb_cross, lb_band, combined)


def tight_subset_bounds(
    space: SearchSpace,
    dmat: np.ndarray,
    use_cell: bool = True,
    use_cross: bool = True,
    use_band: bool = True,
) -> SubsetBounds:
    """Assemble tight (Section 4.2) bounds for every feasible subset.

    Deliberately pays the per-subset O(n) / O(xi n) cost that motivates
    the relaxed bounds; used by the Figure 13/14 comparison.
    """
    tight = TightBounds(space, dmat)
    total = space.count_start_pairs()
    i_idx = np.empty(total, dtype=np.int64)
    j_idx = np.empty(total, dtype=np.int64)
    lb_cell = np.empty(total)
    lb_cross = np.empty(total)
    lb_band = np.empty(total)
    k = 0
    for i, j in space.start_pairs():
        i_idx[k] = i
        j_idx[k] = j
        lb_cell[k] = dmat[i, j]
        lb_cross[k] = tight.start_cross(i, j)
        lb_band[k] = tight.band(i, j)
        k += 1
    combined = _combine(lb_cell, lb_cross, lb_band, use_cell, use_cross, use_band)
    return SubsetBounds(i_idx, j_idx, lb_cell, lb_cross, lb_band, combined)


def _combine(
    lb_cell: np.ndarray,
    lb_cross: np.ndarray,
    lb_band: np.ndarray,
    use_cell: bool,
    use_cross: bool,
    use_band: bool,
) -> np.ndarray:
    combined = np.zeros_like(lb_cell)
    if use_cell:
        np.maximum(combined, lb_cell, out=combined)
    if use_cross:
        np.maximum(combined, lb_cross, out=combined)
    if use_band:
        np.maximum(combined, lb_band, out=combined)
    return combined


def attribute_pruning(
    bounds: SubsetBounds,
    expanded: np.ndarray,
    bsf: float,
    use_cell: bool = True,
    use_cross: bool = True,
    use_band: bool = True,
    scope: Optional[np.ndarray] = None,
) -> Tuple[int, int, int]:
    """Post-hoc Figure-15 attribution of pruned subsets to bound classes.

    A subset never expanded was pruned because its combined bound
    reached the final ``bsf``; it is credited to the first enabled class
    (cell, then cross, then band) whose bound alone suffices -- the same
    cascade order the paper uses in its breakdown.  ``scope`` restricts
    the attribution to a subset of positions (the engine's chunk scans
    own only their dealt share of the candidate space); ``expanded`` is
    always indexed over the full bound arrays.
    """
    if scope is None:
        pruned = ~expanded
        lb_cell, lb_cross, lb_band = bounds.lb_cell, bounds.lb_cross, bounds.lb_band
    else:
        pruned = ~expanded[scope]
        lb_cell = bounds.lb_cell[scope]
        lb_cross = bounds.lb_cross[scope]
        lb_band = bounds.lb_band[scope]
    remaining = pruned.copy()
    by_cell = by_cross = by_band = 0
    if use_cell:
        hit = remaining & (lb_cell >= bsf)
        by_cell = int(hit.sum())
        remaining &= ~hit
    if use_cross:
        hit = remaining & (lb_cross >= bsf)
        by_cross = int(hit.sum())
        remaining &= ~hit
    if use_band:
        hit = remaining & (lb_band >= bsf)
        by_band = int(hit.sum())
        remaining &= ~hit
    # Any residue (possible only when bsf was never witnessed) is
    # credited to the cell class to keep the fractions summing to one.
    by_cell += int(remaining.sum())
    return by_cell, by_cross, by_band
