"""Grouping machinery for GTM / GTM* (paper Section 5).

A trajectory is partitioned into groups of ``tau`` consecutive samples
(Definition 4).  For every pair of groups the minimum and maximum
ground distances ``dG^min`` / ``dG^max`` bound every point pair inside
the block (Corollary 1), which lifts all the point-level machinery to
group granularity:

* pattern bounds ``GLB_cell``, relaxed ``GLB_cross`` / ``GLB_band``
  (Section 5.2), valid whenever ``tau <= xi + 1`` (a candidate's path is
  then guaranteed to enter the neighbouring row/column group -- see
  :class:`GroupBoundTables`);
* the group-level DFD recurrences ``dF^min`` / ``dF^max``
  (Definition 5), giving the pruning bound ``GLB_DFD`` (Eq. 19) and the
  ``bsf``-tightening bound ``GUB_DFD`` (Eq. 20) with early termination
  (Section 5.3).

Strict-upper masking (self mode)
--------------------------------
For a single input trajectory every candidate's DP rectangle
``[i..ie] x [j..je]`` lies strictly above the matrix diagonal
(``ie < j`` implies ``i' < j'`` for every cell).  Group blocks that
straddle the diagonal therefore contribute only their strictly-upper
cells, and we compute ``dG^min`` / ``dG^max`` under that mask.  Without
it, every diagonal-adjacent block would contain a zero ground distance
and the group bounds would be vacuous.

Integer forms of the ``xi/tau`` constraints
-------------------------------------------
Equations 19-20 state the minimum-length constraints as real-valued
``ue - u > xi/tau``.  We derive exact integer index limits from the
group extent arrays instead (see :func:`group_dfd_bounds`), so the
lower bound's region is a superset of every candidate's group indices
(never over-prunes) and the upper bound's region only contains group
rectangles in which *every* point combination is a valid candidate
(always witnessed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..distances.ground import GroundMetric, get_metric
from .problem import SELF_MODE, SearchSpace

_INF = np.inf


# ----------------------------------------------------------------------
# Group level construction
# ----------------------------------------------------------------------
@dataclass
class GroupLevel:
    """One grouping granularity: extents plus block min/max matrices."""

    tau: int
    mode: str
    row_starts: np.ndarray
    row_ends: np.ndarray  # inclusive
    col_starts: np.ndarray
    col_ends: np.ndarray  # inclusive
    gmin: np.ndarray
    gmax: np.ndarray

    @property
    def n_row_groups(self) -> int:
        return self.row_starts.shape[0]

    @property
    def n_col_groups(self) -> int:
        return self.col_starts.shape[0]

    def row_group_of(self, index: int) -> int:
        """Group containing point ``index`` on the first-trajectory axis."""
        return index // self.tau

    def col_group_of(self, index: int) -> int:
        return index // self.tau

    @classmethod
    def from_matrix(cls, dmat: np.ndarray, tau: int, mode: str) -> "GroupLevel":
        """Build a level by block-reducing a dense ground matrix."""
        dmat = np.asarray(dmat, dtype=np.float64)
        n, m = dmat.shape
        g_rows = math.ceil(n / tau)
        gmin, gmax = reduce_group_rows(dmat, tau, mode, 0, g_rows)
        row_starts, row_ends = _extents(n, tau)
        col_starts, col_ends = _extents(m, tau)
        return cls(tau, mode, row_starts, row_ends, col_starts, col_ends, gmin, gmax)

    @classmethod
    def from_bands(
        cls,
        bands: Sequence[Tuple[np.ndarray, np.ndarray]],
        n: int,
        m: int,
        tau: int,
        mode: str,
    ) -> "GroupLevel":
        """Stitch :func:`reduce_group_rows` bands into a full level.

        The engine's parallel grouping phase shards the block
        reductions across workers and reassembles here; the result is
        identical to :meth:`from_matrix` on the same matrix.
        """
        gmin = np.vstack([band[0] for band in bands])
        gmax = np.vstack([band[1] for band in bands])
        row_starts, row_ends = _extents(n, tau)
        col_starts, col_ends = _extents(m, tau)
        return cls(tau, mode, row_starts, row_ends, col_starts, col_ends, gmin, gmax)

    @classmethod
    def from_points(
        cls,
        points_a: np.ndarray,
        points_b: Optional[np.ndarray],
        metric: GroundMetric,
        tau: int,
        mode: str,
    ) -> "GroupLevel":
        """Build a level directly from coordinates, one block-row at a time.

        Never materialises the full ground matrix: peak extra memory is
        ``O(tau * m)``, which is what lets GTM* keep sub-quadratic space
        (Section 5.5, idea (i)).
        """
        metric = get_metric(metric)
        a = np.asarray(points_a, dtype=np.float64)
        b = a if points_b is None else np.asarray(points_b, dtype=np.float64)
        n, m = a.shape[0], b.shape[0]
        row_starts, row_ends = _extents(n, tau)
        col_starts, col_ends = _extents(m, tau)
        g_rows, g_cols = row_starts.shape[0], col_starts.shape[0]
        gmin = np.full((g_rows, g_cols), _INF)
        gmax = np.full((g_rows, g_cols), -_INF)
        for u in range(g_rows):
            r0, r1 = row_starts[u], row_ends[u] + 1
            block = metric.pairwise(a[r0:r1], b)
            if mode == SELF_MODE:
                rows = np.arange(r0, r1)[:, None]
                cols = np.arange(m)[None, :]
                upper = rows < cols
                lo = np.where(upper, block, _INF)
                hi = np.where(upper, block, -_INF)
            else:
                lo = block
                hi = block
            gmin[u] = np.fmin.reduceat(lo, col_starts, axis=1).min(axis=0)
            gmax[u] = np.fmax.reduceat(hi, col_starts, axis=1).max(axis=0)
        return cls(tau, mode, row_starts, row_ends, col_starts, col_ends, gmin, gmax)


def reduce_group_rows(
    dmat: np.ndarray, tau: int, mode: str, u_start: int, u_end: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Block min/max matrices for group rows ``[u_start, u_end)``.

    The shardable core of :meth:`GroupLevel.from_matrix`: it touches
    only the matrix rows backing the requested group-row band, with the
    self-mode strictly-upper mask applied at *global* row indices, so a
    band decomposition reassembles to exactly the full reduction.
    """
    dmat = np.asarray(dmat, dtype=np.float64)
    n, m = dmat.shape
    r0 = u_start * tau
    r1 = min(u_end * tau, n)
    band = dmat[r0:r1]
    if mode == SELF_MODE:
        rows = np.arange(r0, r1)[:, None]
        cols = np.arange(m)[None, :]
        upper = rows < cols
        lo_src = np.where(upper, band, _INF)
        hi_src = np.where(upper, band, -_INF)
    else:
        lo_src = band
        hi_src = band
    gmin = _block_reduce(lo_src, tau, np.fmin, _INF)
    gmax = _block_reduce(hi_src, tau, np.fmax, -_INF)
    return gmin, gmax


def _extents(n: int, tau: int) -> Tuple[np.ndarray, np.ndarray]:
    """Start/end (inclusive) point indices of each size-``tau`` group."""
    n_groups = math.ceil(n / tau)
    starts = np.arange(n_groups, dtype=np.int64) * tau
    ends = np.minimum(starts + tau - 1, n - 1)
    return starts, ends


def _block_reduce(src: np.ndarray, tau: int, op, fill: float) -> np.ndarray:
    """Reduce a matrix over ``tau x tau`` blocks with padding."""
    n, m = src.shape
    g_rows = math.ceil(n / tau)
    g_cols = math.ceil(m / tau)
    padded = np.full((g_rows * tau, g_cols * tau), fill)
    padded[:n, :m] = src
    view = padded.reshape(g_rows, tau, g_cols, tau)
    return op.reduce(op.reduce(view, axis=3), axis=1)


# ----------------------------------------------------------------------
# Group-level pattern bounds (Section 5.2)
# ----------------------------------------------------------------------
@dataclass
class GroupBoundTables:
    """Relaxed cross/band bound arrays at group granularity.

    ``grmin[v]`` / ``gcmin[u]`` mirror the point-level ``Rmin`` /
    ``Cmin``; ``band_row`` / ``band_col`` are sliding maxima over a
    window of ``(xi + 1) // tau`` groups (the number of *whole*
    row/column groups every candidate path is guaranteed to traverse).
    All four are zero-filled (vacuous) when ``tau > xi + 1``, where the
    traversal guarantee fails.
    """

    grmin: np.ndarray
    gcmin: np.ndarray
    band_row: np.ndarray
    band_col: np.ndarray

    @classmethod
    def build(cls, level: GroupLevel, xi: int) -> "GroupBoundTables":
        g_rows, g_cols = level.gmin.shape
        grmin = np.zeros(g_cols)
        gcmin = np.zeros(g_rows)
        if level.tau > xi + 1:
            # Paths may end inside the start group: no crossing guarantee.
            return cls(grmin, gcmin, grmin.copy(), gcmin.copy())
        gmin = level.gmin
        if level.mode == SELF_MODE:
            # grmin[v] = min over u' in [0, v] of gmin[u', v+1].
            prefix = np.minimum.accumulate(gmin, axis=0)
            for v in range(g_cols - 1):
                row_limit = min(v, g_rows - 1)
                grmin[v] = prefix[row_limit, v + 1]
            # gcmin[u] = min over v' in [u+1, Gc-1] of gmin[u+1, v'].
            suffix = np.minimum.accumulate(gmin[:, ::-1], axis=1)[:, ::-1]
            for u in range(g_rows - 1):
                if u + 2 <= g_cols - 1:
                    gcmin[u] = suffix[u + 1, u + 2]
                elif u + 1 <= g_cols - 1:
                    gcmin[u] = suffix[u + 1, u + 1]
        else:
            colmin = gmin.min(axis=0)
            grmin[: g_cols - 1] = colmin[1:]
            rowmin = gmin.min(axis=1)
            gcmin[: g_rows - 1] = rowmin[1:]
        # Vacuous edges (no next group) stay at 0; undefined interior
        # values cannot occur because every feasible pair has a
        # next-group row/column or the zero default applies.
        grmin = np.where(np.isfinite(grmin), grmin, 0.0)
        gcmin = np.where(np.isfinite(gcmin), gcmin, 0.0)
        window = (xi + 1) // level.tau
        band_row = _window_max(grmin, window)
        band_col = _window_max(gcmin, window)
        return cls(grmin, gcmin, band_row, band_col)


def _window_max(values: np.ndarray, window: int) -> np.ndarray:
    """Max over ``values[k : k+window]``, truncated at the array end.

    Unlike the point-level tables, truncation (not ``+inf``) is correct
    here: entries past the end are vacuous zero bounds.
    """
    n = values.shape[0]
    if window <= 1 or n == 0:
        return values.copy()
    out = values.copy()
    for off in range(1, min(window, n)):
        np.maximum(out[:-off], values[off:], out=out[:-off])
    return out


# ----------------------------------------------------------------------
# Group pair enumeration
# ----------------------------------------------------------------------
def self_group_start_range(
    level: GroupLevel, space: SearchSpace, u: int, v: int
) -> Optional[Tuple[int, int]]:
    """Feasibility check for pair ``(u, v)``: is some start ``(i, j)``
    with ``i in g_u``, ``j in g_v`` a valid candidate-subset start?"""
    i_lo = int(level.row_starts[u])
    i_hi = min(int(level.row_ends[u]), space.i_max)
    if i_lo > i_hi:
        return None
    if space.mode == SELF_MODE:
        j_hi = min(int(level.col_ends[v]), space.n_cols - space.xi - 2)
        j_lo = max(int(level.col_starts[v]), i_lo + space.xi + 2)
    else:
        j_hi = min(int(level.col_ends[v]), space.n_cols - space.xi - 2)
        j_lo = int(level.col_starts[v])
    if j_lo > j_hi:
        return None
    return (i_lo, i_hi)


def feasible_pair_mask(
    level: GroupLevel, space: SearchSpace, us: np.ndarray, vs: np.ndarray
) -> np.ndarray:
    """Vectorised feasibility of group pairs (see
    :func:`self_group_start_range` for the scalar derivation)."""
    i_lo = level.row_starts[us]
    i_hi = np.minimum(level.row_ends[us], space.i_max)
    j_hi = np.minimum(level.col_ends[vs], space.n_cols - space.xi - 2)
    if space.mode == SELF_MODE:
        j_lo = np.maximum(level.col_starts[vs], i_lo + space.xi + 2)
    else:
        j_lo = level.col_starts[vs]
    return (i_lo <= i_hi) & (j_lo <= j_hi)


def feasible_group_pairs(level: GroupLevel, space: SearchSpace) -> List[Tuple[int, int]]:
    """All group pairs containing at least one feasible start pair."""
    uu, vv = np.meshgrid(
        np.arange(level.n_row_groups),
        np.arange(level.n_col_groups),
        indexing="ij",
    )
    us, vs = uu.ravel(), vv.ravel()
    mask = feasible_pair_mask(level, space, us, vs)
    return list(zip(us[mask].tolist(), vs[mask].tolist()))


def children_pairs(
    parents: Sequence[Tuple[int, int]],
    parent_tau: int,
    level: GroupLevel,
    space: SearchSpace,
) -> List[Tuple[int, int]]:
    """Refine surviving pairs onto a finer level.

    A child pair is every pair of finer groups whose point extents
    intersect the parent groups' extents, so the children cover every
    candidate of the parent for *any* coarse/fine size combination
    (exactness is preserved level to level even when the group size
    sequence is not a chain of exact halvings, e.g. 12 -> 6 -> 3 -> 2).
    """
    if not parents:
        return []
    tau_new = level.tau
    us = np.fromiter((p[0] for p in parents), dtype=np.int64, count=len(parents))
    vs = np.fromiter((p[1] for p in parents), dtype=np.int64, count=len(parents))
    cu_lo = (us * parent_tau) // tau_new
    cv_lo = (vs * parent_tau) // tau_new
    # A parent extent spans at most this many fine groups.
    width = math.ceil(parent_tau / tau_new) + 1
    chunks = []
    for da in range(width):
        cu = cu_lo + da
        for db in range(width):
            cv = cv_lo + db
            ok = (
                (cu <= ((us + 1) * parent_tau - 1) // tau_new)
                & (cv <= ((vs + 1) * parent_tau - 1) // tau_new)
                & (cu < level.n_row_groups)
                & (cv < level.n_col_groups)
            )
            if ok.any():
                chunks.append(np.stack([cu[ok], cv[ok]], axis=1))
    if not chunks:
        return []
    cand = np.unique(np.concatenate(chunks, axis=0), axis=0)
    mask = feasible_pair_mask(level, space, cand[:, 0], cand[:, 1])
    cand = cand[mask]
    return [(int(u), int(v)) for u, v in cand]


def pattern_bounds_for_pairs(
    level: GroupLevel,
    tables: GroupBoundTables,
    pairs: Sequence[Tuple[int, int]],
) -> np.ndarray:
    """Combined pattern bound per pair: max of cell, cross and band."""
    if not pairs:
        return np.empty(0)
    us = np.fromiter((p[0] for p in pairs), dtype=np.int64, count=len(pairs))
    vs = np.fromiter((p[1] for p in pairs), dtype=np.int64, count=len(pairs))
    cell = level.gmin[us, vs]
    cell = np.where(np.isfinite(cell), cell, 0.0)
    cross = np.maximum(tables.gcmin[us], tables.grmin[vs])
    band = np.maximum(tables.band_col[us], tables.band_row[vs])
    return np.maximum(cell, np.maximum(cross, band))


# ----------------------------------------------------------------------
# Group-level DFD bounds (Section 5.3)
# ----------------------------------------------------------------------
def group_dfd_bounds(
    level: GroupLevel,
    space: SearchSpace,
    u: int,
    v: int,
    bsf: float = _INF,
    early_stop: bool = True,
) -> Tuple[float, float]:
    """Compute ``(GLB_DFD(u, v), GUB_DFD(u, v))`` by the Definition-5 DP.

    ``GLB_DFD`` is the minimum of ``dF^min`` over every group rectangle
    a valid candidate can occupy; ``GUB_DFD`` the minimum of ``dF^max``
    over rectangles in which every point combination is valid (see the
    module docstring for the exact integer regions).

    With ``early_stop`` the DP stops once (a) no future cell can bring
    ``dF^min`` at or below ``bsf`` and (b) no future cell can improve
    the running ``GUB``; the returned GLB is then only guaranteed to be
    exact when ``<= bsf``, which is all the pruning decision needs.
    """
    gmin, gmax = level.gmin, level.gmax
    xi = space.xi
    tau = level.tau
    g_cols = level.n_col_groups
    ue_hi = min(v, level.n_row_groups - 1) if space.mode == SELF_MODE \
        else level.n_row_groups - 1
    ve_hi = g_cols - 1
    # LB region: superset of every candidate's (ue, ve).
    ue_lb = (int(level.row_starts[u]) + xi + 1) // tau
    ve_lb = (int(level.col_starts[v]) + xi + 1) // tau
    # UB region: every point combination valid.
    ue_ub = math.ceil((int(level.row_ends[u]) + xi + 1) / tau)
    ve_ub = math.ceil((int(level.col_ends[v]) + xi + 1) / tau)

    glb = _INF
    gub = _INF
    width = ve_hi - v + 1
    row_lo = gmin[u, v : ve_hi + 1]
    row_hi = gmax[u, v : ve_hi + 1]
    fmin_prev = np.maximum.accumulate(row_lo).tolist()
    fmax_prev = np.maximum.accumulate(row_hi).tolist()
    for ue in range(u, ue_hi + 1):
        if ue == u:
            fmin = fmin_prev
            fmax = fmax_prev
        else:
            lo_row = gmin[ue, v : ve_hi + 1].tolist()
            hi_row = gmax[ue, v : ve_hi + 1].tolist()
            fmin = [0.0] * width
            fmax = [0.0] * width
            left_min = lo_row[0] if lo_row[0] > fmin_prev[0] else fmin_prev[0]
            left_max = hi_row[0] if hi_row[0] > fmax_prev[0] else fmax_prev[0]
            fmin[0] = left_min
            fmax[0] = left_max
            for c in range(1, width):
                p = fmin_prev[c]
                pd = fmin_prev[c - 1]
                m = pd if pd < p else p
                if left_min < m:
                    m = left_min
                g = lo_row[c]
                left_min = g if g > m else m
                fmin[c] = left_min

                p = fmax_prev[c]
                pd = fmax_prev[c - 1]
                m = pd if pd < p else p
                if left_max < m:
                    m = left_max
                g = hi_row[c]
                left_max = g if g > m else m
                fmax[c] = left_max
        # Collect region minima for this row.
        if ue >= ue_lb:
            col0 = max(ve_lb - v, 0)
            if col0 < width:
                row_min = min(fmin[col0:])
                if row_min < glb:
                    glb = row_min
        if ue >= ue_ub:
            valid_row = space.mode != SELF_MODE or (
                int(level.row_ends[ue]) < int(level.col_starts[v])
            )
            if valid_row:
                col0 = max(ve_ub - v, 0)
                if col0 < width:
                    row_min = min(fmax[col0:])
                    if row_min < gub:
                        gub = row_min
        if early_stop:
            lb_done = glb <= bsf or min(fmin) > bsf
            ub_done = min(fmax) >= gub
            if lb_done and ub_done:
                break
        fmin_prev = fmin
        fmax_prev = fmax
    return float(glb), float(gub)
