"""GTM -- grouping-based trajectory motif discovery (paper Algorithm 3).

Multi-level framework (Figure 9):

1. partition the trajectory into groups of ``tau`` samples and compute
   the block min/max ground distances;
2. prune group pairs with the O(1) pattern bounds (Step 3);
3. for surviving pairs compute the tighter group-DFD bounds: prune with
   ``GLB_DFD`` and tighten ``bsf`` with ``GUB_DFD`` (Step 4);
4. halve ``tau`` and repeat on the survivors' children until ``tau``
   reaches 1 (here: 2, after which groups are split into point-level
   candidate subsets);
5. run the BTM best-first loop on the surviving candidate subsets with
   the carried-over ``bsf`` (Step 5).

Every pruning step is safe (Lemmas 3-4 plus the witness rule of
:mod:`repro.core.btm`), so GTM returns the exact motif.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional, Tuple

import numpy as np

from .bounds import BoundTables, relaxed_subset_bounds_for_pairs
from .btm import run_best_first
from .brute import MotifTimeout
from .dp import Best
from .grouping import (
    GroupBoundTables,
    GroupLevel,
    children_pairs,
    feasible_group_pairs,
    group_dfd_bounds,
    pattern_bounds_for_pairs,
)
from .problem import SELF_MODE, SearchSpace
from .stats import PhaseTimer, SearchStats


class GTM:
    """Grouping-based trajectory motif discovery (Algorithm 3).

    Parameters
    ----------
    tau:
        Initial group size; halved each level (paper default 32,
        Figure 17 studies the sensitivity).
    min_tau:
        Group size at which the multi-level loop stops and the
        point-level phase starts (2 = paper behaviour).
    use_gub:
        Disable to ablate the ``GUB_DFD`` bsf-tightening (Step 4).
    dfd_bound_max_groups:
        Run the ``GLB_DFD``/``GUB_DFD`` dynamic program only on levels
        with at most this many groups.  At fine granularities the group
        DP costs as much as the point-level DP it is meant to avoid (a
        CPython constant-factor effect); coarse levels keep the bsf
        tightening and the bulk pruning, fine levels fall back to the
        O(1) pattern bounds.  Purely a performance guard -- skipping a
        bound never affects exactness.
    timeout:
        Optional wall-clock budget in seconds.
    """

    name = "gtm"

    #: Optional ``(dmat, tau, mode) -> GroupLevel`` hook.  The engine
    #: wires its cached (and pool-sharded) level builder through here
    #: so the seeded witness-resolution pass reuses the levels the
    #: parallel grouping phase already built instead of re-reducing
    #: the O(n^2) matrix per level.  ``None`` means
    #: :meth:`GroupLevel.from_matrix` (the plain serial behaviour).
    level_builder = None

    #: Optional ``(level, space, pairs) -> (i_idx, j_idx)`` hook.  The
    #: engine routes this through a per-``(level, space)`` cache so the
    #: grouped scan and the seeded resolution pass expand each tau's
    #: surviving pair set once instead of re-running the lexsorted
    #: enumeration.  ``None`` means :func:`expand_pairs_to_subsets`.
    subset_expander = None

    def __init__(
        self,
        tau: int = 32,
        min_tau: int = 2,
        use_gub: bool = True,
        dfd_bound_max_groups: int = 96,
        timeout: Optional[float] = None,
    ) -> None:
        if tau < 2:
            raise ValueError("tau must be at least 2")
        if min_tau < 2:
            raise ValueError("min_tau must be at least 2")
        self.tau = tau
        self.min_tau = min_tau
        self.use_gub = use_gub
        self.dfd_bound_max_groups = dfd_bound_max_groups
        self.timeout = timeout

    # ------------------------------------------------------------------
    def search(
        self,
        oracle,
        space: SearchSpace,
        stats: Optional[SearchStats] = None,
        bsf0: float = math.inf,
        best0: Best = None,
    ) -> Tuple[float, Best]:
        """Return ``(distance, (i, ie, j, je))`` of the motif.

        ``bsf0`` / ``best0`` seed the search with an external threshold
        (see :meth:`repro.core.btm.BTM.search`); a correct seed only
        reduces work, never changes the answer.
        """
        if not hasattr(oracle, "array"):
            raise ValueError("GTM requires a dense ground matrix (see GTMStar)")
        stats = stats if stats is not None else SearchStats()
        stats.algorithm = self.name
        started_at = time.perf_counter()
        deadline = None if self.timeout is None else started_at + self.timeout
        dmat = oracle.array

        bsf = float(bsf0)
        best: Best = best0
        tau = min(self.tau, max(self.min_tau, space.n_rows // 2))
        pairs: Optional[List[Tuple[int, int]]] = None
        survivors: List[Tuple[int, int]] = []
        level: Optional[GroupLevel] = None
        build_level = self.level_builder or GroupLevel.from_matrix
        with PhaseTimer(stats, "time_grouping"):
            prev_tau = None
            while tau >= self.min_tau:
                level = build_level(dmat, tau, space.mode)
                if pairs is None:
                    pairs = feasible_group_pairs(level, space)
                else:
                    pairs = children_pairs(pairs, prev_tau, level, space)
                bsf, best, survivors = self._process_level(
                    level, space, pairs, bsf, best, stats, deadline
                )
                stats.group_levels[tau] = len(survivors)
                pairs = survivors
                if tau == self.min_tau:
                    break
                prev_tau = tau
                tau = max(tau // 2, self.min_tau)
        bsf, best, n_subsets = self._point_phase(
            oracle, space, level, survivors, bsf, best, stats, started_at
        )
        rows, cols = oracle.shape
        g = 0 if level is None else level.n_row_groups * level.n_col_groups
        stats.space_bytes = max(
            stats.space_bytes,
            8 * rows * cols      # dG
            + 2 * 8 * g          # gmin/gmax at the finest level
            + 8 * 4 * cols       # point-level bound tables
            + 8 * 6 * n_subsets,  # surviving subset bound arrays
        )
        return bsf, best

    # ------------------------------------------------------------------
    def _process_level(
        self,
        level: GroupLevel,
        space: SearchSpace,
        pairs: List[Tuple[int, int]],
        bsf: float,
        best: Best,
        stats: SearchStats,
        deadline: Optional[float],
    ) -> Tuple[float, Best, List[Tuple[int, int]]]:
        """Steps 3-4 of the framework on one grouping level."""
        tables = GroupBoundTables.build(level, space.xi)
        lbs = pattern_bounds_for_pairs(level, tables, pairs)
        order = np.argsort(lbs, kind="stable")
        witnessed = best is not None
        survivors: List[Tuple[int, int]] = []
        stats.group_pairs_considered += len(pairs)
        use_dfd_bounds = level.n_row_groups <= self.dfd_bound_max_groups
        for count, k in enumerate(order):
            lb = float(lbs[k])
            if lb > bsf or (witnessed and lb >= bsf):
                stats.group_pairs_pruned_pattern += len(pairs) - count
                break
            u, v = pairs[k]
            if not use_dfd_bounds:
                survivors.append((u, v))
                continue
            glb, gub = group_dfd_bounds(level, space, u, v, bsf=bsf)
            if glb > bsf or (witnessed and glb >= bsf):
                stats.group_pairs_pruned_glb += 1
                continue
            survivors.append((u, v))
            if self.use_gub and gub < bsf:
                # A valid candidate with dF <= gub exists inside this
                # pair, but its indices are unknown: bsf becomes
                # unwitnessed (see the witness rule in btm.py).
                bsf = gub
                best = None
                witnessed = False
                stats.gub_tightenings += 1
            if deadline is not None and count % 64 == 0:
                if time.perf_counter() > deadline:
                    raise MotifTimeout(f"GTM exceeded {self.timeout:.1f}s")
        survivors.sort()
        return bsf, best, survivors

    # ------------------------------------------------------------------
    def _point_phase(
        self,
        oracle,
        space: SearchSpace,
        level: Optional[GroupLevel],
        survivors: List[Tuple[int, int]],
        bsf: float,
        best: Best,
        stats: SearchStats,
        started_at: float,
    ) -> Tuple[float, Best, int]:
        """Step 5: BTM best-first loop on the surviving subsets.

        Returns ``(bsf, best, n_subsets)`` where ``n_subsets`` is the
        number of materialised subset-bound entries (space accounting).
        """
        if level is None:
            # Trajectory shorter than one group: fall back to plain BTM.
            with PhaseTimer(stats, "time_bounds"):
                tables = BoundTables.build(space, oracle)
                from .bounds import relaxed_subset_bounds

                bounds = relaxed_subset_bounds(space, oracle, tables)
        else:
            expand = self.subset_expander or expand_pairs_to_subsets
            i_idx, j_idx = expand(level, space, survivors)
            with PhaseTimer(stats, "time_bounds"):
                tables = BoundTables.build(space, oracle)
                bounds = relaxed_subset_bounds_for_pairs(
                    space, oracle, tables, i_idx, j_idx
                )
        bsf, best = run_best_first(
            oracle, space, bounds, tables, stats, bsf=bsf, best=best,
            timeout=self.timeout, started_at=started_at,
        )
        return bsf, best, len(bounds)


def expand_pairs_to_subsets(
    level: GroupLevel, space: SearchSpace, pairs: List[Tuple[int, int]]
):
    """Enumerate the feasible point-level subsets inside group pairs.

    Vectorised over the pair list: one pass per ``(a, b)`` offset inside
    the ``tau x tau`` block, which keeps the finest-level expansion (the
    common case, ``tau = 2``) at four NumPy passes total.
    """
    if not pairs:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    us = np.fromiter((p[0] for p in pairs), dtype=np.int64, count=len(pairs))
    vs = np.fromiter((p[1] for p in pairs), dtype=np.int64, count=len(pairs))
    row_start = level.row_starts[us]
    row_end = np.minimum(level.row_ends[us], space.i_max)
    col_start = level.col_starts[vs]
    col_end = np.minimum(level.col_ends[vs], space.n_cols - space.xi - 2)
    i_list: List[np.ndarray] = []
    j_list: List[np.ndarray] = []
    for a in range(level.tau):
        i = row_start + a
        i_ok = i <= row_end
        if not i_ok.any():
            break
        if space.mode == SELF_MODE:
            j_min = np.maximum(col_start, i + space.xi + 2)
        else:
            j_min = col_start
        for b in range(level.tau):
            j = col_start + b
            ok = i_ok & (j <= col_end) & (j >= j_min)
            if ok.any():
                i_list.append(i[ok])
                j_list.append(j[ok])
    if not i_list:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    i_idx = np.concatenate(i_list)
    j_idx = np.concatenate(j_list)
    order = np.lexsort((j_idx, i_idx))
    return i_idx[order], j_idx[order]
