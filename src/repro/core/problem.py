"""Problem geometry: candidate index ranges for both motif variants.

Problem 1 of the paper (single trajectory) asks for subtrajectories
``S[i..ie]`` and ``S[j..je]`` minimising the DFD subject to

* non-overlap and ordering: ``i < ie < j < je``, and
* minimum length: ``ie > i + xi`` and ``je > j + xi``
  (so each subtrajectory spans more than ``xi`` steps).

The cross-trajectory variant pairs ``S[i..ie]`` with ``T[j..je]`` and
drops the ordering constraint.  All the derived loop limits and bound
index ranges differ between the two variants, so they are centralised
here as a small :class:`SearchSpace` object that every algorithm and
bound builder consults.  Getting these ranges wrong silently breaks
exactness, hence the exhaustive property tests in
``tests/test_problem.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from ..errors import InfeasibleQueryError

#: Mode markers.
SELF_MODE = "self"
CROSS_MODE = "cross"


@dataclass(frozen=True)
class SearchSpace:
    """Index geometry of a motif query.

    Attributes
    ----------
    mode:
        ``"self"`` (Problem 1) or ``"cross"`` (two-trajectory variant).
    n_rows:
        Length of the first trajectory (index ``i`` / ``ie`` axis).
    n_cols:
        Length of the second trajectory; equals ``n_rows`` in self mode.
    xi:
        Minimum motif length (the paper's ``xi``); a candidate needs
        ``ie - i > xi`` and ``je - j > xi``.
    """

    mode: str
    n_rows: int
    n_cols: int
    xi: int

    def __post_init__(self) -> None:
        if self.mode not in (SELF_MODE, CROSS_MODE):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.xi < 1:
            raise InfeasibleQueryError("min_length (xi) must be at least 1")
        if self.mode == SELF_MODE and self.n_rows != self.n_cols:
            raise ValueError("self mode requires a square index space")
        if self.i_max < 0 or self.n_cols - self.xi - 2 < 0:
            need = (
                2 * self.xi + 4
                if self.mode == SELF_MODE
                else self.xi + 2
            )
            raise InfeasibleQueryError(
                f"trajectory too short for min_length={self.xi}: "
                f"need at least {need} points per input "
                f"(got {self.n_rows} x {self.n_cols}, mode={self.mode!r})"
            )

    # ------------------------------------------------------------------
    # Start-pair (candidate subset) ranges
    # ------------------------------------------------------------------
    @property
    def i_max(self) -> int:
        """Largest feasible start index ``i`` (inclusive).

        Self mode: ``je <= n-1``, ``je >= j + xi + 1``, ``j >= i + xi + 2``
        chain to ``i <= n - 2 xi - 4``.  Cross mode: ``i <= n - xi - 2``.
        """
        if self.mode == SELF_MODE:
            return self.n_rows - 2 * self.xi - 4
        return self.n_rows - self.xi - 2

    def j_range(self, i: int) -> Tuple[int, int]:
        """Inclusive range of feasible second-start indices ``j`` given ``i``."""
        if self.mode == SELF_MODE:
            return (i + self.xi + 2, self.n_cols - self.xi - 2)
        return (0, self.n_cols - self.xi - 2)

    def start_pairs(self) -> Iterator[Tuple[int, int]]:
        """All feasible start pairs ``(i, j)`` -- the candidate subsets."""
        for i in range(self.i_max + 1):
            j_lo, j_hi = self.j_range(i)
            for j in range(j_lo, j_hi + 1):
                yield (i, j)

    def count_start_pairs(self) -> int:
        """Number of candidate subsets (closed form, no iteration)."""
        total = 0
        for i in range(self.i_max + 1):
            j_lo, j_hi = self.j_range(i)
            if j_hi >= j_lo:
                total += j_hi - j_lo + 1
        return total

    # ------------------------------------------------------------------
    # End-index ranges within a candidate subset CS_{i,j}
    # ------------------------------------------------------------------
    def ie_limit(self, i: int, j: int) -> int:
        """Largest ``ie`` explored in subset (i, j) (inclusive).

        Self mode caps at ``j - 1`` (non-overlap); cross mode at the end
        of the first trajectory.
        """
        if self.mode == SELF_MODE:
            return j - 1
        return self.n_rows - 1

    def je_limit(self, i: int, j: int) -> int:
        """Largest ``je`` explored in subset (i, j) (inclusive)."""
        return self.n_cols - 1

    def is_valid_candidate(self, i: int, ie: int, j: int, je: int) -> bool:
        """Check all Problem-1 constraints for a concrete candidate."""
        if not (0 <= i < ie < self.n_rows and 0 <= j < je < self.n_cols):
            return False
        if ie - i <= self.xi or je - j <= self.xi:
            return False
        if self.mode == SELF_MODE and not ie < j:
            return False
        return True

    # ------------------------------------------------------------------
    # Ranges used by the lower bounds (Section 4.2)
    # ------------------------------------------------------------------
    def row_bound_range(self, i: int, j: int) -> Tuple[int, int]:
        """Columns ``i'`` a path from (i, j) may occupy when crossing
        row ``j + 1`` -- the minimisation range of ``LB_row`` (Eq. 2).

        Self mode: ``i' in [i, j-1]`` because the first subtrajectory
        ends before ``j``.  Cross mode: ``i' in [i, n-1]``.
        """
        if self.mode == SELF_MODE:
            return (i, j - 1)
        return (i, self.n_rows - 1)

    def col_bound_range(self, i: int, j: int) -> Tuple[int, int]:
        """Rows ``j'`` a path from (i, j) may occupy when crossing column
        ``i + 1`` -- the minimisation range of ``LB_col`` (Eq. 3)."""
        return (j, self.n_cols - 1)

    def rmin_range(self, j: int) -> Tuple[int, int]:
        """Relaxation range for ``Rmin[j]`` (Lemma 2).

        ``Rmin[j] = min_{i'} dG(i', j+1)`` must be <= ``LB_row(i, j)``
        for every feasible ``i``; the tightest common range starts at
        ``i' = 0`` and, in self mode, stops at ``j - 1``.
        """
        if self.mode == SELF_MODE:
            return (0, j - 1)
        return (0, self.n_rows - 1)

    def cmin_range(self, i: int) -> Tuple[int, int]:
        """Relaxation range for ``Cmin[i]``.

        ``Cmin[i] = min_{j'} dG(i+1, j')`` must be <= ``LB_col(i', j)``
        for every subset ``(i0, j)`` whose band covers ``i`` (``i0 >= i -
        xi + 1``) -- hence ``j' >= i + 2`` suffices in self mode (proof:
        ``j >= i0 + xi + 2 >= i + 3 > i + 2``) and crucially excludes the
        zero diagonal ``dG(i+1, i+1)``.  Cross mode: the full column.
        """
        if self.mode == SELF_MODE:
            return (i + 2, self.n_cols - 1)
        return (0, self.n_cols - 1)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def total_candidates_estimate(self) -> int:
        """Total number of candidate *pairs* (not subsets); O(n^4) count."""
        total = 0
        for i, j in self.start_pairs():
            ie_n = self.ie_limit(i, j) - (i + self.xi + 1) + 1
            je_n = self.je_limit(i, j) - (j + self.xi + 1) + 1
            if ie_n > 0 and je_n > 0:
                total += ie_n * je_n
        return total


def self_space(n: int, xi: int) -> SearchSpace:
    """Search space for Problem 1 on one trajectory of length ``n``."""
    return SearchSpace(SELF_MODE, n, n, xi)


def cross_space(n: int, m: int, xi: int) -> SearchSpace:
    """Search space for the two-trajectory variant (lengths ``n``, ``m``)."""
    return SearchSpace(CROSS_MODE, n, m, xi)
