"""Shared dynamic-programming kernels for candidate-subset expansion.

BruteDP (Alg. 1), BTM (Alg. 2) and the final phase of GTM/GTM* all run
the same inner computation: for a candidate subset ``CS_{i,j}`` expand
the DFD dynamic program over the rectangle of end positions
``(ie, je)``, sharing work across the O(n^2) candidates with the same
start pair.  This module provides two interchangeable kernels:

* :func:`expand_subset_scalar` -- row-major Python scan.  Each finished
  row is post-processed with vectorised candidate checks, end-cell
  kills and the early-termination test, so only the unavoidable
  sequential recurrence runs per cell.
* :func:`expand_subset_wavefront` -- anti-diagonal NumPy sweep; every
  diagonal is one vectorised step over rolling sentinel buffers.
  Fastest whenever early termination cuts the sweep short, which is the
  common case once a good ``bsf`` is known.

With a lazy (row-on-demand) ground oracle the wavefront variant
materialises rectangle rows only as the sweep reaches them
(:func:`expand_subset_wavefront_lazy`): the paper's GTM* computes each
``dG`` value per cell on the fly, which is free in C++ but ruinous in
CPython; materialising just the expanded rows keeps the typical extra
space at a few rows (early termination) while preserving vectorised
diagonals.  The worst case for one subset is its full rectangle, which
the GTM* space accounting reports.

Both kernels implement the same semantics (validated against each other
and against brute force in the tests):

* best-so-far (``bsf``) candidate tracking over cells with
  ``ie - i > xi`` and ``je - j > xi``;
* optional end-cell kills using the *safe min-form* threshold
  ``min(Cmin[ie], Rmin[je]) >= bsf`` (see :mod:`repro.core.bounds`);
* optional early termination once an entire DP frontier is ``>= bsf``
  (every downstream value is a max including some frontier value).

With ``prune=False`` the kernels compute the full rectangle -- that is
exactly BruteDP's inner loop.
"""

from __future__ import annotations

from math import inf
from typing import Optional, Tuple

import numpy as np

from .problem import SearchSpace
from .stats import SearchStats

#: Rectangles up to this many cells use the scalar kernel by default.
SCALAR_AREA_LIMIT = 4096

Best = Optional[Tuple[int, int, int, int]]


def expand_subset(
    oracle,
    space: SearchSpace,
    i: int,
    j: int,
    bsf: float,
    best: Best,
    cmin: Optional[np.ndarray] = None,
    rmin: Optional[np.ndarray] = None,
    prune: bool = True,
    stats: Optional[SearchStats] = None,
    force_kernel: Optional[str] = None,
) -> Tuple[float, Best]:
    """Expand subset ``CS_{i,j}``; return the updated ``(bsf, best)``.

    Chooses the scalar kernel for small rectangles or lazy oracles and
    the wavefront kernel otherwise.  ``force_kernel`` ("scalar" /
    "wavefront") overrides the heuristic (used by tests and ablations).
    """
    ie_hi = space.ie_limit(i, j)
    je_hi = space.je_limit(i, j)
    area = (ie_hi - i + 1) * (je_hi - j + 1)
    dense = hasattr(oracle, "array")
    if force_kernel == "scalar" or (
        force_kernel is None and area <= SCALAR_AREA_LIMIT and dense
    ):
        return expand_subset_scalar(
            oracle, space, i, j, bsf, best, cmin=cmin, rmin=rmin,
            prune=prune, stats=stats,
        )
    if dense:
        return expand_subset_wavefront(
            oracle.array, space, i, j, bsf, best, cmin=cmin, rmin=rmin,
            prune=prune, stats=stats,
        )
    return expand_subset_wavefront_lazy(
        oracle, space, i, j, bsf, best, cmin=cmin, rmin=rmin,
        prune=prune, stats=stats,
    )


# ----------------------------------------------------------------------
# Scalar row-major kernel
# ----------------------------------------------------------------------
def expand_subset_scalar(
    oracle,
    space: SearchSpace,
    i: int,
    j: int,
    bsf: float,
    best: Best,
    cmin: Optional[np.ndarray] = None,
    rmin: Optional[np.ndarray] = None,
    prune: bool = True,
    stats: Optional[SearchStats] = None,
) -> Tuple[float, Best]:
    xi = space.xi
    ie_hi = space.ie_limit(i, j)
    je_hi = space.je_limit(i, j)
    width = je_hi - j + 1
    first_col = xi + 1  # first candidate column offset (je = j + xi + 1)
    use_kills = prune and cmin is not None and rmin is not None
    rmin_slice = rmin[j : je_hi + 1] if use_kills else None

    # Boundary row (ie = i): running maxima of dG[i, j..je_hi].
    prev_arr = np.maximum.accumulate(oracle.row(i)[j : je_hi + 1])
    if use_kills and cmin[i] >= bsf:
        prev_arr = np.where(rmin_slice >= bsf, inf, prev_arr)
    prev = prev_arr.tolist()

    cells = 0
    kills = 0
    checked = 0
    updates = 0
    for ie in range(i + 1, ie_hi + 1):
        g = oracle.row(ie)[j : je_hi + 1].tolist()
        cur = [0.0] * width
        # Boundary column (je = j): running max down the column.
        left = g[0] if g[0] > prev[0] else prev[0]
        cur[0] = left
        for c in range(1, width):
            p = prev[c]
            pd = prev[c - 1]
            m = pd if pd < p else p
            if left < m:
                m = left
            gc = g[c]
            left = gc if gc > m else m
            cur[c] = left
        cells += width
        # Candidate check: cells with ie - i > xi and je - j > xi.
        if ie - i > xi:
            tail = cur[first_col:]
            if tail:
                row_min = min(tail)
                checked += len(tail)
                if row_min < bsf:
                    c = first_col + tail.index(row_min)
                    bsf = row_min
                    best = (i, ie, j, j + c)
                    updates += 1
        if prune:
            # End-cell kills (safe min-form, applied after the check).
            if use_kills and cmin[ie] >= bsf:
                cur_arr = np.asarray(cur)
                mask = rmin_slice >= bsf
                n_kill = int(mask.sum())
                if n_kill:
                    cur_arr[mask] = inf
                    kills += n_kill
                    cur = cur_arr.tolist()
            # Early termination: next rows only grow from this frontier.
            if min(cur) >= bsf:
                break
        prev = cur
    if stats is not None:
        stats.cells_expanded += cells
        stats.cells_killed += kills
        stats.candidates_checked += checked
        stats.bsf_updates += updates
    return bsf, best


# ----------------------------------------------------------------------
# Wavefront (anti-diagonal) kernel
# ----------------------------------------------------------------------
def expand_subset_wavefront(
    dmat: np.ndarray,
    space: SearchSpace,
    i: int,
    j: int,
    bsf: float,
    best: Best,
    cmin: Optional[np.ndarray] = None,
    rmin: Optional[np.ndarray] = None,
    prune: bool = True,
    stats: Optional[SearchStats] = None,
) -> Tuple[float, Best]:
    """Anti-diagonal sweep over a dense matrix (see :func:`_rect_wavefront`)."""
    ie_hi = space.ie_limit(i, j)
    je_hi = space.je_limit(i, j)
    rect = dmat[i : ie_hi + 1, j : je_hi + 1]
    return _rect_wavefront(
        rect, space.xi, i, j, bsf, best,
        cmin[i : ie_hi + 1] if cmin is not None else None,
        rmin[j : je_hi + 1] if rmin is not None else None,
        prune, stats, ensure_rows=None,
    )


def expand_subset_wavefront_lazy(
    oracle,
    space: SearchSpace,
    i: int,
    j: int,
    bsf: float,
    best: Best,
    cmin: Optional[np.ndarray] = None,
    rmin: Optional[np.ndarray] = None,
    prune: bool = True,
    stats: Optional[SearchStats] = None,
) -> Tuple[float, Best]:
    """Wavefront sweep with rows materialised on demand from a lazy oracle.

    ``np.empty`` reserves virtual address space only; physical memory
    grows with the rows the sweep actually reaches, which early
    termination keeps small in the common case.
    """
    ie_hi = space.ie_limit(i, j)
    je_hi = space.je_limit(i, j)
    n_rows = ie_hi - i + 1
    block = np.empty((n_rows, je_hi - j + 1))
    filled = [0]

    def ensure_rows(upto: int) -> None:
        # oracle.row uses the bound metric kernel and the LRU cache, so
        # rows revisited by nearby subsets are not recomputed.
        while filled[0] <= upto:
            r = filled[0]
            block[r] = oracle.row(i + r)[j : je_hi + 1]
            filled[0] += 1

    ensure_rows(0)
    return _rect_wavefront(
        block, space.xi, i, j, bsf, best,
        cmin[i : ie_hi + 1] if cmin is not None else None,
        rmin[j : je_hi + 1] if rmin is not None else None,
        prune, stats, ensure_rows=ensure_rows,
    )


def _rect_wavefront(
    rect: np.ndarray,
    xi: int,
    i: int,
    j: int,
    bsf: float,
    best: Best,
    cmin_slice: Optional[np.ndarray],
    rmin_slice: Optional[np.ndarray],
    prune: bool,
    stats: Optional[SearchStats],
    ensure_rows,
) -> Tuple[float, Best]:
    """Anti-diagonal sweep with O(1) NumPy calls per diagonal.

    Diagonals live in three rolling buffers of length ``n_rows + 2``
    indexed by ``row + 1`` with ``+inf`` sentinels, so the three
    neighbour diagonals are plain contiguous slices (no gathers).  The
    ``g`` values along an anti-diagonal of the row-major rectangle are a
    strided view (step = row stride minus one element).
    """
    n_rows, n_cols = rect.shape
    use_kills = prune and cmin_slice is not None and rmin_slice is not None

    cells = 0
    kills = 0
    checked = 0
    updates = 0

    # Rolling buffers: index r+1 holds the value of rectangle row r on
    # that diagonal; indices outside the occupied range stay +inf.
    buf_a = np.full(n_rows + 2, inf)
    buf_b = np.full(n_rows + 2, inf)
    buf_c = np.full(n_rows + 2, inf)
    buf_a[1] = rect[0, 0]
    prev1, prev1_lo, prev1_hi = buf_a, 0, 0
    prev2 = buf_b
    spare = buf_c
    row_stride = rect.strides[0]
    col_stride = rect.strides[1]
    for d in range(1, n_rows + n_cols - 1):
        lo = max(0, d - n_cols + 1)
        hi = min(d, n_rows - 1)
        length = hi - lo + 1
        if ensure_rows is not None:
            ensure_rows(hi)
        # Anti-diagonal of rect from (lo, d-lo) downward-left.
        g = np.lib.stride_tricks.as_strided(
            rect[lo:, d - lo :],
            shape=(length,),
            strides=(row_stride - col_stride,),
        )
        up = prev1[lo : lo + length]          # (r-1, c)   at index r
        left = prev1[lo + 1 : lo + 1 + length]  # (r, c-1)  at index r+1
        ul = prev2[lo : lo + length]          # (r-1, c-1) at index r
        cur = spare
        seg = cur[lo + 1 : lo + 1 + length]
        np.minimum(up, left, out=seg)
        np.minimum(seg, ul, out=seg)
        np.maximum(seg, g, out=seg)
        # Reset stale sentinels just outside the occupied range.
        cur[lo] = inf
        if lo + 1 + length < cur.shape[0]:
            cur[lo + 1 + length] = inf
        cells += length
        # Candidate cells on this diagonal: r > xi and c = d - r > xi.
        r_lo = max(lo, xi + 1)
        r_hi = min(hi, d - xi - 1)
        if r_hi >= r_lo:
            window = cur[r_lo + 1 : r_hi + 2]
            checked += window.shape[0]
            k = int(np.argmin(window))
            val = float(window[k])
            if val < bsf:
                r = r_lo + k
                bsf = val
                best = (i, i + r, j, j + d - r)
                updates += 1
        if prune:
            if use_kills:
                # cmin over rows lo..hi and rmin over the matching
                # (descending) columns -- both contiguous slices.
                kill_c = cmin_slice[lo : hi + 1]
                kill_r = rmin_slice[d - hi : d - lo + 1][::-1]
                mask = (kill_c >= bsf) & (kill_r >= bsf)
                n_kill = int(np.count_nonzero(mask))
                if n_kill:
                    seg[mask] = inf
                    kills += n_kill
            if float(seg.min()) >= bsf:
                prev_seg = prev1[prev1_lo + 1 : prev1_hi + 2]
                if prev_seg.shape[0] == 0 or float(prev_seg.min()) >= bsf:
                    break
        spare = prev2
        prev2 = prev1
        prev1, prev1_lo, prev1_hi = cur, lo, hi
    if stats is not None:
        stats.cells_expanded += cells
        stats.cells_killed += kills
        stats.candidates_checked += checked
        stats.bsf_updates += updates
    return bsf, best
