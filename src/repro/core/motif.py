"""Public motif-discovery facade.

:func:`discover_motif` is the main entry point of the library: it
accepts one trajectory (Problem 1) or two trajectories (the
cross-trajectory variant), builds the ground-distance oracle appropriate
for the chosen algorithm, runs the search and wraps the answer in a
:class:`MotifResult`.

>>> from repro import Trajectory, discover_motif
>>> import numpy as np
>>> rng = np.random.default_rng(7)
>>> traj = Trajectory(rng.random((80, 2)).cumsum(axis=0))
>>> result = discover_motif(traj, min_length=5, algorithm="gtm")
>>> result.first.start < result.first.end < result.second.start
True
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..distances.ground import (
    DenseGroundMatrix,
    GroundMetric,
    LazyGroundMatrix,
    get_metric,
)
from ..errors import ReproError
from ..trajectory import Subtrajectory, Trajectory
from .brute import BruteDP
from .btm import BTM
from .gtm import GTM
from .gtm_star import GTMStar
from .problem import SearchSpace, cross_space, self_space
from .stats import PhaseTimer, SearchStats

#: Algorithm registry for the string shorthand.
ALGORITHMS = {
    "brute": BruteDP,
    "brute_dp": BruteDP,
    "btm": BTM,
    "gtm": GTM,
    "gtm_star": GTMStar,
    "gtm*": GTMStar,
}


@dataclass(frozen=True)
class MotifResult:
    """The discovered motif: two subtrajectories and their DFD.

    Attributes
    ----------
    first, second:
        The two subtrajectory views (``first`` precedes ``second`` on
        the same trajectory in self mode; in cross mode they live on
        the two inputs respectively).
    distance:
        Their discrete Frechet distance -- the minimum over all valid
        candidate pairs.
    stats:
        Search instrumentation (:class:`SearchStats`).
    """

    first: Subtrajectory
    second: Subtrajectory
    distance: float
    stats: SearchStats

    @property
    def indices(self):
        """``(i, ie, j, je)`` in the paper's notation."""
        return (
            self.first.start,
            self.first.end,
            self.second.start,
            self.second.end,
        )

    def __repr__(self) -> str:
        i, ie, j, je = self.indices
        return (
            f"MotifResult(S[{i}..{ie}] ~ S[{j}..{je}], "
            f"distance={self.distance:.6g})"
        )


def _as_trajectory(obj: Union[Trajectory, np.ndarray]) -> Trajectory:
    if isinstance(obj, Trajectory):
        return obj
    return Trajectory(np.asarray(obj, dtype=np.float64))


def _make_algorithm(algorithm, **kwargs):
    if isinstance(algorithm, str):
        try:
            cls = ALGORITHMS[algorithm.lower()]
        except KeyError:
            raise ReproError(
                f"unknown algorithm {algorithm!r}; known: {sorted(ALGORITHMS)}"
            ) from None
        return cls(**kwargs)
    if kwargs:
        raise ReproError("algorithm options only apply to string algorithm names")
    return algorithm


def discover_motif(
    trajectory: Union[Trajectory, np.ndarray],
    second: Optional[Union[Trajectory, np.ndarray]] = None,
    *,
    min_length: int,
    algorithm: Union[str, object] = "gtm",
    metric: Union[str, GroundMetric, None] = None,
    oracle: Optional[object] = None,
    **algorithm_options,
) -> MotifResult:
    """Discover the motif of one trajectory or between two trajectories.

    Parameters
    ----------
    trajectory:
        The input trajectory (or raw ``(n, d)`` points).
    second:
        Optional second trajectory; switches to the cross-trajectory
        variant of Problem 1.
    min_length:
        The paper's ``xi``: each subtrajectory must span more than
        ``min_length`` steps.
    algorithm:
        ``"brute"``, ``"btm"``, ``"gtm"`` (default), ``"gtm_star"`` or a
        pre-built algorithm instance.
    metric:
        Ground metric name/instance; defaults to haversine for lat/lon
        trajectories and Euclidean for planar ones.
    oracle:
        Optional prebuilt ground oracle over the same trajectories
        (advanced): the search runs on it directly instead of building
        one, e.g. the engine's warm workers pass an attached
        shared-memory matrix.  The caller is responsible for the
        oracle matching the trajectories and metric.
    algorithm_options:
        Forwarded to the algorithm constructor (e.g. ``tau=16``,
        ``variant="tight"``, ``timeout=60.0``).

    Returns
    -------
    MotifResult
        The exact motif (for the exact algorithms) with search stats.
    """
    traj_a = _as_trajectory(trajectory)
    traj_b = None if second is None else _as_trajectory(second)
    algo = _make_algorithm(algorithm, **algorithm_options)
    resolved_metric = get_metric(metric, crs=traj_a.crs)

    if traj_b is None:
        space = self_space(traj_a.n, min_length)
    else:
        space = cross_space(traj_a.n, traj_b.n, min_length)

    stats = SearchStats(
        mode=space.mode, n_rows=space.n_rows, n_cols=space.n_cols, xi=space.xi
    )
    start_time = time.perf_counter()
    if oracle is None:
        oracle = _build_oracle(algo, traj_a, traj_b, resolved_metric, stats)
    distance, best = algo.search(oracle, space, stats)
    stats.time_total = time.perf_counter() - start_time
    if best is None:
        raise ReproError(
            "search finished without a witness pair; this indicates a bug"
        )
    i, ie, j, je = best
    first = traj_a.subtrajectory(i, ie)
    second_sub = (traj_a if traj_b is None else traj_b).subtrajectory(j, je)
    return MotifResult(first, second_sub, float(distance), stats)


def _build_oracle(algo, traj_a, traj_b, metric, stats):
    """Dense matrix for matrix-based algorithms, lazy rows for GTM*."""
    with PhaseTimer(stats, "time_precompute"):
        stats.ground_builds += 1
        if isinstance(algo, GTMStar):
            stats.oracle_source = "lazy"
            return LazyGroundMatrix(
                traj_a.points,
                None if traj_b is None else traj_b.points,
                metric=metric,
                cache_rows=algo.cache_rows,
            )
        stats.oracle_source = "dense"
        points_b = traj_a.points if traj_b is None else traj_b.points
        return DenseGroundMatrix(metric.pairwise(traj_a.points, points_b))


def search_space_for(
    trajectory: Union[Trajectory, np.ndarray],
    second: Optional[Union[Trajectory, np.ndarray]] = None,
    *,
    min_length: int,
) -> SearchSpace:
    """Expose the index geometry for a prospective query (validation)."""
    traj_a = _as_trajectory(trajectory)
    if second is None:
        return self_space(traj_a.n, min_length)
    return cross_space(traj_a.n, _as_trajectory(second).n, min_length)


def max_feasible_min_length(n: int, cross: bool = False) -> int:
    """Largest ``min_length`` for which a query on ``n`` points is feasible."""
    if cross:
        return n - 2
    return (n - 4) // 2
