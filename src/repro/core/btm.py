"""BTM -- bounding-based trajectory motif discovery (paper Algorithm 2).

The search has three phases:

1. precompute the relaxed bound tables (``Rmin`` / ``Cmin`` and the
   band windows) in O(n^2) total -- amortised O(1) per subset;
2. assemble a per-subset combined lower bound and sort all candidate
   subsets ascending (best-first order);
3. expand subsets in that order with the shared DP kernel, maintaining
   the best-so-far ``bsf``; stop at the first subset whose bound proves
   it (and every later subset) cannot beat ``bsf``.

The module also exposes :func:`run_best_first`, the sorted-processing
loop reused by GTM and GTM* for their final point-level phase.

Witness rule
------------
GTM may tighten ``bsf`` with a group *upper* bound before any concrete
candidate pair is known.  An unwitnessed ``bsf`` must not prune subsets
whose bound *equals* it (the optimal pair could be exactly there), so
the processing loop breaks on ``lb > bsf`` when unwitnessed and on
``lb >= bsf`` once a concrete pair is held.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Optional, Tuple

import numpy as np

from .bounds import (
    BoundTables,
    SubsetBounds,
    attribute_pruning,
    relaxed_subset_bounds,
    tight_subset_bounds,
)
from .brute import MotifTimeout
from .dp import Best, expand_subset
from .problem import SearchSpace
from .stats import PhaseTimer, SearchStats

_VARIANTS = ("relaxed", "tight")


def run_best_first(
    oracle,
    space: SearchSpace,
    bounds: SubsetBounds,
    tables: Optional[BoundTables],
    stats: SearchStats,
    bsf: float = math.inf,
    best: Best = None,
    use_kills: bool = True,
    approx_factor: float = 1.0,
    timeout: Optional[float] = None,
    started_at: Optional[float] = None,
    use_cell: bool = True,
    use_cross: bool = True,
    use_band: bool = True,
    bsf_sync: Optional[Callable[[float], float]] = None,
    bsf_sync_every: int = 64,
    positions: Optional[np.ndarray] = None,
    eager_order: bool = False,
) -> Tuple[float, Best]:
    """Process candidate subsets in ascending bound order (Alg. 2 L5-13).

    ``bsf`` / ``best`` may carry over from a grouping phase; ``best`` of
    ``None`` with a finite ``bsf`` marks an unwitnessed bound (see
    module docstring).  ``approx_factor >= 1`` enables the
    (1+eps)-approximate early stop of the extensions module.

    ``bsf_sync`` is the engine's in-chunk best-so-far exchange: every
    ``bsf_sync_every`` processed subsets it is called with the current
    ``bsf`` (publishing it to sibling chunk scans) and returns the
    tightest globally known threshold.  An adopted external threshold
    is *unwitnessed* -- we hold no concrete pair for it -- so ``best``
    is dropped and the tie-keeping break rule applies, exactly as for
    a chunk's seed threshold.  Serial callers leave it ``None``.

    ``positions`` restricts the scan to a subset of the bound arrays
    (ascending; the engine's chunk scans own a strided share of the
    shared arrays).  The loop consumes the ascending order lazily via
    :meth:`SubsetBounds.order_blocks`, so with strong pruning the sort
    cost scales with the subsets actually expanded; ``eager_order``
    restores the single up-front stable argsort (the pre-lazy code
    path, kept for the perf-trajectory benchmark and as a debugging
    reference -- the expansion order is identical either way).
    """
    if approx_factor < 1.0:
        raise ValueError("approx_factor must be >= 1")
    start_time = time.perf_counter() if started_at is None else started_at
    deadline = None if timeout is None else start_time + timeout
    cmin = tables.cmin if (tables is not None and use_kills) else None
    rmin = tables.rmin if (tables is not None and use_kills) else None
    if eager_order:
        with PhaseTimer(stats, "time_sort"):
            if positions is None:
                blocks = [bounds.order()]
            else:
                scope = np.asarray(positions, dtype=np.int64)
                blocks = [scope[np.argsort(bounds.combined[scope], kind="stable")]]
        block_iter = iter(blocks)
    else:
        block_iter = bounds.order_blocks(within=positions)
    n_scope = len(bounds) if positions is None else len(positions)
    expanded = np.zeros(len(bounds), dtype=bool)
    witnessed = best is not None
    dp_started = time.perf_counter()
    count = 0
    exhausted = False
    while not exhausted:
        sort_started = time.perf_counter()
        block = next(block_iter, None)
        stats.time_sort += time.perf_counter() - sort_started
        if block is None:
            break
        for k in block:
            if bsf_sync is not None and count % bsf_sync_every == 0:
                shared = bsf_sync(bsf)
                if shared < bsf:
                    bsf = shared
                    best = None
                    witnessed = False
            lb = bounds.combined[k] * approx_factor
            if lb > bsf or (witnessed and lb >= bsf):
                exhausted = True
                break
            i = int(bounds.i_idx[k])
            j = int(bounds.j_idx[k])
            # An unwitnessed bsf (a group upper bound) may *equal* the
            # true motif distance; nudge the threshold so an equally-
            # good candidate is still recorded as the witness pair.
            threshold = bsf if witnessed else np.nextafter(bsf, np.inf)
            new_bsf, new_best = expand_subset(
                oracle, space, i, j, threshold, best, cmin=cmin, rmin=rmin,
                prune=True, stats=stats,
            )
            if new_best is not best:
                witnessed = True
                bsf, best = new_bsf, new_best
            expanded[k] = True
            if deadline is not None and count % 64 == 0:
                if time.perf_counter() > deadline:
                    raise MotifTimeout(f"search exceeded {timeout:.1f}s")
            count += 1
    stats.time_dp += time.perf_counter() - dp_started
    stats.subsets_total += n_scope
    stats.subsets_expanded += count
    by_cell, by_cross, by_band = attribute_pruning(
        bounds, expanded, bsf / approx_factor,
        use_cell=use_cell, use_cross=use_cross, use_band=use_band,
        scope=None if positions is None else np.asarray(positions, dtype=np.int64),
    )
    stats.pruned_by_cell += by_cell
    stats.pruned_by_cross += by_cross
    stats.pruned_by_band += by_band
    return bsf, best


class BTM:
    """Bounding-based trajectory motif discovery (Algorithm 2).

    Parameters
    ----------
    variant:
        ``"relaxed"`` (default) uses the O(1) amortised bounds of
        Section 4.3; ``"tight"`` pays the per-subset O(n) / O(xi n)
        bounds of Section 4.2 (the Figure 13/14 comparison).
    use_cell / use_cross / use_band:
        Bound-class ablation switches (Figures 15-16).
    use_end_kill:
        Enables the in-subset end-cell pruning (Eq. 9, safe min-form).
    approx_factor:
        ``>= 1``; values above 1 give the (1+eps)-approximate variant.
    timeout:
        Optional wall-clock budget in seconds.
    eager_order:
        Sort the full candidate set up front instead of consuming the
        ascending order lazily (identical expansion order; the lazy
        scheduler only defers sort cost).  Kept as the perf-trajectory
        baseline of the pre-lazy code path.
    """

    name = "btm"

    def __init__(
        self,
        variant: str = "relaxed",
        use_cell: bool = True,
        use_cross: bool = True,
        use_band: bool = True,
        use_end_kill: bool = True,
        approx_factor: float = 1.0,
        timeout: Optional[float] = None,
        eager_order: bool = False,
    ) -> None:
        if variant not in _VARIANTS:
            raise ValueError(f"variant must be one of {_VARIANTS}")
        if approx_factor < 1.0:
            raise ValueError("approx_factor must be >= 1")
        self.variant = variant
        self.use_cell = use_cell
        self.use_cross = use_cross
        self.use_band = use_band
        self.use_end_kill = use_end_kill
        self.approx_factor = approx_factor
        self.timeout = timeout
        self.eager_order = eager_order

    def search(
        self,
        oracle,
        space: SearchSpace,
        stats: Optional[SearchStats] = None,
        bsf0: float = math.inf,
        best0: Best = None,
    ) -> Tuple[float, Best]:
        """Return ``(distance, (i, ie, j, je))`` of the motif.

        ``bsf0`` / ``best0`` seed the best-first loop with an external
        threshold: a witnessed pair (streaming warm starts) or an
        unwitnessed bound (the engine's witness-resolution pass).  A
        correct unwitnessed seed never changes the answer -- only the
        amount of work (see the witness rule in the module docstring).
        """
        stats = stats if stats is not None else SearchStats()
        stats.algorithm = f"{self.name}[{self.variant}]"
        started_at = time.perf_counter()
        with PhaseTimer(stats, "time_bounds"):
            tables = BoundTables.build(space, oracle)
            if self.variant == "tight":
                if not hasattr(oracle, "array"):
                    raise ValueError("tight bounds require a dense ground matrix")
                bounds = tight_subset_bounds(
                    space, oracle.array,
                    use_cell=self.use_cell, use_cross=self.use_cross,
                    use_band=self.use_band,
                )
            else:
                bounds = relaxed_subset_bounds(
                    space, oracle, tables,
                    use_cell=self.use_cell, use_cross=self.use_cross,
                    use_band=self.use_band,
                )
        bsf, best = run_best_first(
            oracle, space, bounds, tables, stats,
            bsf=float(bsf0), best=best0,
            use_kills=self.use_end_kill,
            approx_factor=self.approx_factor,
            timeout=self.timeout,
            started_at=started_at,
            use_cell=self.use_cell,
            use_cross=self.use_cross,
            use_band=self.use_band,
            eager_order=self.eager_order,
        )
        rows, cols = oracle.shape
        dense = hasattr(oracle, "array")
        stats.space_bytes = max(
            stats.space_bytes,
            (8 * rows * cols if dense else 0)  # dG
            + 8 * 4 * cols                     # bound tables
            + 8 * 6 * len(bounds),             # subset bound arrays
        )
        return bsf, best
