"""Motif discovery core: problem geometry, bounds, and the four algorithms."""

from .problem import (
    CROSS_MODE,
    SELF_MODE,
    SearchSpace,
    cross_space,
    self_space,
)
from .stats import PhaseTimer, SearchStats
from .bounds import (
    BoundTables,
    SubsetBounds,
    TightBounds,
    relaxed_subset_bounds,
    relaxed_subset_bounds_for_pairs,
    tight_subset_bounds,
)
from .brute import BruteDP, MotifTimeout
from .btm import BTM, run_best_first
from .grouping import (
    GroupBoundTables,
    GroupLevel,
    children_pairs,
    feasible_group_pairs,
    group_dfd_bounds,
    pattern_bounds_for_pairs,
)
from .gtm import GTM
from .gtm_star import GTMStar
from .motif import (
    ALGORITHMS,
    MotifResult,
    discover_motif,
    max_feasible_min_length,
    search_space_for,
)

__all__ = [
    "ALGORITHMS",
    "BTM",
    "BoundTables",
    "BruteDP",
    "CROSS_MODE",
    "GTM",
    "GTMStar",
    "GroupBoundTables",
    "GroupLevel",
    "MotifResult",
    "MotifTimeout",
    "PhaseTimer",
    "SELF_MODE",
    "SearchSpace",
    "SearchStats",
    "SubsetBounds",
    "TightBounds",
    "children_pairs",
    "cross_space",
    "discover_motif",
    "feasible_group_pairs",
    "group_dfd_bounds",
    "max_feasible_min_length",
    "pattern_bounds_for_pairs",
    "relaxed_subset_bounds",
    "relaxed_subset_bounds_for_pairs",
    "run_best_first",
    "search_space_for",
    "self_space",
    "tight_subset_bounds",
]
