"""BruteDP -- the paper's Algorithm 1 baseline.

Enumerates every candidate subset ``CS_{i,j}`` in natural order and runs
the shared dynamic program over the full ``(ie, je)`` rectangle, with no
bounds, no kills and no early termination.  Time O(n^4) given the
precomputed ground matrix; this is the baseline every other method is
measured against (Figure 18).
"""

from __future__ import annotations

import math
import time
from typing import Optional, Tuple

import numpy as np

from ..errors import ReproError
from .dp import Best, expand_subset
from .problem import SearchSpace
from .stats import SearchStats


class MotifTimeout(ReproError, TimeoutError):
    """Raised when a motif search exceeds its wall-clock budget.

    Mirrors the paper's treatment of BruteDP, which was terminated when
    it exceeded two hours.
    """


class BruteDP:
    """Brute-force motif discovery with shared dynamic programming."""

    name = "brute_dp"

    def __init__(self, timeout: Optional[float] = None) -> None:
        self.timeout = timeout

    def search(
        self,
        oracle,
        space: SearchSpace,
        stats: Optional[SearchStats] = None,
        bsf0: float = math.inf,
        best0: Best = None,
    ) -> Tuple[float, Best]:
        """Return ``(distance, (i, ie, j, je))`` of the motif.

        ``bsf0`` / ``best0`` seed the scan with an external threshold.
        An unwitnessed seed (``best0 is None``) is nudged one ulp up so
        a candidate exactly equal to it is still recorded as witness.
        """
        stats = stats if stats is not None else SearchStats()
        stats.algorithm = self.name
        start_time = time.perf_counter()
        deadline = None if self.timeout is None else start_time + self.timeout
        bsf = float(bsf0)
        if best0 is None and bsf != math.inf:
            bsf = float(np.nextafter(bsf, np.inf))
        best: Best = best0
        n_subsets = 0
        for i, j in space.start_pairs():
            bsf, best = expand_subset(
                oracle, space, i, j, bsf, best, prune=False, stats=stats
            )
            n_subsets += 1
            if deadline is not None and n_subsets % 64 == 0:
                if time.perf_counter() > deadline:
                    raise MotifTimeout(
                        f"BruteDP exceeded {self.timeout:.1f}s "
                        f"after {n_subsets} subsets"
                    )
        stats.subsets_total = n_subsets
        stats.subsets_expanded = n_subsets
        stats.time_dp += time.perf_counter() - start_time
        rows, cols = oracle.shape
        # Space model: dG matrix (when dense) plus two DP rows.
        dense = hasattr(oracle, "array")
        stats.space_bytes = max(
            stats.space_bytes, (8 * rows * cols if dense else 0) + 16 * cols
        )
        return bsf, best
