"""The :class:`MotifService` daemon core: one warm engine, many requests.

The serving layer the paper's filter cascade earns its keep in: a
process that owns **one** warm :class:`~repro.engine.MotifEngine`
(caches, pool, shared-memory segments) plus a registry of
:mod:`repro.store` snapshots, and answers discover / discover_many /
top_k / join / join_top_k / cluster requests against them.  Three
serving mechanisms live here, independent of the HTTP transport
(:mod:`repro.service.server`):

* **Request coalescing** -- every request is resolved to the *same
  content-addressed key the engine's planner caches by*
  (:func:`repro.engine.planner.discover_result_key` and friends).  An
  identical request arriving while one is queued or executing attaches
  to the in-flight computation instead of enqueueing a duplicate, so a
  burst of equal queries costs one search regardless of fan-in.
* **Deadlines** -- a request may carry ``timeout`` seconds.  Expiry is
  enforced at admission, at dequeue, and -- for the discover family --
  *inside* the search, by handing the remaining budget to the
  algorithms' existing :class:`~repro.core.brute.MotifTimeout`
  machinery.  An expired request answers ``deadline_exceeded`` (HTTP
  504).  Coalescing respects deadlines both ways: a request attaches
  to an in-flight computation only when that computation's budget
  covers its own deadline (a shorter-budgeted sibling must never fail
  it with a borrowed 504), and each waiter still gives up at its own
  deadline while the shared computation runs.
* **Bounded admission** -- at most ``max_pending`` requests may queue;
  the next one is refused immediately with ``overloaded`` (HTTP 429)
  rather than building an unbounded backlog.

Snapshots loaded via :meth:`MotifService.load_snapshot` are mapped
read-only (``numpy.memmap``) and **seeded into the engine's index
cache** under the exact key the corpus workloads look up
(:func:`repro.engine.corpus.corpus_index_cache_key`), so a join or
top-k against a snapshot corpus reuses the persisted summaries --
zero simplification DPs, observable as ``summary_builds == 0`` in the
reply's index statistics -- and pool workers re-map the snapshot files
themselves (one host-wide page cache, nothing pickled or copied).
"""

from __future__ import annotations

import logging
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..core.brute import MotifTimeout
from ..distances.ground import get_metric
from ..engine import MotifEngine
from ..engine import planner
from ..engine.cache import fingerprint_points, metric_key
from ..engine.corpus import corpus_index_cache_key
from ..errors import ReproError, WorkerCrashError
from ..faults import fail_at
from ..store import (
    SnapshotError,
    load_snapshot_shards,
    snapshot_fingerprint,
    snapshot_trajectories,
)
from ..trajectory import Trajectory
from .protocol import (
    OPS,
    BadRequestError,
    DeadlineExceededError,
    OverloadedError,
    ServiceDegradedError,
    ServiceError,
    ServiceUnavailableError,
    UnknownSnapshotError,
    WorkerCrashedError,
)


_LOG = logging.getLogger("repro.service")

# ----------------------------------------------------------------------
# Metrics (registered at import, before any fork, so every fleet
# worker and pool child agrees on the shared slab's cell offsets)
# ----------------------------------------------------------------------
#: Every ``stats()['counters']`` key.  Admission (accepted/coalesced/
#: rejected) and computation outcomes (completed/failed/
#: deadline_expired) are disjoint families: outcomes sum to accepted
#: once the queue drains.  waiter_timeouts counts callers who gave up
#: waiting (their computation may still complete) -- it overlaps, by
#: design.  client_disconnects / snapshot_reloads / reload_errors
#: track transport and registry churn outside the request families,
#: and the tree_* totals fold every tree-walking reply's traversal
#: accounting (join/range/knn).
_COUNTER_KEYS = (
    "accepted", "coalesced", "rejected", "completed", "failed",
    "deadline_expired", "waiter_timeouts", "client_disconnects",
    "snapshot_reloads", "reload_errors", "worker_crashes",
    "breaker_opens", "breaker_rejections", "breaker_recoveries",
    "tree_nodes_visited", "tree_nodes_pruned", "tree_leaves_scanned",
)
_EVENTS = obs.REGISTRY.counter(
    "repro_service_events_total",
    "service admission, outcome, breaker and registry event counts",
    labels=("event",), values=[(key,) for key in _COUNTER_KEYS],
)
_REQUEST_SECONDS = obs.REGISTRY.histogram(
    "repro_service_request_seconds",
    "request execution latency by operation",
    labels=("op",), values=[(op,) for op in OPS],
)
_BREAKER_STATE = obs.REGISTRY.gauge(
    "repro_service_breaker_state",
    "circuit breaker state (0=closed, 1=half_open, 2=open)",
)
_BREAKER_CODES = {"closed": 0, "half_open": 1, "open": 2}


def service_counter_totals() -> Dict[str, int]:
    """Merged service counters across every process sharing the registry."""
    return {key: int(_EVENTS.labels(key).value()) for key in _COUNTER_KEYS}


def service_counters_per_process() -> Dict[int, Dict[str, int]]:
    """``{pid: {counter: value}}`` over live processes (the fleet view)."""
    out: Dict[int, Dict[str, int]] = {}
    for key in _COUNTER_KEYS:
        for pid, value in _EVENTS.labels(key).per_process().items():
            out.setdefault(pid, {})[key] = int(value)
    return out


class _ServiceCounters:
    """Per-instance view over the shared service counter family.

    Increments land in the fork-shared registry -- the series
    ``GET /metrics`` scrapes and the fleet master merges -- while
    reads subtract the baseline captured at construction, so a fresh
    :class:`MotifService` in a long-lived process still reports
    counters that start at zero.  With metrics disabled the counts
    fall back to a plain process-local dict: ``stats()`` never goes
    dark.
    """

    __slots__ = ("_children", "_base", "_plain")

    def __init__(self) -> None:
        self._plain: Optional[Dict[str, int]] = None
        self._children: Dict[str, obs.Counter] = {}
        self._base: Dict[str, float] = {}
        if not obs.metrics_enabled():
            self._plain = dict.fromkeys(_COUNTER_KEYS, 0)
            return
        self._children = {key: _EVENTS.labels(key) for key in _COUNTER_KEYS}
        self._base = {
            key: child.local_value()
            for key, child in self._children.items()
        }

    def add(self, key: str, n: int = 1) -> None:
        if self._plain is not None:
            self._plain[key] += n
        else:
            self._children[key].inc(n)

    def snapshot(self) -> Dict[str, int]:
        if self._plain is not None:
            return dict(self._plain)
        return {
            key: int(child.local_value() - self._base[key])
            for key, child in self._children.items()
        }


# ----------------------------------------------------------------------
# Result encoding (JSON-safe plain types only)
# ----------------------------------------------------------------------
def _encode_motif(result) -> dict:
    return {
        "distance": float(result.distance),
        "indices": [int(v) for v in result.indices],
        "algorithm": result.stats.algorithm,
        "subsets_expanded": int(result.stats.subsets_expanded),
        "time_total": float(result.stats.time_total),
    }


def _encode_join_stats(stats) -> dict:
    return {
        "pairs_total": int(stats.pairs_total),
        "pruned_index": int(stats.pruned_index),
        "pruned_endpoint": int(stats.pruned_endpoint),
        "pruned_bbox": int(stats.pruned_bbox),
        "pruned_hausdorff": int(stats.pruned_hausdorff),
        "decisions": int(stats.decisions),
        "matches": int(stats.matches),
        "details": stats.details,
    }


@dataclass
class _Snapshot:
    """One loaded snapshot: its shard indexes, corpus views, metadata.

    A plain snapshot is the one-shard case (``shard_items is None``);
    a K-shard set keeps the per-shard trajectory lists so corpus
    queries can scatter across shards and merge canonically.
    ``generation`` counts hot-reload swaps of this registration.
    """

    name: str
    path: str
    indexes: List[object]
    trajectories: List[Trajectory]
    shard_items: Optional[List[List[Trajectory]]] = None
    content_key: Optional[str] = None
    verify: bool = False
    generation: int = 0

    def describe(self) -> dict:
        manifest = getattr(self.indexes[0], "snapshot_manifest", {}) or {}
        return {
            "path": self.path,
            "n": len(self.trajectories),
            "content_key": self.content_key,
            "metric": manifest.get("metric"),
            "shards": len(self.indexes),
            "generation": self.generation,
        }


@dataclass
class _Request:
    """One admitted computation and everyone waiting on it."""

    op: str
    key: Optional[tuple]
    runner: Callable[[Optional[float]], object]
    deadline: Optional[float]
    event: threading.Event = field(default_factory=threading.Event)
    result: object = None
    error: Optional[BaseException] = None
    #: This request is the half-open circuit breaker's single probe;
    #: its outcome decides whether the breaker closes or re-opens.
    probe: bool = False
    #: ``(trace_id, root span id)`` of the submitter that created this
    #: computation; the serving thread joins the same trace so engine
    #: phases and pool-worker spans nest under the admission span.
    #: Never part of the coalescing key (RPR003: ids are not content).
    trace: Optional[Tuple[str, str]] = None

    def covers(self, deadline: Optional[float]) -> bool:
        """Whether this computation's budget covers ``deadline``.

        Attaching to a computation that will be cut short *earlier*
        than the new request's own deadline would fail the waiter with
        someone else's 504, so coalescing requires the in-flight
        budget to be at least as generous.
        """
        if self.deadline is None:
            return True
        return deadline is not None and self.deadline >= deadline


class MotifService:
    """A persistent motif-query service over one warm engine.

    Parameters
    ----------
    workers:
        Worker-process count of the owned engine (ignored when
        ``engine`` is supplied).
    service_workers:
        Serving threads executing admitted requests.  Engine pool use
        is internally exclusive, so serving threads overlap on cache
        hits, coalesced waits and independent serial work.
    max_pending:
        Admission bound: requests that would grow the queue beyond
        this are refused with :class:`OverloadedError` (HTTP 429).
    coalesce:
        Share one computation among identical in-flight requests
        (content-addressed by the planner's cache keys).  ``False``
        turns every request into its own computation -- the
        benchmark's baseline.
    snapshot_watch_interval:
        Seconds between hot-reload polls of every registered
        snapshot's manifest fingerprint (``None`` disables the
        watcher).  A changed ``content_key`` atomically swaps in the
        re-mapped index without dropping in-flight requests; see
        :meth:`check_snapshots`.
    slow_query_threshold:
        Requests whose execution exceeds this many seconds emit one
        WARNING line on the ``repro.service`` logger, with the
        request's span tree attached when it was traced (``None``
        disables the log).
    breaker_threshold / breaker_cooldown:
        Circuit breaker: after ``breaker_threshold`` *consecutive*
        infrastructure failures (unexpected engine errors, exhausted
        worker re-dispatch, snapshot reload errors) the service trips
        **open** and refuses new work with ``degraded`` (HTTP 503 +
        ``Retry-After``) for ``breaker_cooldown`` seconds; then one
        **half-open** probe request is admitted, and its outcome
        closes or re-opens the breaker.  Bad requests and deadline
        expiries never count -- they are the caller's failures, not
        the service's.
    engine / engine_kwargs:
        Adopt a caller-owned engine, or forward construction kwargs to
        the owned one (e.g. ``result_cache_size=0`` for benchmarks).
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        service_workers: int = 2,
        max_pending: int = 32,
        coalesce: bool = True,
        snapshot_watch_interval: Optional[float] = None,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 5.0,
        slow_query_threshold: Optional[float] = None,
        engine: Optional[MotifEngine] = None,
        engine_kwargs: Optional[dict] = None,
    ) -> None:
        if service_workers < 1:
            raise ValueError("service_workers must be at least 1")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if snapshot_watch_interval is not None:
            snapshot_watch_interval = float(snapshot_watch_interval)
            if snapshot_watch_interval <= 0:
                raise ValueError("snapshot_watch_interval must be positive")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        if breaker_cooldown <= 0:
            raise ValueError("breaker_cooldown must be positive")
        if slow_query_threshold is not None:
            slow_query_threshold = float(slow_query_threshold)
            if slow_query_threshold <= 0:
                raise ValueError("slow_query_threshold must be positive")
        self._owns_engine = engine is None
        self.engine = engine if engine is not None else MotifEngine(
            workers=workers, **(engine_kwargs or {})
        )
        self.service_workers = int(service_workers)
        self.max_pending = int(max_pending)
        self.coalesce = bool(coalesce)
        self.snapshot_watch_interval = snapshot_watch_interval
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown = float(breaker_cooldown)
        self.slow_query_threshold = slow_query_threshold
        # Circuit breaker state, guarded by _cond: closed (serving),
        # open (shedding), half_open (one probe in flight).
        self._breaker_state = "closed"
        _BREAKER_STATE.set(_BREAKER_CODES["closed"])
        self._breaker_failures = 0
        self._breaker_opened_at = 0.0
        self._snapshots: Dict[str, _Snapshot] = {}
        self._watch_stop = threading.Event()
        self._watch_thread: Optional[threading.Thread] = None
        self._cond = threading.Condition()
        self._queue: "deque[_Request]" = deque()
        self._inflight: Dict[tuple, _Request] = {}
        self._threads: List[threading.Thread] = []
        self._running = False
        # Counter semantics live on _COUNTER_KEYS; increments go to
        # the fork-shared registry, reads are per-instance deltas.
        self._counters = _ServiceCounters()
        #: Test seam: called (with the request) in the serving thread
        #: right before execution; lets tests hold computations
        #: in-flight deterministically.
        self._before_execute: Optional[Callable[[_Request], None]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MotifService":
        with self._cond:
            if self._running:
                return self
            self._running = True
        self._threads = [
            threading.Thread(
                target=self._serve_loop, name=f"motif-serve-{k}", daemon=True
            )
            for k in range(self.service_workers)
        ]
        for thread in self._threads:
            thread.start()
        if self.snapshot_watch_interval is not None:
            self._watch_stop.clear()
            self._watch_thread = threading.Thread(
                target=self._watch_loop,
                name="motif-snapshot-watch",
                daemon=True,
            )
            self._watch_thread.start()
        return self

    def stop(self) -> None:
        """Drain nothing: refuse the queue, join threads, close the engine."""
        self._watch_stop.set()
        if self._watch_thread is not None:
            self._watch_thread.join(timeout=10.0)
            self._watch_thread = None
        with self._cond:
            self._running = False
            pending = list(self._queue)
            self._queue.clear()
            self._inflight.clear()
            self._cond.notify_all()
        for req in pending:
            req.error = ServiceUnavailableError("service stopped")
            req.event.set()
        for thread in self._threads:
            thread.join(timeout=10.0)
        self._threads = []
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "MotifService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def load_snapshot(self, name: str, path, *, verify: bool = False) -> dict:
        """Map a :mod:`repro.store` snapshot and register it as ``name``.

        Accepts plain snapshots and K-shard sets alike.  Every
        restored shard index is seeded into the engine's tables cache
        under :func:`~repro.engine.corpus.corpus_index_cache_key`, so
        corpus queries referencing this snapshot reuse its persisted
        summaries instead of rebuilding them; whole-corpus joins over
        a shard set scatter per shard and merge canonically.
        """
        snap = self._map_snapshot(str(name), path, verify=verify)
        with self._cond:
            prior = self._snapshots.get(snap.name)
            if prior is not None:
                snap.generation = prior.generation + 1
            self._snapshots[snap.name] = snap
        return snap.describe()

    def _map_snapshot(self, name: str, path, *, verify: bool) -> _Snapshot:
        """Map ``path`` (snapshot or shard set) into a registry entry."""
        fail_at("service.reload")
        fingerprint = snapshot_fingerprint(path)
        indexes = load_snapshot_shards(path, mmap=True, verify=verify)
        shard_items = [snapshot_trajectories(index) for index in indexes]
        for index, items in zip(indexes, shard_items):
            fps = planner.corpus_fingerprint(items)
            self.engine._oracles.tables.put(
                corpus_index_cache_key(fps, index.metric), index
            )
        return _Snapshot(
            name=name,
            path=str(path),
            indexes=list(indexes),
            trajectories=[t for items in shard_items for t in items],
            shard_items=shard_items if len(indexes) > 1 else None,
            content_key=fingerprint,
            verify=verify,
        )

    def check_snapshots(self) -> List[str]:
        """Hot-reload pass: re-map registered snapshots whose files changed.

        For each registered snapshot the manifest ``content_key`` is
        probed (one small JSON read -- manifests are written last via
        atomic rename, so a changed fingerprint means all array bytes
        are on disk).  A changed snapshot is re-mapped and its
        registration swapped atomically under the service lock:
        requests prepared before the swap keep their already-resolved
        trajectory views (replaced files' old inodes stay mapped until
        the index is garbage collected), requests prepared after it
        see the new corpus.  Nothing in flight is dropped.  A reload
        that fails keeps the old registration serving and counts
        ``reload_errors``.  Returns the names that were swapped.
        """
        with self._cond:
            snaps = list(self._snapshots.values())
        reloaded: List[str] = []
        for snap in snaps:
            try:
                fingerprint = snapshot_fingerprint(snap.path)
            except (SnapshotError, OSError, ValueError):
                self._note_reload_error()
                continue
            if fingerprint == snap.content_key:
                continue
            try:
                with obs.span("service.reload", snapshot=snap.name):
                    fresh = self._map_snapshot(
                        snap.name, snap.path, verify=snap.verify
                    )
            except (SnapshotError, OSError, ValueError):
                self._note_reload_error()
                continue
            fresh.generation = snap.generation + 1
            with self._cond:
                # An explicit load_snapshot() racing the watcher wins:
                # only swap the exact registration that was probed.
                if self._snapshots.get(snap.name) is not snap:
                    continue
                self._snapshots[snap.name] = fresh
                self._counters.add("snapshot_reloads")
                # A healthy reload is evidence against a brewing
                # infrastructure outage.
                self._breaker_failures = 0
            reloaded.append(snap.name)
        return reloaded

    def _note_reload_error(self) -> None:
        """Count one failed reload; repeated ones trip the breaker."""
        with self._cond:
            self._counters.add("reload_errors")
            self._breaker_failure_locked()

    def _watch_loop(self) -> None:
        while not self._watch_stop.wait(self.snapshot_watch_interval):
            self.check_snapshots()

    def note_client_disconnect(self) -> None:
        """Count a peer that vanished mid-exchange (transport churn)."""
        with self._cond:
            self._counters.add("client_disconnects")

    def snapshot_names(self) -> List[str]:
        with self._cond:
            return sorted(self._snapshots)

    def _snapshot(self, name) -> _Snapshot:
        with self._cond:
            snap = self._snapshots.get(name)
        if snap is None:
            raise UnknownSnapshotError(
                f"no snapshot {name!r} loaded (have: {self.snapshot_names()})"
            )
        return snap

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._cond:
            counters = self._counters.snapshot()
            pending = len(self._queue)
            inflight = len(self._inflight)
            snapshots = {
                name: snap.describe() for name, snap in self._snapshots.items()
            }
            breaker = {
                "state": self._breaker_state,
                "consecutive_failures": self._breaker_failures,
                "threshold": self.breaker_threshold,
                "cooldown": self.breaker_cooldown,
            }
        return {
            "pid": os.getpid(),
            "counters": counters,
            "pending": pending,
            "inflight": inflight,
            "max_pending": self.max_pending,
            "coalesce": self.coalesce,
            "service_workers": self.service_workers,
            "breaker": breaker,
            "snapshots": snapshots,
            "engine": {
                "cache": self.engine.cache_info(),
                "transfer": self.engine.transfer_info(),
            },
        }

    def health(self) -> dict:
        with self._cond:
            running = self._running
            breaker = self._breaker_state
        # An open breaker is an outage for status-code health checks
        # (load balancers must route around it); half-open is serving
        # a probe and about to recover, so it stays routable.
        return {
            "ok": running and breaker != "open",
            "degraded": breaker != "closed",
            "breaker": breaker,
            "pid": os.getpid(),
            "snapshots": self.snapshot_names(),
        }

    # ------------------------------------------------------------------
    # Circuit breaker (all helpers expect _cond held)
    # ------------------------------------------------------------------
    def _set_breaker_locked(self, state: str) -> None:
        """One choke point for state flips: attribute plus gauge."""
        self._breaker_state = state
        _BREAKER_STATE.set(_BREAKER_CODES[state])

    def _breaker_failure_locked(self, probe: bool = False) -> None:
        """Record one infrastructure failure; trip the breaker if due."""
        self._breaker_failures += 1
        tripped = probe or (
            self._breaker_state == "closed"
            and self._breaker_failures >= self.breaker_threshold
        )
        if tripped and self._breaker_state != "open":
            self._set_breaker_locked("open")
            self._breaker_opened_at = time.monotonic()
            self._counters.add("breaker_opens")

    def _breaker_gate_locked(self) -> bool:
        """Admission gate; True = this request may be the probe.

        The caller flips the state to half-open only after the probe
        request is actually enqueued -- a probe refused by the
        admission bound must not wedge the breaker in half-open with
        nothing in flight.
        """
        if self._breaker_state == "closed":
            return False
        if self._breaker_state == "open":
            remaining = (
                self._breaker_opened_at + self.breaker_cooldown
                - time.monotonic()
            )
            if remaining > 0:
                self._counters.add("breaker_rejections")
                raise ServiceDegradedError(
                    f"circuit breaker open ({self._breaker_failures} "
                    f"consecutive failures); retrying in {remaining:.3f}s",
                    retry_after=remaining,
                )
            return True
        # half_open: exactly one probe is in flight; shed the rest.
        self._counters.add("breaker_rejections")
        raise ServiceDegradedError(
            "circuit breaker half-open; a probe request is in flight",
            retry_after=self.breaker_cooldown,
        )

    def _breaker_observe_locked(self, req: _Request, outcome: str,
                                infra: bool) -> None:
        """Fold one computation's outcome into the breaker state."""
        if infra:
            self._breaker_failure_locked(probe=req.probe)
            return
        if outcome == "completed":
            self._breaker_failures = 0
            if req.probe and self._breaker_state == "half_open":
                self._set_breaker_locked("closed")
                self._counters.add("breaker_recoveries")
        elif req.probe and self._breaker_state == "half_open":
            # The probe resolved without proving the service healthy
            # (expired deadline, bad request): re-open for another
            # cooldown rather than guessing either way.
            self._set_breaker_locked("open")
            self._breaker_opened_at = time.monotonic()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self, op: str, params: dict, timeout: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> Tuple[object, bool]:
        """Answer one request; returns ``(result, coalesced)``.

        Blocks until the computation completes or ``timeout`` seconds
        elapse (:class:`DeadlineExceededError`).  This is the whole
        serving path -- the HTTP layer is a thin wrapper around it.

        ``trace_id`` (the ``X-Repro-Trace-Id`` header value) joins the
        request to that trace: a ``service.request`` root span covers
        admission through completion, and the serving thread adopts
        the same context while executing, so engine phases and
        pool-worker spans nest under it.  Without ``trace_id`` an
        already-active trace on the calling thread is used; with
        neither, the request runs record-free.
        """
        adopted = False
        if trace_id is not None and obs.trace_enabled():
            obs.set_trace(str(trace_id), None)
            adopted = True
        try:
            with obs.span("service.request", op=op) as sp:
                return self._submit(op, params, timeout, sp)
        finally:
            if adopted:
                obs.clear_trace()

    def _submit(
        self, op: str, params: dict, timeout: Optional[float],
        sp,
    ) -> Tuple[object, bool]:
        if op not in OPS:
            raise BadRequestError(
                f"unknown operation {op!r}; known: {', '.join(OPS)}"
            )
        if timeout is not None and float(timeout) <= 0:
            raise BadRequestError("timeout must be positive seconds")
        if not isinstance(params, dict):
            raise BadRequestError("params must be a JSON object")
        key, runner = self._prepare(op, params)
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        with self._cond:
            if not self._running:
                raise ServiceUnavailableError("service is not running")
            probe = self._breaker_gate_locked()
            req = None
            if self.coalesce and key is not None and not probe:
                # A probe must exercise the execution path itself, so
                # it never attaches to a pre-trip computation.
                candidate = self._inflight.get(key)
                # Attach only when the in-flight budget covers this
                # request's own deadline -- a shorter-budgeted sibling
                # must never fail us with its 504.
                if candidate is not None and candidate.covers(deadline):
                    req = candidate
            if req is not None:
                self._counters.add("coalesced")
                coalesced = True
                if sp is not None:
                    # The duplicate's span *links* to the primary's
                    # root span instead of parenting under it -- the
                    # computation belongs to the primary's tree.
                    sp.attrs["coalesced"] = True
                    if req.trace is not None:
                        sp.links.append(req.trace[1])
            else:
                if len(self._queue) >= self.max_pending:
                    self._counters.add("rejected")
                    raise OverloadedError(
                        f"admission queue full ({self.max_pending} pending)"
                    )
                req = _Request(op=op, key=key, runner=runner,
                               deadline=deadline, probe=probe,
                               trace=(None if sp is None
                                      else (sp.trace_id, sp.span_id)))
                if probe:
                    self._set_breaker_locked("half_open")
                if key is not None:
                    # Latest entry wins the key: future duplicates
                    # coalesce onto the most generously budgeted
                    # computation (identity-guarded on removal).
                    self._inflight[key] = req
                self._queue.append(req)
                self._counters.add("accepted")
                self._cond.notify()
                coalesced = False
        remaining = None if deadline is None else deadline - time.monotonic()
        finished = req.event.wait(remaining)
        if not finished:
            with self._cond:
                self._counters.add("waiter_timeouts")
            raise DeadlineExceededError(
                f"{op} missed its {float(timeout):.3f}s deadline"
            )
        if req.error is not None:
            raise req.error
        return req.result, coalesced

    # ------------------------------------------------------------------
    # Serving loop
    # ------------------------------------------------------------------
    def _serve_loop(self) -> None:
        while True:
            with self._cond:
                while self._running and not self._queue:
                    self._cond.wait()
                if not self._running:
                    return
                req = self._queue.popleft()
            outcome = "failed"
            # Infrastructure failures (our fault) feed the circuit
            # breaker; client failures (bad requests, expired
            # deadlines) never do.
            infra = False
            started = time.perf_counter()
            if req.trace is not None:
                # Join the submitter's trace: the execute span (and
                # everything the engine opens below it) parents under
                # the primary's service.request span.
                obs.set_trace(*req.trace)
            try:
                if req.deadline is not None and time.monotonic() > req.deadline:
                    raise DeadlineExceededError(
                        f"{req.op} expired while queued"
                    )
                hook = self._before_execute
                if hook is not None:
                    hook(req)
                with obs.span("service.execute", op=req.op):
                    fail_at("service.execute")
                    req.result = req.runner(req.deadline)
                outcome = "completed"
            except MotifTimeout as exc:
                req.error = DeadlineExceededError(str(exc))
                outcome = "deadline_expired"
            except WorkerCrashError as exc:
                # The engine already rebuilt its pool; surface the
                # typed retryable error, not a generic bad request.
                req.error = WorkerCrashedError(str(exc))
                outcome = "failed"
                infra = True
                with self._cond:
                    self._counters.add("worker_crashes")
            except ServiceError as exc:
                req.error = exc
                outcome = (
                    "deadline_expired"
                    if isinstance(exc, DeadlineExceededError)
                    else "failed"
                )
                # A runner raising the untyped base class is an
                # internal failure; typed subclasses are caller-owned.
                infra = type(exc) is ServiceError
            except (ReproError, ValueError, TypeError, KeyError,
                    IndexError) as exc:
                req.error = BadRequestError(str(exc))
                outcome = "failed"
            except Exception as exc:  # pragma: no cover - defensive
                req.error = ServiceError(f"internal error: {exc}")
                outcome = "failed"
                infra = True
            finally:
                obs.clear_trace()
                elapsed = time.perf_counter() - started
                _REQUEST_SECONDS.labels(req.op).observe(elapsed)
                if (self.slow_query_threshold is not None
                        and elapsed >= self.slow_query_threshold):
                    self._log_slow_query(req, elapsed)
                with self._cond:
                    self._counters.add(outcome)
                    self._breaker_observe_locked(req, outcome, infra)
                    if req.key is not None and self._inflight.get(req.key) is req:
                        del self._inflight[req.key]
                req.event.set()

    def _log_slow_query(self, req: _Request, elapsed: float) -> None:
        """One WARNING per over-threshold request, span tree attached.

        The tree comes from the in-process ring, so it holds this
        process's spans for the trace (pool-worker spans live in the
        children's rings; the JSONL sink has the cross-process view).
        """
        tree = ""
        if req.trace is not None:
            rendered = obs.format_trace(obs.recent_records(req.trace[0]))
            if rendered:
                tree = "\n" + rendered
        _LOG.warning(
            "slow query: op=%s took %.3fs (threshold %.3fs)%s",
            req.op, elapsed, self.slow_query_threshold, tree,
        )

    # ------------------------------------------------------------------
    # Request resolution (specs -> engine calls + coalescing keys)
    # ------------------------------------------------------------------
    def _trajectory_from_spec(self, spec) -> Trajectory:
        if isinstance(spec, dict):
            snap = self._snapshot(spec.get("snapshot"))
            item = spec.get("item")
            if item is None:
                raise BadRequestError(
                    "trajectory snapshot spec needs an 'item' index"
                )
            try:
                return snap.trajectories[int(item)]
            except (IndexError, ValueError) as exc:
                raise BadRequestError(
                    f"snapshot {snap.name!r} has no item {item!r}"
                ) from exc
        try:
            points = np.asarray(spec, dtype=np.float64)
            return Trajectory(points)
        except (ValueError, TypeError, ReproError) as exc:
            raise BadRequestError(f"bad trajectory spec: {exc}") from exc

    def _corpus_from_spec(self, spec) -> List[Trajectory]:
        if isinstance(spec, dict):
            snap = self._snapshot(spec.get("snapshot"))
            items = spec.get("items")
            if items is None:
                return snap.trajectories
            try:
                return [snap.trajectories[int(i)] for i in items]
            except (IndexError, ValueError, TypeError) as exc:
                raise BadRequestError(
                    f"bad items for snapshot {snap.name!r}: {exc}"
                ) from exc
        if not isinstance(spec, (list, tuple)) or not spec:
            raise BadRequestError("corpus spec must be a non-empty list")
        return [self._trajectory_from_spec(item) for item in spec]

    def _corpus_and_shards_from_spec(
        self, spec
    ) -> Tuple[List[Trajectory], Optional[List[List[Trajectory]]]]:
        """``(corpus, per-shard lists)`` -- one snapshot resolution.

        Only a snapshot reference without an ``items`` subset scatters:
        explicit item picks and inline corpora span shard boundaries,
        so they run through the ordinary single-corpus path.  Both
        views come from the same registry lookup, so a hot-reload swap
        can never mix generations within one request.
        """
        if isinstance(spec, dict) and spec.get("items") is None:
            snap = self._snapshot(spec.get("snapshot"))
            return snap.trajectories, snap.shard_items
        return self._corpus_from_spec(spec), None

    def _note_tree_stats(self, index_stats) -> None:
        """Fold one reply's tree-traversal accounting into /stats."""
        if not index_stats:
            return
        with self._cond:
            for name in ("nodes_visited", "nodes_pruned", "leaves_scanned"):
                self._counters.add(
                    f"tree_{name}", int(index_stats.get(name, 0))
                )

    @staticmethod
    def _index_mode(value):
        """The request's ``index`` knob, normalized; bad values are 400s."""
        try:
            return planner.normalize_index_mode(value)
        except ReproError as exc:
            raise BadRequestError(str(exc)) from exc

    @staticmethod
    def _options_from(params: dict) -> dict:
        options = params.get("options", {})
        if not isinstance(options, dict):
            raise BadRequestError("options must be a JSON object")
        return dict(options)

    @staticmethod
    def _remaining(deadline: Optional[float]) -> Optional[float]:
        if deadline is None:
            return None
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise DeadlineExceededError("deadline expired before the search")
        return remaining

    def _prepare(self, op: str, params: dict):
        """Resolve ``params`` into ``(coalescing key, runner)``.

        The key reuses the planner's content-addressed cache keys, so
        "identical request" means exactly what "cache hit" means in
        the engine -- equal content, metric, geometry and options --
        never object identity.  Resolution errors surface as 400s
        before admission (they consume no queue slot).
        """
        try:
            return getattr(self, f"_prepare_{op}")(params)
        except KeyError as exc:
            raise BadRequestError(f"missing required param: {exc}") from exc

    def _prepare_discover(self, params: dict):
        traj = self._trajectory_from_spec(params["trajectory"])
        second = (
            self._trajectory_from_spec(params["second"])
            if params.get("second") is not None
            else None
        )
        min_length = int(params["min_length"])
        algorithm = str(params.get("algorithm") or self.engine.algorithm)
        metric = params.get("metric")
        options = self._options_from(params)
        resolved = get_metric(metric, crs=traj.crs)
        key = (
            "svc", "discover",
            planner.discover_result_key(
                traj, second, resolved, min_length, algorithm, options
            ),
        )

        def runner(deadline):
            opts = dict(options)
            remaining = self._remaining(deadline)
            if remaining is not None:
                opts["timeout"] = remaining
            result = self.engine.discover(
                traj, second, min_length=min_length, algorithm=algorithm,
                metric=metric, cacheable=remaining is None, **opts,
            )
            return _encode_motif(result)

        return key, runner

    def _prepare_discover_many(self, params: dict):
        raw_items = params["items"]
        if not isinstance(raw_items, (list, tuple)) or not raw_items:
            raise BadRequestError("items must be a non-empty list")
        items = []
        for raw in raw_items:
            if isinstance(raw, dict) and "pair" in raw:
                a, b = raw["pair"]
                items.append((
                    self._trajectory_from_spec(a),
                    self._trajectory_from_spec(b),
                ))
            else:
                items.append(self._trajectory_from_spec(raw))
        min_length = int(params["min_length"])
        algorithm = str(params.get("algorithm") or self.engine.algorithm)
        metric = params.get("metric")
        options = self._options_from(params)
        item_keys = []
        for item in items:
            traj, second = item if isinstance(item, tuple) else (item, None)
            resolved = get_metric(metric, crs=traj.crs)
            item_keys.append(planner.discover_result_key(
                traj, second, resolved, min_length, algorithm, options
            ))
        key = ("svc", "discover_many", tuple(item_keys))

        def runner(deadline):
            opts = dict(options)
            remaining = self._remaining(deadline)
            if remaining is not None:
                opts["timeout"] = remaining
            results = self.engine.discover_many(
                items, min_length=min_length, algorithm=algorithm,
                metric=metric, **opts,
            )
            return [_encode_motif(result) for result in results]

        return key, runner

    def _prepare_top_k(self, params: dict):
        traj = self._trajectory_from_spec(params["trajectory"])
        second = (
            self._trajectory_from_spec(params["second"])
            if params.get("second") is not None
            else None
        )
        min_length = int(params["min_length"])
        k = int(params.get("k", 5))
        metric = params.get("metric")
        resolved = get_metric(metric, crs=traj.crs)
        key = (
            "svc", "top_k",
            planner.topk_result_key(traj, second, resolved, min_length, k),
        )

        def runner(deadline):
            self._remaining(deadline)  # expiry check; top_k has no budget knob
            ranked = self.engine.top_k(
                traj, second, min_length=min_length, k=k, metric=metric,
            )
            return [
                {
                    "rank": int(motif.rank),
                    "distance": float(motif.distance),
                    "indices": [int(v) for v in motif.indices],
                }
                for motif in ranked
            ]

        return key, runner

    def _prepare_join(self, params: dict):
        left, left_shards = self._corpus_and_shards_from_spec(params["left"])
        right, right_shards = self._corpus_and_shards_from_spec(
            params["right"]
        )
        theta = float(params["theta"])
        metric = params.get("metric") or "euclidean"
        use_index = self._index_mode(params.get("index", True))
        resolved = get_metric(metric)
        # The shard signature joins the key: a scattered run answers
        # identical matches but shard-local stats, so it must not
        # coalesce with (or cache-alias) an unsharded run of the same
        # corpus content.
        shard_sig = (
            len(left_shards) if left_shards else 1,
            len(right_shards) if right_shards else 1,
        )
        key = (
            "svc", "join", shard_sig,
            planner.join_result_key(left, right, resolved, theta, use_index),
        )

        def runner(deadline):
            self._remaining(deadline)
            if left_shards or right_shards:
                matches, stats = self.engine.join_sharded(
                    left_shards or [left], right_shards or [right],
                    theta, metric=metric, index=use_index,
                )
            else:
                matches, stats = self.engine.join(
                    left, right, theta, metric=metric, index=use_index,
                )
            self._note_tree_stats(stats.details.get("index"))
            return {
                "matches": [[int(a), int(b)] for a, b in matches],
                "stats": _encode_join_stats(stats),
            }

        return key, runner

    def _prepare_join_top_k(self, params: dict):
        left, left_shards = self._corpus_and_shards_from_spec(params["left"])
        right, right_shards = self._corpus_and_shards_from_spec(
            params["right"]
        )
        k = int(params.get("k", 5))
        metric = params.get("metric") or "euclidean"
        use_index = self._index_mode(params.get("index", True))
        resolved = get_metric(metric)
        shard_sig = (
            len(left_shards) if left_shards else 1,
            len(right_shards) if right_shards else 1,
        )
        key = (
            "svc", "join_top_k", shard_sig,
            planner.join_topk_result_key(left, right, resolved, k),
        )

        def runner(deadline):
            self._remaining(deadline)
            if left_shards or right_shards:
                entries = self.engine.join_top_k_sharded(
                    left_shards or [left], right_shards or [right],
                    k=k, metric=metric, index=use_index,
                )
            else:
                entries = self.engine.join_top_k(
                    left, right, k=k, metric=metric, index=use_index,
                )
            return [
                {"distance": float(dist), "pair": [int(a), int(b)]}
                for dist, (a, b) in entries
            ]

        return key, runner

    def _prepare_cluster(self, params: dict):
        traj = self._trajectory_from_spec(params["trajectory"])
        window_length = int(params["window_length"])
        theta = float(params["theta"])
        stride = int(params.get("stride", 1))
        min_cluster_size = int(params.get("min_cluster_size", 2))
        metric = params.get("metric")
        use_index = self._index_mode(params.get("index", True))
        resolved = get_metric(metric, crs=traj.crs)
        key = (
            "svc", "cluster",
            fingerprint_points(traj), window_length, theta, stride,
            min_cluster_size, metric_key(resolved), use_index,
        )

        def runner(deadline):
            self._remaining(deadline)
            clusters = self.engine.cluster(
                traj, window_length=window_length, theta=theta,
                stride=stride, min_cluster_size=min_cluster_size,
                metric=metric, index=use_index,
            )
            return {
                "window_length": window_length,
                "clusters": [
                    {"members": [int(s) for s in cluster.members]}
                    for cluster in clusters
                ],
            }

        return key, runner

    def _prepare_range(self, params: dict):
        query = self._trajectory_from_spec(params["query"])
        corpus, shards = self._corpus_and_shards_from_spec(params["corpus"])
        radius = float(params["radius"])
        metric = params.get("metric") or "euclidean"
        use_index = self._index_mode(params.get("index", "tree"))
        resolved = get_metric(metric)
        key = (
            "svc", "range", len(shards) if shards else 1,
            planner.range_result_key(
                query, corpus, resolved, radius, bool(use_index)
            ),
        )

        def runner(deadline):
            self._remaining(deadline)
            matches, stats = self._scatter_scan(
                shards, corpus,
                lambda part: self.engine.range(
                    query, part, radius, metric=metric, index=use_index
                ),
            )
            # Shard answers are index-ascending and offsets increase,
            # so the concatenation is already the unsharded order.
            return {
                "matches": [[int(i), float(d)] for i, d in matches],
                "stats": stats,
            }

        return key, runner

    def _prepare_knn(self, params: dict):
        query = self._trajectory_from_spec(params["query"])
        corpus, shards = self._corpus_and_shards_from_spec(params["corpus"])
        k = int(params.get("k", 5))
        metric = params.get("metric") or "euclidean"
        use_index = self._index_mode(params.get("index", "tree"))
        resolved = get_metric(metric)
        key = (
            "svc", "knn", len(shards) if shards else 1,
            planner.knn_result_key(
                query, corpus, resolved, k, bool(use_index)
            ),
        )

        def runner(deadline):
            self._remaining(deadline)
            entries, stats = self._scatter_scan(
                shards, corpus,
                lambda part: self.engine.knn(
                    query, part, k, metric=metric, index=use_index
                ),
                shift=lambda nbrs, off: [(d, i + off) for d, i in nbrs],
            )
            # Per-shard (distance, global index) entries merge under
            # the same canonical order sorted()[:k] yields.
            entries = sorted(entries)[:k]
            return {
                "neighbors": [[float(d), int(i)] for d, i in entries],
                "stats": stats,
            }

        return key, runner

    def _scatter_scan(self, shards, corpus, scan, *, shift=None):
        """Run a per-corpus scan over each shard; fold stats.

        ``scan(part)`` returns ``(entries, IndexStats)``; entries are
        shifted to global indices (``shift`` defaults to the
        range-scan ``(index, distance)`` shape) and concatenated in
        shard order.  Traversal counters sum key-wise and fold into
        the service's ``tree_*`` totals.
        """
        if shift is None:
            def shift(matches, off):
                return [(i + off, d) for i, d in matches]
        merged: list = []
        totals: Dict[str, int] = {}
        offset = 0
        for part in (shards or [corpus]):
            entries, stats = scan(part)
            merged.extend(shift(entries, offset))
            offset += len(part)
            for name, value in stats.as_dict().items():
                totals[name] = totals.get(name, 0) + int(value)
        self._note_tree_stats(totals)
        return merged, totals
