"""Wire protocol of the motif-query service (JSON over HTTP).

One request shape serves every operation::

    POST /v1/<op>
    {"params": {...}, "timeout": <seconds, optional>}

with ``<op>`` one of :data:`OPS`.  Responses are::

    {"ok": true,  "result": ..., "coalesced": <bool>}
    {"ok": false, "error": {"code": "...", "message": "..."}}

and the HTTP status mirrors the error class (400 bad request, 404
unknown snapshot, 429 admission overflow, 504 deadline exceeded, 500
internal).  ``GET /healthz`` and ``GET /stats`` are the liveness and
introspection endpoints.

Trajectory and corpus *specs* (request params) are either inline
coordinate lists or references into server-loaded snapshots:

* trajectory: ``[[x, y], ...]`` or ``{"snapshot": name, "item": i}``;
* corpus: ``[[[x, y], ...], ...]``, ``{"snapshot": name}`` (the whole
  corpus) or ``{"snapshot": name, "items": [i, ...]}``.

Everything here is shared by the server and :class:`ServiceClient`, so
the error taxonomy round-trips: a server-side
:class:`DeadlineExceededError` surfaces client-side as the same class.
"""

from __future__ import annotations

from ..errors import ReproError

#: Operations the service answers, mirroring the MotifEngine surface.
OPS = (
    "discover", "discover_many", "top_k", "join", "join_top_k", "cluster",
    "range", "knn",
)


class ServiceError(ReproError):
    """Base service failure (HTTP 500 unless a subclass narrows it)."""

    status = 500
    code = "internal"


class BadRequestError(ServiceError):
    """Malformed or unresolvable request parameters."""

    status = 400
    code = "bad_request"


class UnknownSnapshotError(BadRequestError):
    """The request references a snapshot this server has not loaded."""

    status = 404
    code = "unknown_snapshot"


class OverloadedError(ServiceError):
    """Admission queue overflow -- retry later (HTTP 429)."""

    status = 429
    code = "overloaded"


class DeadlineExceededError(ServiceError):
    """The request's deadline expired before an answer was ready."""

    status = 504
    code = "deadline_exceeded"


class ServiceUnavailableError(ServiceError):
    """The service is not running (stopped or not yet started)."""

    status = 503
    code = "unavailable"


class ServiceDegradedError(ServiceError):
    """The circuit breaker is open -- the service is shedding load.

    Carries ``retry_after`` (seconds until a probe may be admitted),
    surfaced both in the JSON payload and as an HTTP ``Retry-After``
    header, so well-behaved clients back off for exactly the breaker's
    remaining cooldown instead of guessing.
    """

    status = 503
    code = "degraded"

    def __init__(self, message: str = "service degraded",
                 retry_after=None) -> None:
        super().__init__(message)
        self.retry_after = None if retry_after is None else float(retry_after)


class WorkerCrashedError(ServiceError):
    """The engine lost its pool workers and exhausted re-dispatch.

    Maps :class:`repro.errors.WorkerCrashError` onto the wire.  The
    engine has already rebuilt its pool, so the condition is usually
    transient -- clients treat this as retryable.
    """

    status = 500
    code = "worker_crash"


_ERROR_CLASSES = {
    cls.code: cls
    for cls in (
        ServiceError,
        BadRequestError,
        UnknownSnapshotError,
        OverloadedError,
        DeadlineExceededError,
        ServiceUnavailableError,
        ServiceDegradedError,
        WorkerCrashedError,
    )
}


def error_payload(exc: ServiceError) -> dict:
    """The ``{"code", "message"}`` body of one service error."""
    payload = {"code": exc.code, "message": str(exc)}
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        payload["retry_after"] = float(retry_after)
    return payload


def error_from_payload(payload: dict) -> ServiceError:
    """Rebuild the typed error a response body describes (client side)."""
    cls = _ERROR_CLASSES.get(payload.get("code"), ServiceError)
    if cls is ServiceDegradedError:
        return cls(
            payload.get("message", "service error"),
            retry_after=payload.get("retry_after"),
        )
    return cls(payload.get("message", "service error"))
