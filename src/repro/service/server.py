"""HTTP transport of the motif-query service (stdlib only).

A thin :class:`http.server.ThreadingHTTPServer` wrapper around
:class:`~repro.service.MotifService`: handler threads parse the JSON
envelope and block in :meth:`MotifService.submit`, which owns all
queueing, coalescing, deadlines and admission control.  No third-party
runtime dependency -- the daemon is importable anywhere the package
is.

Endpoints (see :mod:`repro.service.protocol` for the envelope):

* ``POST /v1/<op>`` -- one query; body ``{"params": ..., "timeout": ...}``.
* ``GET /healthz`` -- liveness + loaded snapshot names.
* ``GET /stats`` -- service counters, queue depth, snapshot registry
  and the engine's cache / transfer accounting.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from .protocol import (
    OPS,
    BadRequestError,
    ServiceError,
    error_payload,
)
from .service import MotifService

#: Request bodies beyond this are refused outright (64 MiB).
MAX_BODY_BYTES = 64 * 1024 * 1024


class MotifRequestHandler(BaseHTTPRequestHandler):
    """One HTTP exchange; all real work happens in the service."""

    server_version = "repro-motif-service/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> MotifService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_payload(self, exc: ServiceError) -> None:
        self._send_json(exc.status, {"ok": False, "error": error_payload(exc)})

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
        if self.path == "/healthz":
            health = self.service.health()
            # Status-code health checks (the load-balancer default)
            # must see the outage, not a 200 with a false body.
            self._send_json(200 if health["ok"] else 503, health)
        elif self.path == "/stats":
            self._send_json(200, {"ok": True, "stats": self.service.stats()})
        else:
            self._send_error_payload(
                BadRequestError(f"unknown path {self.path!r}")
            )

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler contract
        try:
            op, params, timeout = self._parse_request()
            result, coalesced = self.service.submit(op, params, timeout)
        except ServiceError as exc:
            self._send_error_payload(exc)
            return
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_payload(ServiceError(f"internal error: {exc}"))
            return
        self._send_json(
            200, {"ok": True, "result": result, "coalesced": coalesced}
        )

    def _parse_request(self) -> Tuple[str, dict, Optional[float]]:
        prefix = "/v1/"
        if not self.path.startswith(prefix):
            raise BadRequestError(
                f"unknown path {self.path!r} (queries POST to /v1/<op>)"
            )
        op = self.path[len(prefix):]
        if op not in OPS:
            raise BadRequestError(
                f"unknown operation {op!r}; known: {', '.join(OPS)}"
            )
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError as exc:
            raise BadRequestError("bad Content-Length header") from exc
        if length <= 0:
            raise BadRequestError("request body required")
        if length > MAX_BODY_BYTES:
            raise BadRequestError(
                f"request body of {length} bytes exceeds {MAX_BODY_BYTES}"
            )
        try:
            body = json.loads(self.rfile.read(length))
        except ValueError as exc:
            raise BadRequestError(f"unparseable JSON body: {exc}") from exc
        if not isinstance(body, dict):
            raise BadRequestError("body must be a JSON object")
        timeout = body.get("timeout")
        if timeout is not None:
            try:
                timeout = float(timeout)
            except (TypeError, ValueError) as exc:
                raise BadRequestError("timeout must be a number") from exc
        return op, body.get("params", {}), timeout

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence per-request stderr chatter (stats carry the counters)."""


class MotifHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`MotifService`."""

    daemon_threads = True
    allow_reuse_address = True
    #: socketserver's default listen backlog of 5 resets connections
    #: under request bursts; admission control belongs to the service's
    #: bounded queue (429), not to kernel-level RSTs.
    request_queue_size = 128

    def __init__(self, address, service: MotifService) -> None:
        super().__init__(address, MotifRequestHandler)
        self.service = service


def make_server(
    service: MotifService, host: str = "127.0.0.1", port: int = 0
) -> MotifHTTPServer:
    """Bind (but do not run) the HTTP server; ``port=0`` picks a free one."""
    return MotifHTTPServer((host, port), service)


def serve(
    service: MotifService, host: str = "127.0.0.1", port: int = 8707
) -> None:
    """Run the service until interrupted (the CLI's ``repro serve`` body)."""
    with service:
        httpd = make_server(service, host, port)
        try:
            httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
        finally:
            httpd.server_close()
