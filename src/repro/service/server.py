"""HTTP transport of the motif-query service (stdlib only).

A thin :class:`http.server.ThreadingHTTPServer` wrapper around
:class:`~repro.service.MotifService`: handler threads parse the JSON
envelope and block in :meth:`MotifService.submit`, which owns all
queueing, coalescing, deadlines and admission control.  No third-party
runtime dependency -- the daemon is importable anywhere the package
is.

Endpoints (see :mod:`repro.service.protocol` for the envelope):

* ``POST /v1/<op>`` -- one query; body ``{"params": ..., "timeout": ...}``.
* ``GET /healthz`` -- liveness + loaded snapshot names.
* ``GET /stats`` -- service counters, queue depth, snapshot registry
  and the engine's cache / transfer accounting.
* ``GET /metrics`` -- the fork-shared registry in Prometheus text
  format; behind a fleet listener any worker answers with the merged
  view of every process.

Tracing: a ``POST`` carrying ``X-Repro-Trace-Id`` joins that trace
(the id is echoed back on success and error alike); without the
header a fresh id is minted at admission whenever tracing is enabled,
so every request is greppable in the span sink.
"""

from __future__ import annotations

import json
import math
import socket
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from .. import obs
from .protocol import (
    OPS,
    BadRequestError,
    ServiceError,
    error_payload,
)
from .service import MotifService

#: Request bodies beyond this are refused outright (64 MiB).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: On a keep-alive connection, an errored request's unread body must be
#: consumed before the next request is parsed -- but only up to this
#: much; a larger leftover closes the connection instead of burning
#: server time reading bytes it will throw away.
MAX_DRAIN_BYTES = 1 * 1024 * 1024

#: Peer-disconnect shapes: the client went away mid-exchange.  These
#: are load-shedding noise, not server failures -- they are counted in
#: the service stats and never traced to stderr.
_DISCONNECT_ERRORS = (
    BrokenPipeError,
    ConnectionResetError,
    ConnectionAbortedError,
)


class MotifRequestHandler(BaseHTTPRequestHandler):
    """One HTTP exchange; all real work happens in the service."""

    server_version = "repro-motif-service/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> MotifService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: dict,
                   headers: Optional[dict] = None) -> None:
        """Write one JSON response; a vanished peer is not an error.

        A client disconnecting mid-response (deadline hit client-side,
        process killed, load-balancer retry) surfaces here as
        ``BrokenPipeError``/``ConnectionResetError``.  Letting that
        propagate would spam ``handle_error`` tracebacks from every
        daemon thread under load; instead the write is abandoned, the
        connection marked closed, and the disconnect counted in the
        service stats.
        """
        body = json.dumps(payload).encode()
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            if self.close_connection:
                # An undrainable request body (or an earlier write
                # failure) is about to end this connection; advertise
                # it so well-behaved clients do not try to reuse it.
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
        except _DISCONNECT_ERRORS:
            self.close_connection = True
            self.service.note_client_disconnect()

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; charset=utf-8") -> None:
        """Write one plain-text response (the ``/metrics`` shape)."""
        body = text.encode()
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            if self.close_connection:
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
        except _DISCONNECT_ERRORS:
            self.close_connection = True
            self.service.note_client_disconnect()

    def _send_error_payload(self, exc: ServiceError,
                            headers: Optional[dict] = None) -> None:
        headers = dict(headers or {})
        retry_after = getattr(exc, "retry_after", None)
        if retry_after is not None:
            # The header is spec'd as integer seconds; the exact float
            # rides in the JSON payload for our own client.
            headers["Retry-After"] = str(max(1, math.ceil(retry_after)))
        self._send_json(
            exc.status, {"ok": False, "error": error_payload(exc)},
            headers=headers or None,
        )

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
        if self.path == "/healthz":
            health = self.service.health()
            # Status-code health checks (the load-balancer default)
            # must see the outage, not a 200 with a false body.
            self._send_json(200 if health["ok"] else 503, health)
        elif self.path == "/stats":
            self._send_json(200, {"ok": True, "stats": self.service.stats()})
        elif self.path == "/metrics":
            # version=0.0.4 is the Prometheus text exposition format.
            self._send_text(
                200, obs.render_prometheus(),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            self._send_error_payload(
                BadRequestError(f"unknown path {self.path!r}")
            )

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler contract
        self._body_consumed = 0
        trace_id = self.headers.get(obs.TRACE_HEADER)
        if trace_id is None and obs.trace_enabled():
            # Mint at admission: an untraced client still gets a trace
            # id (echoed back below) so operators can grep the sink.
            trace_id = obs.new_trace_id()
        echo = {obs.TRACE_HEADER: trace_id} if trace_id else None
        try:
            op, params, timeout = self._parse_request()
        except ServiceError as exc:
            # Keep-alive discipline: the handler advertises HTTP/1.1,
            # so an errored request's unread body bytes would otherwise
            # be parsed as the *next* request line on this persistent
            # connection.  Drain them (bounded) or close the
            # connection before answering.
            self._discard_request_body()
            self._send_error_payload(exc, headers=echo)
            return
        try:
            result, coalesced = self.service.submit(
                op, params, timeout, trace_id=trace_id
            )
        except ServiceError as exc:
            self._send_error_payload(exc, headers=echo)
            return
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_payload(ServiceError(f"internal error: {exc}"),
                                     headers=echo)
            return
        self._send_json(
            200, {"ok": True, "result": result, "coalesced": coalesced},
            headers=echo,
        )

    def _discard_request_body(self) -> None:
        """Consume an errored request's unread body, or give up on reuse.

        Without this, every ``_parse_request`` error path (unknown op,
        bad or oversized ``Content-Length``, unparseable JSON) left the
        declared body unread on the socket, desynchronising all later
        requests on the keep-alive connection.  Unknown, chunked or
        oversized leftovers cannot be drained cheaply -- those mark the
        connection for closure instead.
        """
        if self.headers.get("Transfer-Encoding"):
            self.close_connection = True
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self.close_connection = True
            return
        remaining = length - self._body_consumed
        if remaining <= 0:
            return
        if remaining > MAX_DRAIN_BYTES:
            self.close_connection = True
            return
        try:
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 65536))
                if not chunk:
                    self.close_connection = True
                    return
                remaining -= len(chunk)
        except _DISCONNECT_ERRORS:
            self.close_connection = True
            self.service.note_client_disconnect()

    def _parse_request(self) -> Tuple[str, dict, Optional[float]]:
        prefix = "/v1/"
        if not self.path.startswith(prefix):
            raise BadRequestError(
                f"unknown path {self.path!r} (queries POST to /v1/<op>)"
            )
        op = self.path[len(prefix):]
        if op not in OPS:
            raise BadRequestError(
                f"unknown operation {op!r}; known: {', '.join(OPS)}"
            )
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError as exc:
            raise BadRequestError("bad Content-Length header") from exc
        if length <= 0:
            raise BadRequestError("request body required")
        if length > MAX_BODY_BYTES:
            raise BadRequestError(
                f"request body of {length} bytes exceeds {MAX_BODY_BYTES}"
            )
        raw = self.rfile.read(length)
        self._body_consumed = len(raw)
        try:
            body = json.loads(raw)
        except ValueError as exc:
            raise BadRequestError(f"unparseable JSON body: {exc}") from exc
        if not isinstance(body, dict):
            raise BadRequestError("body must be a JSON object")
        timeout = body.get("timeout")
        if timeout is not None:
            try:
                timeout = float(timeout)
            except (TypeError, ValueError) as exc:
                raise BadRequestError("timeout must be a number") from exc
        return op, body.get("params", {}), timeout

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence per-request stderr chatter (stats carry the counters)."""


class MotifHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`MotifService`.

    With ``sock`` the server adopts an already-bound, already-listening
    socket instead of binding its own -- the pre-fork fleet master
    binds once and every forked worker accepts from the same kernel
    queue (:mod:`repro.service.fleet`).
    """

    daemon_threads = True
    allow_reuse_address = True
    #: socketserver's default listen backlog of 5 resets connections
    #: under request bursts; admission control belongs to the service's
    #: bounded queue (429), not to kernel-level RSTs.
    request_queue_size = 128

    def __init__(
        self,
        address,
        service: MotifService,
        *,
        sock: Optional[socket.socket] = None,
    ) -> None:
        if sock is None:
            super().__init__(address, MotifRequestHandler)
        else:
            super().__init__(address, MotifRequestHandler,
                             bind_and_activate=False)
            self.socket.close()  # the placeholder TCPServer created
            self.socket = sock
            # server_bind() normally fills these; adopters skip it (no
            # getfqdn here -- a DNS stall per forked worker is real).
            host, port = sock.getsockname()[:2]
            self.server_address = sock.getsockname()
            self.server_name = host
            self.server_port = port
        self.service = service

    def handle_error(self, request, client_address) -> None:
        """Count peer disconnects instead of tracing them.

        Disconnect-shaped failures escaping a handler thread (client
        gone mid-read, reset before the response) are expected churn
        under load; anything else keeps the stdlib traceback.
        """
        exc = sys.exc_info()[1]
        if isinstance(exc, _DISCONNECT_ERRORS):
            self.service.note_client_disconnect()
            return
        super().handle_error(request, client_address)


def make_server(
    service: MotifService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    sock: Optional[socket.socket] = None,
) -> MotifHTTPServer:
    """Bind (but do not run) the HTTP server; ``port=0`` picks a free one.

    Pass ``sock`` (bound + listening) to adopt a shared pre-fork
    listener instead of binding ``(host, port)``.
    """
    return MotifHTTPServer((host, port), service, sock=sock)


def serve(
    service: MotifService, host: str = "127.0.0.1", port: int = 8707
) -> None:
    """Run the service until interrupted (the CLI's ``repro serve`` body)."""
    with service:
        httpd = make_server(service, host, port)
        try:
            httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
        finally:
            httpd.server_close()
