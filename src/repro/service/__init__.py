"""Persistent motif-query serving (:class:`MotifService` + HTTP layer).

The serving subsystem: a daemon owning one warm
:class:`~repro.engine.MotifEngine` and a registry of mapped
:mod:`repro.store` snapshots, answering the engine's whole query
surface over a stdlib JSON/HTTP wire protocol with request
coalescing, per-request deadlines and bounded admission.  Run it with
``repro-motif serve``; talk to it with :class:`ServiceClient`.
"""

from .client import ServiceClient
from .fleet import ServiceFleet, serve_fleet
from .protocol import (
    OPS,
    BadRequestError,
    DeadlineExceededError,
    OverloadedError,
    ServiceDegradedError,
    ServiceError,
    ServiceUnavailableError,
    UnknownSnapshotError,
    WorkerCrashedError,
)
from .server import MotifHTTPServer, MotifRequestHandler, make_server, serve
from .service import MotifService

__all__ = [
    "OPS",
    "BadRequestError",
    "DeadlineExceededError",
    "MotifHTTPServer",
    "MotifRequestHandler",
    "MotifService",
    "OverloadedError",
    "ServiceClient",
    "ServiceDegradedError",
    "ServiceError",
    "ServiceFleet",
    "ServiceUnavailableError",
    "UnknownSnapshotError",
    "WorkerCrashedError",
    "make_server",
    "serve",
    "serve_fleet",
]
