"""Stdlib client of the motif-query service.

:class:`ServiceClient` speaks the JSON envelope of
:mod:`repro.service.protocol` over :class:`http.client.HTTPConnection`
-- no third-party dependency, usable from any process that can reach
the daemon.  Server-side errors surface as the *same* typed exceptions
the service raises (:class:`DeadlineExceededError`,
:class:`OverloadedError`, ...), so callers handle overload and
deadline expiry uniformly whether the service is in-process or remote.

Trajectory arguments accept :class:`~repro.trajectory.Trajectory`
objects, numpy arrays, nested lists, or server-side snapshot specs
(``{"snapshot": name, "item": i}``); corpora likewise
(``{"snapshot": name}`` for a whole loaded corpus).
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import List, Optional, Union

import numpy as np

from .protocol import ServiceError, error_from_payload

#: Extra socket-timeout slack past the request deadline, so the server
#: (not a client-side socket error) decides deadline expiry.
_DEADLINE_GRACE = 5.0


def _spec(obj) -> object:
    """A JSON-safe trajectory spec from whatever the caller holds."""
    if isinstance(obj, dict):
        return obj  # snapshot reference, passed through
    points = getattr(obj, "points", obj)
    return np.asarray(points, dtype=np.float64).tolist()


def _corpus_spec(obj) -> object:
    if isinstance(obj, dict):
        return obj
    return [_spec(item) for item in obj]


class ServiceClient:
    """Blocking JSON client of one ``repro serve`` daemon."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8707,
        *,
        timeout: Optional[float] = None,
        socket_timeout: float = 60.0,
    ) -> None:
        self.host = str(host)
        self.port = int(port)
        #: Default per-request deadline (seconds); None = no deadline.
        self.timeout = timeout
        self.socket_timeout = float(socket_timeout)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _http(self, method: str, path: str, body: Optional[dict],
              deadline: Optional[float]) -> dict:
        sock_timeout = self.socket_timeout
        if deadline is not None:
            sock_timeout = max(sock_timeout, float(deadline) + _DEADLINE_GRACE)
        conn = HTTPConnection(self.host, self.port, timeout=sock_timeout)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read())
        except (OSError, ValueError) as exc:
            raise ServiceError(
                f"service at {self.host}:{self.port} unreachable: {exc}"
            ) from exc
        finally:
            conn.close()
        if not data.get("ok"):
            raise error_from_payload(data.get("error", {}))
        return data

    def call(self, op: str, params: dict,
             timeout: Optional[float] = None) -> dict:
        """One query; returns the full ``{"result", "coalesced"}`` envelope."""
        deadline = self.timeout if timeout is None else timeout
        body = {"params": params}
        if deadline is not None:
            body["timeout"] = float(deadline)
        return self._http("POST", f"/v1/{op}", body, deadline)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._http("GET", "/healthz", None, None)

    def stats(self) -> dict:
        return self._http("GET", "/stats", None, None)["stats"]

    # ------------------------------------------------------------------
    # Queries (mirroring the MotifEngine surface)
    # ------------------------------------------------------------------
    def discover(
        self,
        trajectory,
        second=None,
        *,
        min_length: int,
        algorithm: Optional[str] = None,
        metric: Optional[str] = None,
        timeout: Optional[float] = None,
        **options,
    ) -> dict:
        params = {
            "trajectory": _spec(trajectory),
            "min_length": int(min_length),
        }
        if second is not None:
            params["second"] = _spec(second)
        if algorithm is not None:
            params["algorithm"] = algorithm
        if metric is not None:
            params["metric"] = metric
        if options:
            params["options"] = options
        return self.call("discover", params, timeout)["result"]

    def discover_many(
        self,
        items,
        *,
        min_length: int,
        algorithm: Optional[str] = None,
        metric: Optional[str] = None,
        timeout: Optional[float] = None,
        **options,
    ) -> List[dict]:
        encoded = []
        for item in items:
            if isinstance(item, tuple) and len(item) == 2:
                encoded.append({"pair": [_spec(item[0]), _spec(item[1])]})
            else:
                encoded.append(_spec(item))
        params = {"items": encoded, "min_length": int(min_length)}
        if algorithm is not None:
            params["algorithm"] = algorithm
        if metric is not None:
            params["metric"] = metric
        if options:
            params["options"] = options
        return self.call("discover_many", params, timeout)["result"]

    def top_k(
        self,
        trajectory,
        second=None,
        *,
        min_length: int,
        k: int = 5,
        metric: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> List[dict]:
        params = {
            "trajectory": _spec(trajectory),
            "min_length": int(min_length),
            "k": int(k),
        }
        if second is not None:
            params["second"] = _spec(second)
        if metric is not None:
            params["metric"] = metric
        return self.call("top_k", params, timeout)["result"]

    def join(
        self,
        left,
        right,
        theta: float,
        *,
        metric: Union[str, None] = None,
        index: bool = True,
        timeout: Optional[float] = None,
    ) -> dict:
        params = {
            "left": _corpus_spec(left),
            "right": _corpus_spec(right),
            "theta": float(theta),
            "index": bool(index),
        }
        if metric is not None:
            params["metric"] = metric
        return self.call("join", params, timeout)["result"]

    def join_top_k(
        self,
        left,
        right,
        *,
        k: int = 5,
        metric: Union[str, None] = None,
        index: bool = True,
        timeout: Optional[float] = None,
    ) -> List[dict]:
        params = {
            "left": _corpus_spec(left),
            "right": _corpus_spec(right),
            "k": int(k),
            "index": bool(index),
        }
        if metric is not None:
            params["metric"] = metric
        return self.call("join_top_k", params, timeout)["result"]

    def cluster(
        self,
        trajectory,
        *,
        window_length: int,
        theta: float,
        stride: int = 1,
        min_cluster_size: int = 2,
        metric: Optional[str] = None,
        index: bool = True,
        timeout: Optional[float] = None,
    ) -> dict:
        params = {
            "trajectory": _spec(trajectory),
            "window_length": int(window_length),
            "theta": float(theta),
            "stride": int(stride),
            "min_cluster_size": int(min_cluster_size),
            "index": bool(index),
        }
        if metric is not None:
            params["metric"] = metric
        return self.call("cluster", params, timeout)["result"]
