"""Stdlib client of the motif-query service.

:class:`ServiceClient` speaks the JSON envelope of
:mod:`repro.service.protocol` over :class:`http.client.HTTPConnection`
-- no third-party dependency, usable from any process that can reach
the daemon.  Server-side errors surface as the *same* typed exceptions
the service raises (:class:`DeadlineExceededError`,
:class:`OverloadedError`, ...), so callers handle overload and
deadline expiry uniformly whether the service is in-process or remote.

Two transport behaviours make the client robust under churn:

* **Keep-alive reuse** -- one persistent connection per thread (the
  server speaks HTTP/1.1), transparently re-opened when a pooled
  socket turns out stale (server restarted, idle timeout, fleet worker
  replaced).  ``transport_stats`` counts opens/reuses/reconnects.
* **Idempotent retries** -- every service operation is a read-only
  query, so transport failures and explicitly retryable service
  errors (``overloaded``, ``degraded``, ``unavailable``,
  ``worker_crash``) are retried up to ``retries`` times with
  exponential backoff and decorrelated jitter, honouring the server's
  ``retry_after`` hint as the floor.  Caller-owned failures
  (``bad_request``, ``deadline_exceeded``, ...) are never retried.

Trajectory arguments accept :class:`~repro.trajectory.Trajectory`
objects, numpy arrays, nested lists, or server-side snapshot specs
(``{"snapshot": name, "item": i}``); corpora likewise
(``{"snapshot": name}`` for a whole loaded corpus).
"""

from __future__ import annotations

import json
import random
import threading
import time
from http.client import HTTPConnection, HTTPException
from typing import List, Optional, Union

import numpy as np

from .. import obs
from .protocol import ServiceError, error_from_payload

#: Extra socket-timeout slack past the request deadline, so the server
#: (not a client-side socket error) decides deadline expiry.
_DEADLINE_GRACE = 5.0

#: Error codes worth retrying: the condition is transient by
#: construction (load shedding, breaker cooldown, pool rebuild) and
#: every service op is an idempotent read.
RETRYABLE_CODES = frozenset(
    {"overloaded", "degraded", "unavailable", "worker_crash"}
)

#: Stale-socket shapes on a reused keep-alive connection: the peer
#: closed between requests.  One transparent reconnect, then the
#: ordinary retry policy applies.
_STALE_ERRORS = (
    BrokenPipeError,
    ConnectionResetError,
    ConnectionAbortedError,
    HTTPException,
)


def _spec(obj) -> object:
    """A JSON-safe trajectory spec from whatever the caller holds."""
    if isinstance(obj, dict):
        return obj  # snapshot reference, passed through
    points = getattr(obj, "points", obj)
    return np.asarray(points, dtype=np.float64).tolist()


def _corpus_spec(obj) -> object:
    if isinstance(obj, dict):
        return obj
    return [_spec(item) for item in obj]


class ServiceClient:
    """Blocking JSON client of one ``repro serve`` daemon.

    ``retries`` bounds *additional* attempts per request (the default 2
    means up to 3 attempts).  Backoff between attempts is decorrelated
    jitter -- ``sleep = min(cap, uniform(base, 3 * previous))`` -- which
    de-synchronises a herd of clients hammering a recovering server,
    and a server-supplied ``retry_after`` (breaker cooldown) floors the
    sleep.  ``rng`` and ``sleep`` are injectable for deterministic
    tests.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8707,
        *,
        timeout: Optional[float] = None,
        socket_timeout: float = 60.0,
        retries: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        rng=None,
        sleep=None,
    ) -> None:
        self.host = str(host)
        self.port = int(port)
        #: Default per-request deadline (seconds); None = no deadline.
        self.timeout = timeout
        self.socket_timeout = float(socket_timeout)
        self.retries = int(retries)
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        if self.backoff_base <= 0 or self.backoff_cap < self.backoff_base:
            raise ValueError(
                "need 0 < backoff_base <= backoff_cap, got "
                f"{backoff_base}/{backoff_cap}"
            )
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep if sleep is not None else time.sleep
        self._local = threading.local()
        self._stats_lock = threading.Lock()
        #: Transport counters: ``connections_opened`` (sockets dialled),
        #: ``reconnects`` (stale pooled socket replaced mid-request),
        #: ``retries`` (request attempts beyond the first).
        self.transport_stats = {
            "connections_opened": 0,
            "reconnects": 0,
            "retries": 0,
        }

    # ------------------------------------------------------------------
    # Connection pool (one persistent connection per thread)
    # ------------------------------------------------------------------
    def _connection(self, sock_timeout: float) -> HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = HTTPConnection(self.host, self.port, timeout=sock_timeout)
            self._local.conn = conn
            with self._stats_lock:
                self.transport_stats["connections_opened"] += 1
        else:
            # Reused connection; retune the socket timeout for this
            # request's deadline (the attribute applies at connect time,
            # the live socket needs an explicit settimeout).
            conn.timeout = sock_timeout
            if conn.sock is not None:
                conn.sock.settimeout(sock_timeout)
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            self._local.conn = None
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def close(self) -> None:
        """Close this thread's pooled connection (others close lazily)."""
        self._drop_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _exchange(self, method: str, path: str, payload: Optional[str],
                  sock_timeout: float, extra_headers: Optional[dict] = None,
                  raw: bool = False):
        """One HTTP round-trip on the pooled connection.

        A pooled socket can be stale -- the server restarted, a fleet
        worker was replaced, or the peer timed the connection out while
        this client was idle.  That surfaces only when the next request
        hits the dead socket, so one transparent reconnect-and-resend
        is correct here (the request never reached the server); real
        transport failures then propagate to the retry policy above.
        """
        headers = {"Content-Type": "application/json"} if payload else {}
        headers.update(extra_headers or {})
        fresh_attempted = False
        while True:
            conn = self._connection(sock_timeout)
            was_fresh = conn.sock is None
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                body = response.read()
            except _STALE_ERRORS:
                self._drop_connection()
                if was_fresh or fresh_attempted:
                    raise
                fresh_attempted = True
                with self._stats_lock:
                    self.transport_stats["reconnects"] += 1
                continue
            except BaseException:
                # Unknown state (timeout mid-read, interrupt): never
                # reuse the socket, a later request would desync.
                self._drop_connection()
                raise
            echoed = response.getheader(obs.TRACE_HEADER)
            if echoed:
                self._local.last_trace_id = echoed
            if response.will_close:
                self._drop_connection()
            return body if raw else json.loads(body)

    @property
    def last_trace_id(self) -> Optional[str]:
        """The ``X-Repro-Trace-Id`` echoed on this thread's last reply."""
        return getattr(self._local, "last_trace_id", None)

    def _http(self, method: str, path: str, body: Optional[dict],
              deadline: Optional[float],
              extra_headers: Optional[dict] = None) -> dict:
        sock_timeout = self.socket_timeout
        if deadline is not None:
            sock_timeout = max(sock_timeout, float(deadline) + _DEADLINE_GRACE)
        payload = None if body is None else json.dumps(body)
        attempts = self.retries + 1
        backoff = self.backoff_base
        for attempt in range(attempts):
            retry_after = None
            try:
                data = self._exchange(method, path, payload, sock_timeout,
                                      extra_headers)
            except (OSError, ValueError, HTTPException) as exc:
                error = ServiceError(
                    f"service at {self.host}:{self.port} unreachable: {exc}"
                )
                error.__cause__ = exc
            else:
                if data.get("ok"):
                    return data
                error = error_from_payload(data.get("error", {}))
                if error.code not in RETRYABLE_CODES:
                    raise error
                retry_after = getattr(error, "retry_after", None)
            if attempt + 1 >= attempts:
                raise error
            backoff = min(
                self.backoff_cap,
                self._rng.uniform(self.backoff_base, backoff * 3),
            )
            pause = backoff if retry_after is None else max(
                backoff, float(retry_after)
            )
            with self._stats_lock:
                self.transport_stats["retries"] += 1
            self._sleep(pause)
        raise AssertionError("unreachable")  # pragma: no cover

    def call(self, op: str, params: dict,
             timeout: Optional[float] = None,
             trace_id: Optional[str] = None) -> dict:
        """One query; returns the full ``{"result", "coalesced"}`` envelope.

        ``trace_id`` rides the ``X-Repro-Trace-Id`` header so the
        server joins the caller's trace; without it an active trace on
        the calling thread is propagated automatically.  The id the
        server echoed back is readable as :attr:`last_trace_id`.
        """
        deadline = self.timeout if timeout is None else timeout
        body = {"params": params}
        if deadline is not None:
            body["timeout"] = float(deadline)
        if trace_id is None and obs.trace_enabled():
            ctx = obs.current_trace()
            if ctx is not None:
                trace_id = ctx[0]
        headers = {obs.TRACE_HEADER: str(trace_id)} if trace_id else None
        return self._http("POST", f"/v1/{op}", body, deadline,
                          extra_headers=headers)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._http("GET", "/healthz", None, None)

    def stats(self) -> dict:
        return self._http("GET", "/stats", None, None)["stats"]

    def metrics_text(self) -> str:
        """Scrape ``GET /metrics``; returns the Prometheus text body."""
        try:
            body = self._exchange(
                "GET", "/metrics", None, self.socket_timeout, raw=True
            )
        except (OSError, ValueError, HTTPException) as exc:
            error = ServiceError(
                f"service at {self.host}:{self.port} unreachable: {exc}"
            )
            error.__cause__ = exc
            raise error from exc
        return body.decode()

    # ------------------------------------------------------------------
    # Queries (mirroring the MotifEngine surface)
    # ------------------------------------------------------------------
    def discover(
        self,
        trajectory,
        second=None,
        *,
        min_length: int,
        algorithm: Optional[str] = None,
        metric: Optional[str] = None,
        timeout: Optional[float] = None,
        **options,
    ) -> dict:
        params = {
            "trajectory": _spec(trajectory),
            "min_length": int(min_length),
        }
        if second is not None:
            params["second"] = _spec(second)
        if algorithm is not None:
            params["algorithm"] = algorithm
        if metric is not None:
            params["metric"] = metric
        if options:
            params["options"] = options
        return self.call("discover", params, timeout)["result"]

    def discover_many(
        self,
        items,
        *,
        min_length: int,
        algorithm: Optional[str] = None,
        metric: Optional[str] = None,
        timeout: Optional[float] = None,
        **options,
    ) -> List[dict]:
        encoded = []
        for item in items:
            if isinstance(item, tuple) and len(item) == 2:
                encoded.append({"pair": [_spec(item[0]), _spec(item[1])]})
            else:
                encoded.append(_spec(item))
        params = {"items": encoded, "min_length": int(min_length)}
        if algorithm is not None:
            params["algorithm"] = algorithm
        if metric is not None:
            params["metric"] = metric
        if options:
            params["options"] = options
        return self.call("discover_many", params, timeout)["result"]

    def top_k(
        self,
        trajectory,
        second=None,
        *,
        min_length: int,
        k: int = 5,
        metric: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> List[dict]:
        params = {
            "trajectory": _spec(trajectory),
            "min_length": int(min_length),
            "k": int(k),
        }
        if second is not None:
            params["second"] = _spec(second)
        if metric is not None:
            params["metric"] = metric
        return self.call("top_k", params, timeout)["result"]

    def join(
        self,
        left,
        right,
        theta: float,
        *,
        metric: Union[str, None] = None,
        index: Union[bool, str] = True,
        timeout: Optional[float] = None,
    ) -> dict:
        params = {
            "left": _corpus_spec(left),
            "right": _corpus_spec(right),
            "theta": float(theta),
            "index": index if isinstance(index, str) else bool(index),
        }
        if metric is not None:
            params["metric"] = metric
        return self.call("join", params, timeout)["result"]

    def join_top_k(
        self,
        left,
        right,
        *,
        k: int = 5,
        metric: Union[str, None] = None,
        index: Union[bool, str] = True,
        timeout: Optional[float] = None,
    ) -> List[dict]:
        params = {
            "left": _corpus_spec(left),
            "right": _corpus_spec(right),
            "k": int(k),
            "index": index if isinstance(index, str) else bool(index),
        }
        if metric is not None:
            params["metric"] = metric
        return self.call("join_top_k", params, timeout)["result"]

    def cluster(
        self,
        trajectory,
        *,
        window_length: int,
        theta: float,
        stride: int = 1,
        min_cluster_size: int = 2,
        metric: Optional[str] = None,
        index: Union[bool, str] = True,
        timeout: Optional[float] = None,
    ) -> dict:
        params = {
            "trajectory": _spec(trajectory),
            "window_length": int(window_length),
            "theta": float(theta),
            "stride": int(stride),
            "min_cluster_size": int(min_cluster_size),
            "index": index if isinstance(index, str) else bool(index),
        }
        if metric is not None:
            params["metric"] = metric
        return self.call("cluster", params, timeout)["result"]

    def range(
        self,
        query,
        corpus,
        radius: float,
        *,
        metric: Union[str, None] = None,
        index: Union[bool, str] = "tree",
        timeout: Optional[float] = None,
    ) -> dict:
        """All corpus trajectories within exact DFD ``radius`` of a query.

        The reply carries ``matches`` (``[index, distance]`` pairs
        ascending by corpus index) and the traversal's ``stats``.
        """
        params = {
            "query": _spec(query),
            "corpus": _corpus_spec(corpus),
            "radius": float(radius),
            "index": index if isinstance(index, str) else bool(index),
        }
        if metric is not None:
            params["metric"] = metric
        return self.call("range", params, timeout)["result"]

    def knn(
        self,
        query,
        corpus,
        *,
        k: int = 5,
        metric: Union[str, None] = None,
        index: Union[bool, str] = "tree",
        timeout: Optional[float] = None,
    ) -> dict:
        """The ``k`` nearest corpus trajectories to a query by exact DFD.

        The reply carries ``neighbors`` (``[distance, index]`` pairs
        ascending, ties broken by corpus index) and the traversal's
        ``stats``.
        """
        params = {
            "query": _spec(query),
            "corpus": _corpus_spec(corpus),
            "k": int(k),
            "index": index if isinstance(index, str) else bool(index),
        }
        if metric is not None:
            params["metric"] = metric
        return self.call("knn", params, timeout)["result"]
