"""Pre-fork service fleet: N processes, one listening socket, one page cache.

A single serving process is bounded by the GIL on the request path and
by one engine's pool on the compute path.  :class:`ServiceFleet`
scales the service across processes the pre-fork way:

* the **master binds and listens once**, then forks N workers that all
  ``accept()`` from the same kernel queue -- the kernel load-balances
  connections, no userspace proxy, no port juggling;
* every worker maps the **same snapshot files** read-only
  (:mod:`repro.store` memmaps), so the corpus occupies one host-wide
  page cache regardless of fleet size;
* each worker is a full :class:`~repro.service.MotifService` -- its
  own coalescing, deadlines, admission and (optionally) snapshot
  hot-reload watcher, so a rebuilt snapshot rolls through the fleet
  without a restart;
* a supervisor thread restarts workers that die, so the fleet keeps
  answering through a crashed or killed process.

Workers are forked (``multiprocessing`` fork context): the listening
socket and configuration are inherited, never pickled.  They are
deliberately **not** daemonic -- each worker's engine forks pool
children of its own, which daemonic processes are not allowed to do.
"""

from __future__ import annotations

import multiprocessing
import signal
import socket
import sys
import threading
import time
from typing import Callable, List, Optional, Sequence, Tuple

from ..faults import fail_at
from .server import make_server
from .service import (
    MotifService,
    service_counter_totals,
    service_counters_per_process,
)

#: Kernel accept backlog of the shared listener (matches the
#: single-process server's request_queue_size rationale: bursts queue,
#: they do not get RST).
LISTEN_BACKLOG = 128


def _exit_on_sigterm(signum, frame):  # pragma: no cover - signal path
    raise SystemExit(0)


def _fleet_worker(sock, service_factory, service_kwargs, snapshots) -> None:
    """Body of one forked worker: build a service, serve the shared socket.

    ``SystemExit`` raised by the SIGTERM handler unwinds through
    ``serve_forever`` so the context managers below still close the
    HTTP server and stop the service (engine pool included) cleanly.
    """
    fail_at("fleet.worker_boot")
    signal.signal(signal.SIGTERM, _exit_on_sigterm)
    if service_factory is not None:
        service = service_factory()
    else:
        service = MotifService(**dict(service_kwargs or {}))
    for name, path, verify in snapshots:
        service.load_snapshot(name, path, verify=verify)
    with service:
        httpd = make_server(service, sock=sock)
        try:
            httpd.serve_forever()
        finally:
            httpd.server_close()


class ServiceFleet:
    """A pre-fork fleet of :class:`MotifService` HTTP workers.

    Parameters
    ----------
    workers:
        Fleet size (serving processes).
    host / port:
        Listener address; ``port=0`` picks a free one (read it back
        from :attr:`port` after :meth:`start`).
    snapshots:
        ``(name, path)`` or ``(name, path, verify)`` tuples each
        worker loads before serving.  All workers map the same files.
    service_factory / service_kwargs:
        Per-worker service construction: a zero-argument callable run
        *inside* the forked worker, or plain kwargs forwarded to
        :class:`MotifService`.  Pass ``snapshot_watch_interval`` here
        to arm hot-reload in every worker.
    restart_workers:
        Supervise the fleet: a dead worker (crash, kill -9) is
        replaced so capacity recovers without operator action.
    restart_backoff_base / restart_backoff_cap / restart_healthy_interval:
        Crash-loop damping.  A worker that dies within
        ``restart_healthy_interval`` seconds of spawning is respawned
        after an exponentially growing per-slot delay (``base``,
        doubling up to ``cap``); surviving past the healthy interval
        resets its slot's backoff, and a worker that dies *after* a
        healthy run restarts at the base delay again.  Without this, a
        worker that dies at boot (bad snapshot path, port stolen, OOM
        at load) would be forked in a tight loop, flooding the host
        with short-lived processes.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        snapshots: Optional[Sequence[tuple]] = None,
        service_factory: Optional[Callable[[], MotifService]] = None,
        service_kwargs: Optional[dict] = None,
        restart_workers: bool = True,
        restart_backoff_base: float = 0.2,
        restart_backoff_cap: float = 10.0,
        restart_healthy_interval: float = 5.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if restart_backoff_base <= 0:
            raise ValueError(
                f"restart_backoff_base must be > 0, got {restart_backoff_base}"
            )
        if restart_backoff_cap < restart_backoff_base:
            raise ValueError(
                "restart_backoff_cap must be >= restart_backoff_base, got "
                f"{restart_backoff_cap}"
            )
        if restart_healthy_interval <= 0:
            raise ValueError(
                "restart_healthy_interval must be > 0, got "
                f"{restart_healthy_interval}"
            )
        if service_factory is not None and service_kwargs is not None:
            raise ValueError(
                "pass service_factory or service_kwargs, not both"
            )
        self.workers = int(workers)
        self.host = host
        self.port = int(port)
        self.restart_workers = bool(restart_workers)
        self.restart_backoff_base = float(restart_backoff_base)
        self.restart_backoff_cap = float(restart_backoff_cap)
        self.restart_healthy_interval = float(restart_healthy_interval)
        self._service_factory = service_factory
        self._service_kwargs = dict(service_kwargs or {})
        self._snapshots: List[Tuple[str, str, bool]] = []
        for entry in snapshots or []:
            name, path = entry[0], entry[1]
            verify = bool(entry[2]) if len(entry) > 2 else False
            self._snapshots.append((str(name), str(path), verify))
        self._sock: Optional[socket.socket] = None
        #: ``_procs[slot]`` is ``None`` while the slot sits out its
        #: restart backoff; ``_retry_at`` / ``_spawned_at`` are
        #: ``time.monotonic`` instants, ``_backoffs`` the current
        #: per-slot delay (0.0 = slot has no crash-loop history).
        self._procs: List[Optional[multiprocessing.process.BaseProcess]] = []
        self._backoffs: List[float] = []
        self._retry_at: List[float] = []
        self._spawned_at: List[float] = []
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        self._restarts = 0
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServiceFleet":
        if self._running:
            return self
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen(LISTEN_BACKLOG)
        self._sock = sock
        self.host, self.port = sock.getsockname()[:2]
        self._stop_event.clear()
        self._restarts = 0
        self._running = True
        with self._lock:
            self._backoffs = [0.0] * self.workers
            self._retry_at = [0.0] * self.workers
            self._spawned_at = [0.0] * self.workers
            self._procs = [self._spawn(k) for k in range(self.workers)]
        if self.restart_workers:
            self._supervisor = threading.Thread(
                target=self._supervise, name="motif-fleet-supervisor",
                daemon=True,
            )
            self._supervisor.start()
        return self

    def stop(self) -> None:
        """Terminate the fleet: SIGTERM, join, close the listener."""
        self._stop_event.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=10.0)
            self._supervisor = None
        with self._lock:
            procs = list(self._procs)
            self._procs = []
            self._running = False
        for proc in procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
        for proc in procs:
            if proc is None:
                continue
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.kill()
                proc.join(timeout=5.0)
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceFleet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    @property
    def restarts(self) -> int:
        """Workers replaced by the supervisor since :meth:`start`."""
        with self._lock:
            return self._restarts

    def pids(self) -> List[int]:
        with self._lock:
            return [
                proc.pid
                for proc in self._procs
                if proc is not None and proc.pid is not None
            ]

    def stats(self) -> dict:
        """Supervisor-side fleet state (the master's view, no HTTP).

        ``restart_backoffs`` is the per-slot crash-loop delay in
        seconds -- 0.0 for slots with no recent crash history, growing
        exponentially for slots whose worker keeps dying at boot.
        ``service_counters`` merges every worker's request counters
        straight out of the fork-shared metrics registry (no HTTP
        round-trips), and ``service_counters_per_worker`` breaks the
        live slots out per worker pid.
        """
        with self._lock:
            pids = {
                p.pid for p in self._procs
                if p is not None and p.pid is not None
            }
            out = {
                "workers": self.workers,
                "alive": sum(
                    1 for p in self._procs if p is not None and p.is_alive()
                ),
                "restarts": self._restarts,
                "restart_backoffs": list(self._backoffs),
                "pids": [
                    None if p is None else p.pid for p in self._procs
                ],
            }
        out["service_counters"] = service_counter_totals()
        out["service_counters_per_worker"] = {
            pid: counters
            for pid, counters in service_counters_per_process().items()
            if pid in pids
        }
        return out

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _spawn(self, slot: int):
        # Fork context: the listening socket and config are inherited
        # by the child, not pickled (factories may be closures).  The
        # worker is non-daemonic because its engine forks pool
        # children of its own.
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(
            target=_fleet_worker,
            args=(
                self._sock,
                self._service_factory,
                self._service_kwargs,
                self._snapshots,
            ),
            name=f"motif-fleet-{slot}",
            daemon=False,
        )
        proc.start()
        self._spawned_at[slot] = time.monotonic()
        return proc

    def _supervise(self) -> None:
        while not self._stop_event.wait(0.2):
            with self._lock:
                if not self._running:
                    return
                now = time.monotonic()
                for slot, proc in enumerate(self._procs):
                    if proc is None:
                        # Slot is sitting out its backoff delay.
                        if now >= self._retry_at[slot]:
                            self._procs[slot] = self._spawn(slot)
                            self._restarts += 1
                        continue
                    if proc.is_alive():
                        if (
                            self._backoffs[slot]
                            and now - self._spawned_at[slot]
                            >= self.restart_healthy_interval
                        ):
                            # Survived long enough: forgive the
                            # crash-loop history.
                            self._backoffs[slot] = 0.0
                        continue
                    proc.join(timeout=0)
                    lifetime = now - self._spawned_at[slot]
                    if lifetime >= self.restart_healthy_interval:
                        # A long-lived worker died: not a crash loop,
                        # restart immediately and start damping fresh.
                        self._backoffs[slot] = 0.0
                        self._procs[slot] = self._spawn(slot)
                        self._restarts += 1
                        continue
                    delay = self._backoffs[slot]
                    delay = (
                        self.restart_backoff_base
                        if delay == 0.0
                        else min(self.restart_backoff_cap, delay * 2)
                    )
                    self._backoffs[slot] = delay
                    self._retry_at[slot] = now + delay
                    self._procs[slot] = None


def serve_fleet(
    fleet: ServiceFleet, *, stream=None
) -> None:  # pragma: no cover - interactive path
    """Run ``fleet`` until interrupted (the CLI's ``serve --fleet`` body).

    SIGTERM (the deployment stop signal) unwinds like Ctrl-C: the
    fleet's non-daemonic workers must be terminated by the master, not
    orphaned with the listening socket still open.
    """
    out = stream if stream is not None else sys.stdout

    def _stop(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _stop)
    try:
        with fleet:
            # repro: ignore[RPR009] -- operator-facing startup banner on the CLI serve path
            print(
                f"fleet of {fleet.workers} serving on "
                f"http://{fleet.host}:{fleet.port} (pids {fleet.pids()})",
                file=out,
            )
            try:
                while True:
                    signal.pause()
            except KeyboardInterrupt:
                pass
    finally:
        signal.signal(signal.SIGTERM, previous)
