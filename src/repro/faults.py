"""Deterministic failpoint registry for chaos testing the whole stack.

Production code calls :func:`fail_at` at named crash-prone seams; tests
and chaos drills *arm* those sites to raise a typed exception, kill the
calling process, or exit with a status code.  When nothing is armed a
``fail_at`` call is one dict lookup -- cheap enough to leave in the
hottest dispatch paths permanently.

Determinism is the whole point: a failpoint fires on exact **per-site
hit numbers** counted in fork-shared ``multiprocessing.Value`` slots --
no wall clock, no RNG -- so a chaos run reproduces bit-for-bit and the
static analyzer's purity rules (RPR003/RPR004) hold by construction.

Spec grammar (the ``REPRO_FAILPOINTS`` environment variable, or the
argument of :func:`arm` / :class:`armed`)::

    SITE=ACTION[@HITS][%LIMIT][;SITE=ACTION...]

* ``SITE`` -- a dotted site name; the wired catalogue is :data:`SITES`
  (arbitrary names are allowed for tests of the registry itself).
* ``ACTION`` -- one of
  ``raise:ExcName`` (builtins or the repro error taxonomy, resolved
  lazily at fire time), ``kill`` (``SIGKILL`` the calling process) or
  ``exit:N`` (``os._exit(N)``).
* ``@HITS`` -- fire only on these hit numbers: ``@3`` (exactly the
  third hit), ``@2-5`` (a closed range), default every hit.
* ``%LIMIT`` -- total fire budget across *all* processes sharing the
  armed state; default unlimited.

Example: ``worker.task=kill%1`` SIGKILLs exactly one pool child, on
the first task any child picks up; the budget is a fork-shared counter,
so the rebuilt pool's fresh children see it exhausted and recover.

Arming must happen in the process that will fork the children (the
engine parent, the fleet master, or via the environment before the
interpreter starts): the shared counters are created at arm time and
inherited through ``fork``.  Arming *after* a pool exists leaves the
existing children unarmed until the pool is rebuilt.
"""

from __future__ import annotations

import os
import signal
import threading
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "ENV_VAR",
    "SITES",
    "arm",
    "armed",
    "armed_sites",
    "disarm",
    "fail_at",
    "state",
]

#: Environment variable parsed at import time (so ``REPRO_FAILPOINTS``
#: set before ``python -m repro serve`` arms every forked descendant).
ENV_VAR = "REPRO_FAILPOINTS"

#: The failpoint sites wired through the stack.  Documentation, not a
#: closed set -- tests may arm ad-hoc names for registry unit tests.
SITES = (
    "worker.task",       # pool-worker task entry (repro.engine.worker)
    "shm.attach",        # shared-memory segment attach (repro.engine.shm)
    "snapshot.read",     # snapshot array open/map (repro.store.snapshot)
    "service.execute",   # request execution (repro.service.service)
    "service.reload",    # snapshot (re)map (repro.service.service)
    "fleet.worker_boot", # forked fleet worker entry (repro.service.fleet)
)

_ACTIONS = ("raise", "kill", "exit")

#: Bound on the shared hit/budget counter locks (see
#: :meth:`_Failpoint.trigger` for why an unbounded acquire can hang).
COUNTER_TIMEOUT = 5.0


def _shared_counter():
    """A fork-shared int cell; plain fallback where fork is missing.

    Created in the arming process so every later ``fork`` (pool
    children, fleet workers) shares the same hit and budget counters --
    a child that fires spends the budget for the whole tree.
    """
    import multiprocessing as mp

    try:
        return mp.get_context("fork").Value("l", 0)
    except ValueError:  # pragma: no cover - non-POSIX platforms
        class _Local:
            __slots__ = ("value", "_lock")

            def __init__(self):
                self.value = 0
                self._lock = threading.Lock()

            def get_lock(self):
                return self._lock

        return _Local()


def _resolve_exception(name: str):
    """Map an exception name to its class (builtins, then repro errors).

    Resolution is lazy -- performed at fire time, never at arm time --
    so this module stays import-cycle-free for the low layers
    (``worker``/``shm``) that call :func:`fail_at`.
    """
    import builtins

    cls = getattr(builtins, name, None)
    if not (isinstance(cls, type) and issubclass(cls, BaseException)):
        from . import errors

        cls = getattr(errors, name, None)
    if not (isinstance(cls, type) and issubclass(cls, BaseException)):
        from .store import SnapshotError

        cls = SnapshotError if name == "SnapshotError" else None
    if cls is None:
        raise ValueError(f"failpoint exception {name!r} is not resolvable")
    return cls


class _Failpoint:
    """One armed site: its action plus fork-shared hit/fire counters."""

    __slots__ = ("site", "action", "arg", "first", "last", "limit",
                 "hits", "fires", "spec")

    def __init__(self, site: str, action: str, arg: Optional[str],
                 first: int, last: int, limit: Optional[int], spec: str):
        self.site = site
        self.action = action
        self.arg = arg
        self.first = first
        self.last = last
        self.limit = limit
        self.spec = spec
        self.hits = _shared_counter()
        self.fires = _shared_counter()

    def trigger(self) -> None:
        # Both counter locks are released before the action runs: a
        # SIGKILL while holding a fork-shared lock would deadlock every
        # sibling process incrementing the same counter.  The acquires
        # are bounded for the deaths this module *causes*: tearing down
        # a broken pool SIGTERMs every sibling, and one dying inside
        # this critical section would orphan the semaphore for all
        # later pool generations (they inherit these counters through
        # ``_ARMED``).  An orphaned failpoint stops firing.
        hlock = self.hits.get_lock()
        if not hlock.acquire(timeout=COUNTER_TIMEOUT):
            return
        try:
            self.hits.value += 1
            hit = self.hits.value
        finally:
            hlock.release()
        if not (self.first <= hit <= self.last):
            return
        flock = self.fires.get_lock()
        if not flock.acquire(timeout=COUNTER_TIMEOUT):
            return
        try:
            if self.limit is not None and self.fires.value >= self.limit:
                return
            self.fires.value += 1
        finally:
            flock.release()
        # Record the fire as a span event *before* the action runs:
        # events flush to the JSONL sink immediately, so even a
        # SIGKILLing failpoint leaves its fire in the trace.
        from . import obs

        obs.add_event(
            "failpoint", site=self.site, action=self.action, hit=hit,
            spec=self.spec,
        )
        self._fire(hit)

    def _fire(self, hit: int) -> None:
        if self.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
            return  # pragma: no cover - unreachable after SIGKILL
        if self.action == "exit":
            os._exit(int(self.arg))
        cls = _resolve_exception(self.arg)
        raise cls(f"failpoint {self.site} fired (hit {hit})")


#: Armed sites of this process tree.  Deliberately module-level: the
#: mapping is inherited through fork, which is how pool children and
#: fleet workers come up armed.
_ARMED: Dict[str, _Failpoint] = {}


def fail_at(site: str) -> None:
    """Fire ``site`` if armed; a no-op (one dict lookup) otherwise."""
    fp = _ARMED.get(site)
    if fp is not None:
        fp.trigger()


def _parse_entry(entry: str) -> Tuple[str, _Failpoint]:
    spec = entry.strip()
    site, sep, rest = spec.partition("=")
    site = site.strip()
    if not sep or not site or not rest:
        raise ValueError(f"bad failpoint spec {spec!r}; expected SITE=ACTION")
    if site not in SITES:
        raise ValueError(
            f"unknown failpoint site {site!r}; wired sites: "
            f"{', '.join(SITES)}"
        )
    limit: Optional[int] = None
    if "%" in rest:
        rest, _, raw = rest.partition("%")
        limit = int(raw)
        if limit < 1:
            raise ValueError(f"failpoint limit must be >= 1 in {spec!r}")
    first, last = 1, 2 ** 62
    if "@" in rest:
        rest, _, raw = rest.partition("@")
        lo, sep2, hi = raw.partition("-")
        first = int(lo)
        last = int(hi) if sep2 else first
        if first < 1 or last < first:
            raise ValueError(f"bad failpoint hit range in {spec!r}")
    action, _, arg = rest.strip().partition(":")
    arg = arg.strip() or None
    if action not in _ACTIONS:
        raise ValueError(
            f"unknown failpoint action {action!r} in {spec!r}; "
            f"known: {', '.join(_ACTIONS)}"
        )
    if action == "raise":
        if not arg:
            raise ValueError(f"raise action needs an exception name in {spec!r}")
    elif action == "exit":
        int(arg if arg is not None else "")  # validates now, fires later
    elif arg is not None:
        raise ValueError(f"action {action!r} takes no argument in {spec!r}")
    return site, _Failpoint(site, action, arg, first, last, limit, spec)


def arm(spec: str) -> None:
    """Arm every ``SITE=ACTION`` entry of ``spec`` (``;`` separated).

    Re-arming a site replaces its entry and resets its counters.  Call
    this in the process that forks the workers -- the counters are
    created here and shared by inheritance.
    """
    entries = [e for e in str(spec).split(";") if e.strip()]
    if not entries:
        raise ValueError("empty failpoint spec")
    parsed = dict(_parse_entry(entry) for entry in entries)
    _ARMED.update(parsed)


def disarm(site: Optional[str] = None) -> None:
    """Disarm one ``site``, or everything when ``site`` is None."""
    if site is None:
        _ARMED.clear()
    else:
        _ARMED.pop(site, None)


def armed_sites() -> Tuple[str, ...]:
    return tuple(sorted(_ARMED))


def state() -> Dict[str, dict]:
    """Per-site observability: the spec plus shared hit/fire counts."""
    out = {}
    for site, fp in sorted(_ARMED.items()):
        out[site] = {
            "spec": fp.spec,
            "hits": int(fp.hits.value),
            "fires": int(fp.fires.value),
            "limit": fp.limit,
        }
    return out


class armed:
    """Context manager arming ``spec`` for the block, disarming after.

    Only the sites named in ``spec`` are disarmed on exit, so nesting
    with disjoint sites composes.
    """

    def __init__(self, spec: str):
        self.spec = str(spec)
        self._sites: Tuple[str, ...] = ()

    def __enter__(self) -> "armed":
        arm(self.spec)
        self._sites = tuple(
            e.partition("=")[0].strip()
            for e in self.spec.split(";") if e.strip()
        )
        return self

    def __exit__(self, *exc_info) -> None:
        for site in self._sites:
            disarm(site)


def _arm_from_env() -> None:
    spec = os.environ.get(ENV_VAR)
    if spec:
        arm(spec)


_arm_from_env()
