"""Benchmark harness: per-figure experiments, workload cache, reporting."""

from .harness import (
    DEFAULT_TIMEOUT,
    SCALES,
    RunRecord,
    bench_scale,
    bench_workers,
    default_tau,
    default_xi,
    pair_for,
    results_dir,
    run_motif,
    run_motif_averaged,
    save_table,
    timed,
    timed_best,
    trajectory_for,
)
from .reporting import Table
from .experiments import DATASETS, EXPERIMENTS

__all__ = [
    "DATASETS",
    "DEFAULT_TIMEOUT",
    "EXPERIMENTS",
    "RunRecord",
    "SCALES",
    "Table",
    "bench_scale",
    "bench_workers",
    "default_tau",
    "default_xi",
    "pair_for",
    "results_dir",
    "run_motif",
    "run_motif_averaged",
    "save_table",
    "timed",
    "timed_best",
    "trajectory_for",
]
