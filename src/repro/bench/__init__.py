"""Benchmark harness: per-figure experiments, workload cache, reporting."""

from .harness import (
    DEFAULT_TIMEOUT,
    SCALES,
    RunRecord,
    default_tau,
    default_xi,
    pair_for,
    run_motif,
    run_motif_averaged,
    timed,
    trajectory_for,
)
from .reporting import Table
from .experiments import DATASETS, EXPERIMENTS

__all__ = [
    "DATASETS",
    "DEFAULT_TIMEOUT",
    "EXPERIMENTS",
    "RunRecord",
    "SCALES",
    "Table",
    "default_tau",
    "default_xi",
    "pair_for",
    "run_motif",
    "run_motif_averaged",
    "timed",
    "trajectory_for",
]
