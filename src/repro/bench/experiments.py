"""One function per paper table/figure, each returning a result Table.

The functions regenerate the *series* of the paper's evaluation
(Section 6) on the simulated datasets.  Absolute numbers differ from
the paper (CPython vs C++, synthetic vs proprietary data, scaled n);
the shapes under comparison are documented per experiment in
EXPERIMENTS.md.
"""

from __future__ import annotations


from typing import Iterable, Optional, Sequence

import numpy as np

from ..core import discover_motif
from ..distances import (
    discrete_frechet,
    dtw,
    edr,
    lcss,
    lockstep_distance,
)
from ..symbolic import symbolize
from ..trajectory import Trajectory, translate
from .harness import (
    DEFAULT_TIMEOUT,
    SCALES,
    default_tau,
    default_xi,
    run_motif,
    timed,
    timed_best,
    trajectory_for,
)
from .reporting import Table

#: The paper's three datasets, as simulated here.
DATASETS = ("geolife", "truck", "baboon")


def _ns(scale: str) -> Sequence[int]:
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; known: {sorted(SCALES)}") from None


# ----------------------------------------------------------------------
# Table 1 and the motivation figures
# ----------------------------------------------------------------------
def sampling_testbed(n: int = 200, seed: int = 0):
    """The Figure 3 construction: ``(S_a, S_b, S_c, S_d)`` planar curves.

    * ``S_a`` -- a smooth reference curve, uniformly sampled at 1 Hz;
    * ``S_b`` -- a genuinely different route: ``S_a`` translated by
      ``offset = 20`` (plus jitter clipped to ``offset/6``), so every
      sane measure should rank it *farther* than a resampled twin;
    * ``S_c`` -- the same route as ``S_a``, **non-uniformly sampled**:
      each point is emitted 4-12 times with jitter clipped to
      ``offset/3``.  Per-sample-summing measures (DTW, EDR) accumulate
      one jitter cost per extra sample and misrank ``S_c`` behind
      ``S_b``; max-based DFD is bounded by the jitter clip;
    * ``S_d`` -- the same route with a **local time shift**: a pause
      (one position repeated 12 times) in the middle, which breaks
      lock-step ED but none of the elastic measures.
    """
    rng = np.random.default_rng(seed)
    offset = 20.0
    headings = np.cumsum(rng.normal(0.0, 0.15, size=n))
    steps = 1.5 * np.column_stack([np.cos(headings), np.sin(headings)])
    pts = steps.cumsum(axis=0)

    def clipped(shape, clip):
        return np.clip(rng.normal(0.0, clip, size=shape), -clip, clip)

    s_a = Trajectory(pts)
    s_b = Trajectory(pts + np.array([offset, 0.0]) + clipped((n, 2), offset / 6.0))
    copies = rng.integers(4, 13, size=n)
    dup = np.repeat(pts, copies, axis=0)
    s_c = Trajectory(dup + clipped(dup.shape, offset / 3.0))
    pause = n // 2
    idx = np.concatenate([np.arange(pause), np.repeat(pause, 30),
                          np.arange(pause, n)])
    s_d = Trajectory(pts[idx] + clipped((idx.shape[0], 2), offset / 6.0))
    return s_a, s_b, s_c, s_d


def table1_measures(scale: str = "quick", seed: int = 0) -> Table:
    """Table 1: per-measure robustness properties and computation cost.

    Robustness is *measured* on the :func:`sampling_testbed` curves:
    a measure "tolerates non-uniform sampling" when it ranks the
    resampled twin ``S_c`` closer to ``S_a`` than the different route
    ``S_b``, and "tolerates local time shifting" when it ranks the
    paused twin ``S_d`` closer than ``S_b``.  Cost is the measured
    growth factor when the input length quadruples (~4x = linear,
    ~16x = quadratic).
    """
    s_a, s_b, s_c, s_d = sampling_testbed(n=200, seed=seed)
    eps = 8.0  # matching threshold for LCSS / EDR (between jitter and offset)

    def ranks_closer(fn, twin, equal_length):
        if equal_length and twin.n != s_a.n:
            return False  # lock-step ED cannot even compare the lengths
        return fn(s_a, twin) < fn(s_a, s_b)

    table = Table(
        "Table 1: distance measures -- measured robustness and cost",
        ["measure", "non-uniform sampling", "local time shifting",
         "cost growth (4x len)"],
    )
    measures = [
        ("ED", lambda p, q: lockstep_distance(p, q), True),
        ("DTW", dtw, False),
        ("LCSS", lambda p, q: lcss(p, q, eps), False),
        ("EDR", lambda p, q: edr(p, q, eps), False),
        ("DFD", discrete_frechet, False),
    ]
    for name, fn, equal_length in measures:
        non_uniform = ranks_closer(fn, s_c, equal_length)
        shift = ranks_closer(fn, s_d, equal_length)
        small, large = s_a[0:50], s_a[0:200]
        fn(small, small)  # warm-up
        _, t_small = timed(fn, small, small)
        _, t_large = timed(fn, large, large)
        growth = t_large / max(t_small, 1e-9)
        table.add_row(name, "yes" if non_uniform else "no",
                      "yes" if shift else "no", f"{growth:.1f}x")
    table.add_note("paper Table 1: only DFD tolerates both; ED is O(l), rest O(l^2)")
    return table


def fig02_ed_vs_dfd(scale: str = "quick", seed: int = 0) -> Table:
    """Figure 2: the ED-best pair vs the DFD motif.

    ED measures spatial proximity only; the pair it picks should look
    worse under DFD than the true DFD motif (and vice versa), which is
    what the paper's side-by-side maps show.
    """
    n = _ns(scale)[0]
    traj = trajectory_for("geolife", n, seed)
    xi = default_xi(n)
    # DFD motif (exact).
    motif = discover_motif(traj, min_length=xi, algorithm="gtm")
    i, ie, j, je = motif.indices
    # ED-best pair over same-length non-overlapping windows.
    length = xi + 2
    best_ed, best_pair = float("inf"), None
    pts = traj.points
    for a in range(0, traj.n - 2 * length, 2):
        for b in range(a + length, traj.n - length, 2):
            ed = lockstep_distance(
                pts[a : a + length], pts[b : b + length], metric="haversine"
            )
            if ed < best_ed:
                best_ed, best_pair = ed, (a, b)
    a, b = best_pair
    ed_pair_dfd = discrete_frechet(
        pts[a : a + length], pts[b : b + length], metric="haversine"
    )
    motif_ed = lockstep_distance(
        pts[i : i + length], pts[j : j + length], metric="haversine"
    )
    table = Table(
        "Figure 2: most similar pair under ED vs under DFD (metres)",
        ["pair", "ED", "DFD"],
    )
    table.add_row("ED-best pair", best_ed, ed_pair_dfd)
    table.add_row("DFD motif", motif_ed, motif.distance)
    table.add_note("paper: ED pair had DFD 0.09m at ED 8.71m; DFD pair DFD 0.08m at ED 19.42m")
    return table


def fig03_dtw_vs_dfd(scale: str = "quick", seed: int = 0) -> Table:
    """Figure 3: DTW misranks a non-uniformly sampled twin; DFD does not.

    Uses the :func:`sampling_testbed` construction: ``S_c`` retraces
    ``S_a``'s route with 4-12 jittered samples per original point.  DTW
    pays the jitter once per extra sample, exceeding its distance to the
    genuinely different route ``S_b``; DFD is bounded by the jitter clip.
    """
    s_a, s_b, s_c, _ = sampling_testbed(n=200, seed=seed)
    table = Table(
        "Figure 3: DTW vs DFD under non-uniform sampling",
        ["measure", "d(Sa, Sb) [different route]",
         "d(Sa, Sc) [same route, non-uniform]", "ranks Sc closer?"],
    )
    for name, fn in (("DTW", dtw), ("DFD", discrete_frechet)):
        d_ab = fn(s_a, s_b)
        d_ac = fn(s_a, s_c)
        table.add_row(name, d_ab, d_ac, "yes" if d_ac < d_ab else "no")
    table.add_note("paper: DTW(Sa,Sc) > DTW(Sa,Sb) but DFD(Sa,Sc) < DFD(Sa,Sb)")
    return table


def fig04_symbolic(scale: str = "quick", seed: int = 0) -> Table:
    """Figure 4: identical symbol strings for far-apart trajectories."""
    truck = trajectory_for("truck", 200, seed)
    # The "other city": the same track translated ~1900 km away.
    far = translate(truck, (17.0, 17.0))  # degrees
    s1 = symbolize(truck, fragment_length=8)
    s2 = symbolize(far, fragment_length=8)
    dfd_m = discrete_frechet(truck, far, metric="haversine")
    table = Table(
        "Figure 4: symbolic encoding ignores geography",
        ["trajectory", "string (first 24 symbols)", "equal strings", "DFD to original (km)"],
    )
    table.add_row("original", s1[:24], "-", 0.0)
    table.add_row("translated", s2[:24], "yes" if s1 == s2 else "no", dfd_m / 1000.0)
    table.add_note("paper: Beijing and Shenzhen tracks both encode to 'RVLH'")
    return table


# ----------------------------------------------------------------------
# Pruning effectiveness (Figures 13-16)
# ----------------------------------------------------------------------
def fig13_tight_vs_relaxed_n(
    scale: str = "quick", dataset: str = "geolife", seed: int = 0
) -> Table:
    """Figure 13: tight vs relaxed bounds as n grows (ratio + time)."""
    table = Table(
        f"Figure 13: BTM tight vs relaxed bounds, {dataset}, xi=2%n",
        ["n", "variant", "pruning ratio", "response time (s)"],
    )
    for n in _ns(scale):
        for variant in ("tight", "relaxed"):
            rec = run_motif("btm", dataset, n, seed=seed, variant=variant)
            table.add_row(n, variant, rec.stats.pruning_ratio, rec.seconds)
    table.add_note("paper Fig 13: relaxed slightly weaker pruning, order(s) faster")
    return table


def fig14_tight_vs_relaxed_xi(
    scale: str = "quick", dataset: str = "geolife", seed: int = 0
) -> Table:
    """Figure 14: tight vs relaxed bounds as xi grows at fixed n."""
    n = _ns(scale)[-1]
    xis = [max(4, n // 50), max(6, n // 25), max(8, n // 16)]
    table = Table(
        f"Figure 14: BTM tight vs relaxed bounds, {dataset}, n={n}",
        ["xi", "variant", "pruning ratio", "response time (s)"],
    )
    for xi in xis:
        for variant in ("tight", "relaxed"):
            rec = run_motif("btm", dataset, n, xi=xi, seed=seed, variant=variant)
            table.add_row(xi, variant, rec.stats.pruning_ratio, rec.seconds)
    return table


def fig15_pruning_breakdown(
    scale: str = "quick", dataset: str = "geolife", seed: int = 0
) -> Table:
    """Figure 15: fraction of subsets pruned per bound class."""
    table = Table(
        f"Figure 15: BTM pruning breakdown, {dataset}",
        ["sweep", "value", "LBcell", "rLBcross", "rLBband", "DFD"],
    )
    for n in _ns(scale):
        rec = run_motif("btm", dataset, n, seed=seed)
        b = rec.stats.breakdown()
        table.add_row("n", n, b["LBcell"], b["LBcross"], b["LBband"], b["DFD"])
    n = _ns(scale)[-1]
    for xi in (max(4, n // 50), max(6, n // 25), max(8, n // 16)):
        rec = run_motif("btm", dataset, n, xi=xi, seed=seed)
        b = rec.stats.breakdown()
        table.add_row("xi", xi, b["LBcell"], b["LBcross"], b["LBband"], b["DFD"])
    table.add_note("paper Fig 15: LBcell dominates; rLBband strengthens as xi grows")
    return table


def fig16_bound_ablation(
    scale: str = "quick", dataset: str = "geolife", seed: int = 0
) -> Table:
    """Figure 16: response time with cumulative bound sets."""
    combos = [
        ("LBcell", dict(use_cross=False, use_band=False)),
        ("LBcell+rLBcross", dict(use_band=False)),
        ("LBcell+rLBcross+rLBband", dict()),
    ]
    table = Table(
        f"Figure 16: BTM bound-set ablation, {dataset}",
        ["n", "bounds", "response time (s)", "subsets expanded"],
    )
    for n in _ns(scale):
        for label, opts in combos:
            rec = run_motif("btm", dataset, n, seed=seed, **opts)
            table.add_row(n, label, rec.seconds, rec.stats.subsets_expanded)
    return table


# ----------------------------------------------------------------------
# Grouping (Figures 17-21)
# ----------------------------------------------------------------------
def fig17_group_size(
    scale: str = "quick", dataset: str = "geolife", seed: int = 0,
    taus: Iterable[int] = (4, 8, 16, 32, 64),
) -> Table:
    """Figure 17: GTM sensitivity to the initial group size tau."""
    table = Table(
        f"Figure 17: GTM response time vs tau, {dataset}",
        ["n", "tau", "response time (s)", "level survivors"],
    )
    for n in _ns(scale):
        for tau in taus:
            if tau * 2 > n:
                continue
            rec = run_motif("gtm", dataset, n, seed=seed, tau=tau)
            survivors = rec.stats.group_levels.get(
                min(rec.stats.group_levels) if rec.stats.group_levels else 0, 0
            )
            table.add_row(n, tau, rec.seconds, survivors)
    table.add_note("paper Fig 17: response time not overly sensitive to tau")
    return table


def fig18_response_time(
    scale: str = "quick",
    datasets: Sequence[str] = DATASETS,
    seed: int = 0,
    brute_limit: Optional[int] = None,
    timeout: float = DEFAULT_TIMEOUT,
) -> Table:
    """Figure 18: response time vs n for all four algorithms."""
    ns = _ns(scale)
    brute_limit = ns[min(1, len(ns) - 1)] if brute_limit is None else brute_limit
    table = Table(
        "Figure 18: response time vs trajectory length",
        ["dataset", "n", "brute_dp", "btm", "gtm", "gtm_star"],
    )
    for dataset in datasets:
        for n in ns:
            row = [dataset, n]
            for algo in ("brute", "btm", "gtm", "gtm_star"):
                if algo == "brute" and n > brute_limit:
                    row.append(None)  # beyond the BruteDP cutoff
                    continue
                rec = run_motif(algo, dataset, n, seed=seed, timeout=timeout)
                row.append(None if rec.timed_out else rec.seconds)
            table.add_row(*row)
    table.add_note("paper Fig 18: GTM fastest, GTM* runner-up, BruteDP 2-3 orders slower")
    return table


def fig19_space(
    scale: str = "quick", datasets: Sequence[str] = DATASETS, seed: int = 0
) -> Table:
    """Figure 19: peak space (MB, analytic model) vs n."""
    table = Table(
        "Figure 19: space consumption (MB) vs trajectory length",
        ["dataset", "n", "btm", "gtm", "gtm_star"],
    )
    for dataset in datasets:
        for n in _ns(scale):
            row = [dataset, n]
            for algo in ("btm", "gtm", "gtm_star"):
                rec = run_motif(algo, dataset, n, seed=seed)
                row.append(rec.space_mb)
            table.add_row(*row)
    table.add_note("paper Fig 19: BTM/GTM grow ~n^2, GTM* stays near-linear")
    return table


def fig20_min_length(
    scale: str = "quick", datasets: Sequence[str] = DATASETS, seed: int = 0
) -> Table:
    """Figure 20: response time vs minimum motif length xi."""
    n = _ns(scale)[-1]
    xis = [max(4, n // 50), max(6, n // 25), max(8, n // 16), max(10, n // 12)]
    table = Table(
        f"Figure 20: response time vs xi at n={n}",
        ["dataset", "xi", "btm", "gtm", "gtm_star"],
    )
    for dataset in datasets:
        for xi in xis:
            row = [dataset, xi]
            for algo in ("btm", "gtm", "gtm_star"):
                rec = run_motif(algo, dataset, n, xi=xi, seed=seed)
                row.append(rec.seconds)
            table.add_row(*row)
    table.add_note("paper Fig 20: all methods slow down as xi grows (later bsf)")
    return table


def fig21_cross_trajectory(
    scale: str = "quick", datasets: Sequence[str] = DATASETS, seed: int = 0
) -> Table:
    """Figure 21: the two-trajectory variant, response time vs n."""
    table = Table(
        "Figure 21: cross-trajectory motif, response time vs n",
        ["dataset", "n", "btm", "gtm", "gtm_star"],
    )
    for dataset in datasets:
        for n in _ns(scale):
            row = [dataset, n]
            for algo in ("btm", "gtm", "gtm_star"):
                rec = run_motif(algo, dataset, n, seed=seed, cross=True)
                row.append(rec.seconds)
            table.add_row(*row)
    table.add_note("paper Fig 21: performance mirrors the single-trajectory case")
    return table


# ----------------------------------------------------------------------
# Engine scaling (reproduction-specific; not a paper figure)
# ----------------------------------------------------------------------
def engine_scaling(
    scale: str = "quick",
    seed: int = 0,
    workers: Sequence[int] = (1, 2),
    repeats: int = 4,
) -> Table:
    """Batched/parallel MotifEngine vs the serial discover loop.

    Two workloads, both exact and answer-identical to the serial path:

    * **batched stream** -- every corpus trajectory queried ``repeats``
      times (a serving workload with repeated requests).  The serial
      loop pays the full search per request; the engine answers the
      stream through ``discover_many`` (batch dedup + oracle/result
      caching, plus worker processes).  This is the headline speedup
      the CI smoke run records.
    * **unique corpus (cold)** -- each trajectory queried once with all
      caching disabled, isolating the partitioned chunk-scan path.  On
      a single-core host this hovers around 1x (the scan is pure
      overhead there); it grows with available cores.
    * **topk stream** -- the serving stream answered by top-k queries:
      the serial loop pays the full bound-and-scan per request, the
      engine's chunk-merge top-k answers repeats from the shared
      oracle/result caches (acceptance floor: >= 1.3x at 2 workers,
      with zero dense-``dG`` pickling -- see
      ``benchmarks/bench_engine_scaling.py``).
    * **join stream** -- repeated similarity joins of the corpus
      against a shifted copy, serial cascade vs the engine's sharded
      tile grid with result caching.

    Every workload is timed best-of-2 (:func:`repro.bench.timed_best`):
    the floors these rows gate in CI sit well above the true speedups,
    but single-shot wall clocks on shared hosts swing enough to cross
    them -- the minimum is the faithful cost, since noise only adds.
    Engine rows additionally warm the worker pool *before* the clock
    starts (each measurement still uses a fresh engine, so caches stay
    cold): serving keeps one pool alive across requests, and pool
    fork/startup jitter on a loaded host otherwise dominates the
    short smoke-scale streams.
    """
    import time as _time

    from ..engine import MotifEngine

    n = _ns(scale)[-1]
    xi = default_xi(n)
    options = dict(tau=default_tau(n))
    corpus = [trajectory_for(ds, n, seed) for ds in DATASETS]
    stream = corpus * repeats
    warm_traj = trajectory_for(DATASETS[0], 40, seed + 1)

    def engine_seconds(run, w, repeats_timing=2, **engine_kwargs):
        """Best-of-N wall clock of ``run(engine)`` on a warm pool.

        A fresh engine per repeat keeps every cache cold; the one
        warm-up query only spins the pool up (serving amortises that
        across the stream's lifetime).
        """
        best = None
        for _ in range(max(1, repeats_timing)):
            with MotifEngine(workers=w, **engine_kwargs) as eng:
                if w > 1:
                    eng.discover(warm_traj, min_length=2, algorithm="btm",
                                 cacheable=False)
                started = _time.perf_counter()
                run(eng)
                seconds = _time.perf_counter() - started
            best = seconds if best is None else min(best, seconds)
        return best

    def serial_loop(queries):
        eng = MotifEngine(
            workers=1, oracle_cache_size=0, tables_cache_size=0,
            result_cache_size=0,
        )
        for traj in queries:
            eng.discover(traj, min_length=xi, algorithm="gtm_star",
                         cacheable=False, **options)

    serial_loop(corpus[:1])  # warm-up (imports, allocator)
    _, t_stream = timed_best(serial_loop, stream)
    _, t_unique = timed_best(serial_loop, corpus)

    table = Table(
        f"Engine scaling: MotifEngine vs serial loop, n={n}, xi={xi}",
        ["workload", "path", "workers", "queries", "seconds", "speedup"],
    )
    table.add_row("batched stream", "serial loop", 1, len(stream), t_stream, 1.0)
    for w in workers:
        def batched(eng):
            eng.discover_many(stream, min_length=xi,
                              algorithm="gtm_star", **options)

        t = engine_seconds(batched, w)
        table.add_row("batched stream", "engine", w, len(stream), t,
                      t_stream / max(t, 1e-9))
    table.add_row("unique corpus", "serial loop", 1, len(corpus), t_unique, 1.0)
    for w in workers:
        def unique_cold(eng):
            for traj in corpus:
                eng.discover(traj, min_length=xi, algorithm="gtm_star",
                             cacheable=False, **options)

        t = engine_seconds(unique_cold, w, oracle_cache_size=0,
                           tables_cache_size=0, result_cache_size=0)
        table.add_row("unique corpus", "engine", w, len(corpus), t,
                      t_unique / max(t, 1e-9))

    # Top-k serving stream: repeated requests, parallel chunk-merge scan.
    from ..extensions.topk import discover_top_k_motifs

    k = 3

    def serial_topk(queries):
        for traj in queries:
            discover_top_k_motifs(traj, min_length=xi, k=k)

    _, t_topk = timed_best(serial_topk, stream)
    table.add_row("topk stream", "serial loop", 1, len(stream), t_topk, 1.0)
    for w in workers:
        def topk_stream(eng):
            for traj in stream:
                eng.top_k(traj, min_length=xi, k=k)

        t = engine_seconds(topk_stream, w)
        table.add_row("topk stream", "engine", w, len(stream), t,
                      t_topk / max(t, 1e-9))

    # Similarity-join stream: corpus against a shifted copy, repeated.
    from ..extensions.join import similarity_join

    left = corpus
    right = [
        translate(traj, [0.5] * traj.dimensions) for traj in corpus
    ]
    theta = float(np.median(np.abs(left[0].points))) or 1.0

    def serial_join():
        for _ in range(repeats):
            similarity_join(left, right, theta)

    _, t_join = timed_best(serial_join)
    table.add_row("join stream", "serial loop", 1, repeats, t_join, 1.0)
    for w in workers:
        def join_stream(eng):
            for _ in range(repeats):
                eng.join(left, right, theta)

        t = engine_seconds(join_stream, w)
        table.add_row("join stream", "engine", w, repeats, t,
                      t_join / max(t, 1e-9))
    table.add_note(
        "batched-stream speedup: batch dedup + oracle/result caching "
        "(+ worker processes on multi-core hosts); answers are identical "
        "to the serial loop"
    )
    table.add_note(
        "unique-corpus rows isolate the partitioned chunk scan; ~1x on a "
        "single core, scales with cores"
    )
    return table


# ----------------------------------------------------------------------
# Reproduction-specific ablations (design choices called out in DESIGN.md)
# ----------------------------------------------------------------------
def ablation_end_kill(scale: str = "quick", dataset: str = "geolife", seed: int = 0) -> Table:
    """End-cell kill (Eq. 9 pruning, safe min-form) on vs off."""
    table = Table(
        f"Ablation: end-cell kills, BTM, {dataset}",
        ["n", "kills", "cells expanded", "response time (s)"],
    )
    for n in _ns(scale):
        for flag in (True, False):
            rec = run_motif("btm", dataset, n, seed=seed, use_end_kill=flag)
            table.add_row(n, "on" if flag else "off",
                          rec.stats.cells_expanded, rec.seconds)
    return table


def ablation_gub(scale: str = "quick", dataset: str = "geolife", seed: int = 0) -> Table:
    """GUB_DFD bsf-tightening (GTM Step 4) on vs off."""
    table = Table(
        f"Ablation: GUB_DFD tightening, GTM, {dataset}",
        ["n", "gub", "group pairs pruned", "response time (s)"],
    )
    for n in _ns(scale):
        for flag in (True, False):
            rec = run_motif("gtm", dataset, n, seed=seed, use_gub=flag)
            pruned = (
                rec.stats.group_pairs_pruned_pattern
                + rec.stats.group_pairs_pruned_glb
            )
            table.add_row(n, "on" if flag else "off", pruned, rec.seconds)
    return table


#: Experiment registry for the CLI.
EXPERIMENTS = {
    "table1": table1_measures,
    "fig2": fig02_ed_vs_dfd,
    "fig3": fig03_dtw_vs_dfd,
    "fig4": fig04_symbolic,
    "fig13": fig13_tight_vs_relaxed_n,
    "fig14": fig14_tight_vs_relaxed_xi,
    "fig15": fig15_pruning_breakdown,
    "fig16": fig16_bound_ablation,
    "fig17": fig17_group_size,
    "fig18": fig18_response_time,
    "fig19": fig19_space,
    "fig20": fig20_min_length,
    "fig21": fig21_cross_trajectory,
    "engine_scaling": engine_scaling,
    "ablation_end_kill": ablation_end_kill,
    "ablation_gub": ablation_gub,
}
