"""Experiment execution helpers: timed runs, workload cache, scaling.

Scaling note (DESIGN.md Section 4): the paper's C++ implementation runs
n up to 10,000; this reproduction runs CPython and scales n down by
roughly one order of magnitude while keeping the paper's ratio
``xi / n = 2%``.  All comparisons are *relative* (speedup factors,
pruning ratios, space growth), which transfer across implementations.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..core import MotifTimeout, SearchStats
from ..core.motif import MotifResult
from ..datasets import get_dataset
from ..trajectory import Trajectory

#: The paper fixes xi = 100 at n = 5000; keep the 2% ratio when scaling.
XI_RATIO = 0.02

#: Scale presets: n values per experiment size.
SCALES: Dict[str, Tuple[int, ...]] = {
    "smoke": (100, 160),
    "quick": (120, 240, 480),
    "full": (200, 400, 800, 1600),
}

#: Wall-clock budget per single algorithm run (seconds), mirroring the
#: paper's 2-hour BruteDP cutoff at our scale.
DEFAULT_TIMEOUT = 120.0


def bench_scale() -> str:
    """The benchmark scale preset, from ``REPRO_BENCH_SCALE`` (smoke)."""
    return os.environ.get("REPRO_BENCH_SCALE", "smoke")


def bench_workers() -> int:
    """Worker count for engine-backed runs, from ``REPRO_BENCH_WORKERS``."""
    return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))


def results_dir() -> Path:
    """Directory for archived benchmark tables.

    ``REPRO_BENCH_RESULTS`` wins; otherwise a source checkout's
    ``benchmarks/results`` (anchored at the repo root, so the target
    does not wander with the CWD), falling back to a CWD-relative path
    for installed packages.
    """
    override = os.environ.get("REPRO_BENCH_RESULTS")
    if override:
        return Path(override)
    repo_root = Path(__file__).resolve().parents[3]
    if (repo_root / "benchmarks").is_dir():
        return repo_root / "benchmarks" / "results"
    return Path("benchmarks/results")


def save_table(table, directory: Optional[Path] = None) -> Path:
    """Archive an experiment table as JSON next to the benchmark outputs."""
    name = table.title.split(":")[0].strip().lower().replace(" ", "_")
    out = (results_dir() if directory is None else Path(directory)) / f"{name}.json"
    table.save_json(out)
    return out


def default_xi(n: int) -> int:
    """The scaled minimum motif length for a trajectory of length n."""
    return max(4, int(n * XI_RATIO))


def default_tau(n: int) -> int:
    """Scaled group size keeping the paper's group count n/tau ~ 156.

    The paper's default is tau=32 at n=5000; keeping the *number of
    groups* comparable (rather than tau itself) preserves the grouping
    pruning power at our smaller n.
    """
    return max(2, n // 128)


_HARNESS_ENGINE = None


def harness_engine():
    """The engine all timed harness runs go through.

    Caches are disabled so every cell pays its full precompute cost --
    the per-figure comparisons stay faithful to the paper's setting.
    ``REPRO_BENCH_WORKERS`` > 1 switches every cell to the partitioned
    parallel path (off by default: the figures compare algorithms, not
    the engine).
    """
    global _HARNESS_ENGINE
    if _HARNESS_ENGINE is None:
        from ..engine import MotifEngine

        _HARNESS_ENGINE = MotifEngine(
            workers=bench_workers(),
            oracle_cache_size=0,
            tables_cache_size=0,
            result_cache_size=0,
        )
    return _HARNESS_ENGINE


@lru_cache(maxsize=64)
def trajectory_for(dataset: str, n: int, seed: int = 0) -> Trajectory:
    """Cached dataset trajectory (generation is deterministic per seed)."""
    return get_dataset(dataset, seed=seed).generate(n)


@lru_cache(maxsize=64)
def pair_for(dataset: str, n: int, seed: int = 0) -> Tuple[Trajectory, Trajectory]:
    """Cached pair of independent trajectories for cross-mode runs."""
    return get_dataset(dataset, seed=seed).generate_pair(n)


@dataclass
class RunRecord:
    """Outcome of one timed motif search."""

    algorithm: str
    dataset: str
    n: int
    xi: int
    seconds: Optional[float]  # None when timed out
    distance: Optional[float]
    stats: Optional[SearchStats]
    timed_out: bool = False

    @property
    def space_mb(self) -> Optional[float]:
        return None if self.stats is None else self.stats.space_mb()


def run_motif(
    algorithm: str,
    dataset: str,
    n: int,
    xi: Optional[int] = None,
    seed: int = 0,
    cross: bool = False,
    timeout: Optional[float] = DEFAULT_TIMEOUT,
    **options,
) -> RunRecord:
    """Run one (algorithm, dataset, n, xi) cell and record the outcome."""
    xi = default_xi(n) if xi is None else xi
    if cross:
        first, second = pair_for(dataset, n, seed)
    else:
        first, second = trajectory_for(dataset, n, seed), None
    if timeout is not None:
        options.setdefault("timeout", timeout)
    if algorithm in ("gtm_star", "gtm*"):
        # GTM* runs a single grouping level; pick tau so the group count
        # stays paper-proportional (n/tau ~ 128).  GTM descends from its
        # own paper default (tau=32) and needs no override.
        options.setdefault("tau", default_tau(n))
    start = time.perf_counter()
    try:
        result: MotifResult = harness_engine().discover(
            first, second, min_length=xi, algorithm=algorithm, **options
        )
    except MotifTimeout:
        return RunRecord(
            algorithm, dataset, n, xi,
            seconds=None, distance=None, stats=None, timed_out=True,
        )
    elapsed = time.perf_counter() - start
    return RunRecord(
        algorithm, dataset, n, xi,
        seconds=elapsed, distance=result.distance, stats=result.stats,
    )


def run_motif_averaged(
    algorithm: str,
    dataset: str,
    n: int,
    xi: Optional[int] = None,
    repeat: int = 10,
    seed: int = 0,
    **options,
) -> RunRecord:
    """Average response time over ``repeat`` trajectories (paper §6.1:
    "we report the average measurements over 10 different trajectories
    of the same length").

    Returns a record whose ``seconds`` is the mean over the non-timed-out
    runs; ``distance`` and ``stats`` come from the last run (they are
    seed-specific).  ``timed_out`` is set when *every* run timed out.
    """
    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    times = []
    last: Optional[RunRecord] = None
    for k in range(repeat):
        rec = run_motif(algorithm, dataset, n, xi=xi, seed=seed + k, **options)
        if not rec.timed_out:
            times.append(rec.seconds)
            last = rec
    if last is None:
        return RunRecord(algorithm, dataset, n, default_xi(n) if xi is None else xi,
                         seconds=None, distance=None, stats=None, timed_out=True)
    return RunRecord(
        last.algorithm, dataset, n, last.xi,
        seconds=float(sum(times) / len(times)),
        distance=last.distance, stats=last.stats,
    )


def timed(fn, *args, **kwargs):
    """``(result, seconds)`` of one call."""
    start = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - start


def timed_best(fn, *args, repeats: int = 2, **kwargs):
    """``(result, seconds)`` with ``seconds`` the best of ``repeats`` calls.

    The noise-robust estimate for workload-level comparisons on shared
    hosts: scheduling noise only ever *adds* time, so the minimum over
    a couple of identical runs is the faithful cost of the workload.
    Used by the engine-scaling experiment, whose speedup floors gate CI.
    """
    best = None
    out = None
    for _ in range(max(1, int(repeats))):
        out, seconds = timed(fn, *args, **kwargs)
        best = seconds if best is None else min(best, seconds)
    return out, best
