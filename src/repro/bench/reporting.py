"""Result tables for the experiment harness.

Each experiment returns a :class:`Table` -- a titled grid of rows that
renders as aligned ASCII (the textual analogue of the paper's figures)
and serialises to JSON for archival in ``benchmarks/results/``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, List, Sequence, Union


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    if value is None:
        return "-"
    return str(value)


@dataclass
class Table:
    """A titled result grid with column headers."""

    title: str
    columns: Sequence[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        """Aligned ASCII rendering."""
        cells = [[_fmt(c) for c in self.columns]] + [
            [_fmt(v) for v in row] for row in self.rows
        ]
        widths = [max(len(r[k]) for r in cells) for k in range(len(self.columns))]
        lines = [f"== {self.title} =="]
        header = "  ".join(c.ljust(w) for c, w in zip(cells[0], widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells[1:]:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": self.rows,
            "notes": self.notes,
        }

    def save_json(self, path: Union[str, Path]) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, default=str))

    def column(self, name: str) -> List[Any]:
        """All values of one column (for assertions in benchmarks)."""
        k = list(self.columns).index(name)
        return [row[k] for row in self.rows]

    def charts(self, width: int = 64, height: int = 14) -> str:
        """ASCII line charts of the table's numeric series.

        Uses the first integer-valued column (``n``, ``xi``, ...) as the
        x axis and every numeric column as a series; when a ``dataset``
        column exists, one chart is rendered per dataset.  Returns an
        empty string when the table has no chartable structure.
        """
        from ..viz import render_series

        cols = list(self.columns)
        x_col = next(
            (k for k, name in enumerate(cols)
             if str(name) in ("n", "xi", "tau", "value")
             and all(isinstance(r[k], int) for r in self.rows)),
            None,
        )
        if x_col is None or not self.rows:
            return ""
        group_col = next(
            (k for k, name in enumerate(cols) if str(name) == "dataset"), None
        )
        numeric_cols = [
            k for k, name in enumerate(cols)
            if k not in (x_col, group_col)
            and all(isinstance(r[k], (int, float)) or r[k] is None
                    for r in self.rows)
            and any(isinstance(r[k], float) for r in self.rows)
        ]
        if not numeric_cols:
            return ""
        groups = {}
        for row in self.rows:
            key = row[group_col] if group_col is not None else ""
            groups.setdefault(key, []).append(row)
        charts = []
        for key, rows in groups.items():
            xs = [row[x_col] for row in rows]
            series = {
                str(cols[k]): [row[k] for row in rows] for k in numeric_cols
            }
            if all(v is None for vals in series.values() for v in vals):
                continue
            title = self.title if not key else f"{self.title} -- {key}"
            charts.append(
                render_series(title, xs, series, width=width, height=height)
            )
        return "\n\n".join(charts)

    def __str__(self) -> str:
        return self.render()
