"""Generic synthetic trajectory generators for tests and ablations.

These are not tied to any of the paper's datasets; they provide
controlled structure (pure random walks, planted motifs, loops) used by
unit tests, property tests and the measure-comparison experiments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import DatasetError
from ..trajectory import Trajectory
from .base import TrajectoryGenerator, register_dataset


@register_dataset
class RandomWalk(TrajectoryGenerator):
    """Plain Gaussian random walk in the plane (no planted structure)."""

    name = "random_walk"
    description = "planar Gaussian random walk; unstructured null model"

    step_sigma = 1.0

    def _generate(self, n: int, rng: np.random.Generator) -> Trajectory:
        steps = rng.normal(0.0, self.step_sigma, size=(n, 2))
        steps[0] = 0.0
        return Trajectory(
            steps.cumsum(axis=0),
            np.arange(n, dtype=np.float64),
            crs="plane",
            trajectory_id=f"walk-{self.seed}",
        )


@register_dataset
class PlantedMotifWalk(TrajectoryGenerator):
    """Random walk with one near-identical segment planted twice.

    The planted pair is the expected motif: a segment of
    ``motif_fraction * n`` points is copied from the first half into the
    second half with small Gaussian perturbation, so the true motif
    distance is small and approximately known.
    """

    name = "planted"
    description = "random walk with a noisy duplicated segment (known motif)"

    step_sigma = 1.0
    motif_fraction = 0.15
    motif_noise = 0.02

    def _generate(self, n: int, rng: np.random.Generator) -> Trajectory:
        if n < 20:
            raise DatasetError("planted motif needs n >= 20")
        steps = rng.normal(0.0, self.step_sigma, size=(n, 2))
        steps[0] = 0.0
        pts = steps.cumsum(axis=0)
        m = max(int(n * self.motif_fraction), 4)
        src = n // 8
        dst = n // 2 + n // 8
        if dst + m > n:
            m = n - dst
        # Plant a *spatial revisit*: the walker returns to the same
        # place and retraces the source segment with small noise.  (DFD
        # is not translation invariant, so copying the shape elsewhere
        # would not create a motif.)
        noise = rng.normal(0.0, self.motif_noise, size=(m, 2))
        pts[dst : dst + m] = pts[src : src + m] + noise
        return Trajectory(
            pts,
            np.arange(n, dtype=np.float64),
            crs="plane",
            trajectory_id=f"planted-{self.seed}",
        )

    def planted_indices(self, n: int):
        """``(src_start, dst_start, length)`` of the planted pair."""
        m = max(int(n * self.motif_fraction), 4)
        src = n // 8
        dst = n // 2 + n // 8
        if dst + m > n:
            m = n - dst
        return src, dst, m


@register_dataset
class FigureEight(TrajectoryGenerator):
    """Deterministic figure-eight loop; dense self-similarity.

    Every lap retraces the same curve, so motifs abound -- a stress test
    for pruning (tiny ``bsf`` found immediately).
    """

    name = "figure_eight"
    description = "noisy figure-eight laps; extreme self-similarity"

    radius = 10.0
    noise = 0.05
    points_per_lap = 64

    def _generate(self, n: int, rng: np.random.Generator) -> Trajectory:
        t = np.arange(n) * (2.0 * np.pi / self.points_per_lap)
        x = self.radius * np.sin(t)
        y = self.radius * np.sin(t) * np.cos(t)
        pts = np.column_stack([x, y]) + rng.normal(0.0, self.noise, size=(n, 2))
        return Trajectory(
            pts,
            np.arange(n, dtype=np.float64),
            crs="plane",
            trajectory_id=f"eight-{self.seed}",
        )


def nonuniform_variant(
    traj: Trajectory, keep_fraction: float = 0.5, seed: Optional[int] = None
) -> Trajectory:
    """Non-uniformly thinned copy (builds Figure 3's ``S_c``)."""
    if not 0.0 < keep_fraction <= 1.0:
        raise DatasetError("keep_fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    n = traj.n
    keep = rng.random(n) < keep_fraction
    keep[0] = keep[-1] = True
    idx = np.flatnonzero(keep)
    return Trajectory(
        traj.points[idx].copy(),
        traj.timestamps[idx].copy(),
        crs=traj.crs,
        trajectory_id=traj.trajectory_id,
    )
