"""Wild-Baboon-like movement simulator.

The real dataset (Strandburg-Peshkin et al., Science 2015; Movebank)
recorded wild olive baboons at Mpala Research Centre with custom GPS
collars sampling at exactly 1 Hz for two weeks.  The movement signature
is a *correlated random walk*: smooth heading changes while travelling,
foraging loops that revisit food patches, resting bouts near the sleep
tree -- at uniform high-frequency sampling (the opposite extreme of
GeoLife's gappy logs).

The simulator runs an Ornstein-Uhlenbeck process on the heading with
mode switches between "travel", "forage" (tight loops) and "rest"
(near-zero speed), plus a homing pull back toward the sleeping tree,
which produces the revisit structure motifs need.
"""

from __future__ import annotations

import numpy as np

from ..trajectory import Trajectory
from .base import TrajectoryGenerator, local_xy_to_latlon, register_dataset

#: Mpala Research Centre, Kenya.
_ORIGIN_LAT = 0.2922
_ORIGIN_LON = 36.8986


@register_dataset
class BaboonLike(TrajectoryGenerator):
    """1 Hz correlated-random-walk simulator with behavioural modes."""

    name = "baboon"
    description = (
        "wild baboon collar at 1 Hz; correlated random walk with "
        "travel/forage/rest modes and homing toward the sleep tree"
    )

    #: Mean speed per mode (m/s).
    mode_speeds = {"travel": 1.2, "forage": 0.4, "rest": 0.03}
    #: Heading-noise scale per mode (radians per step).
    mode_turns = {"travel": 0.12, "forage": 0.55, "rest": 0.8}
    #: Mean mode durations (seconds).
    mode_durations = {"travel": 240.0, "forage": 420.0, "rest": 180.0}
    #: Homing strength toward the sleep tree (1/s).
    homing = 4e-4
    #: GPS jitter (metres); the collars were high quality.
    jitter_m = 1.5

    def _generate(self, n: int, rng: np.random.Generator) -> Trajectory:
        modes = ("travel", "forage", "rest")
        pos = np.zeros(2)
        heading = rng.uniform(0.0, 2.0 * np.pi)
        mode = "travel"
        remaining = rng.exponential(self.mode_durations[mode])
        xy = np.empty((n, 2))
        for k in range(n):
            xy[k] = pos
            remaining -= 1.0
            if remaining <= 0.0:
                mode = modes[int(rng.integers(len(modes)))]
                remaining = rng.exponential(self.mode_durations[mode])
            heading += rng.normal(0.0, self.mode_turns[mode])
            # Homing: bias the heading toward the sleep tree (origin).
            to_home = np.arctan2(-pos[1], -pos[0])
            delta = np.arctan2(np.sin(to_home - heading), np.cos(to_home - heading))
            heading += self.homing * np.linalg.norm(pos) * np.sign(delta) * 0.01
            speed = self.mode_speeds[mode] * rng.uniform(0.6, 1.4)
            pos = pos + speed * np.array([np.cos(heading), np.sin(heading)])
        xy = xy + rng.normal(0.0, self.jitter_m, size=xy.shape)
        stamps = np.arange(n, dtype=np.float64)  # exactly 1 Hz
        latlon = local_xy_to_latlon(xy, _ORIGIN_LAT, _ORIGIN_LON)
        return Trajectory(
            latlon, stamps, crs="latlon", trajectory_id=f"baboon-sim-{self.seed}"
        )
