"""Synthetic dataset simulators (offline stand-ins for the paper's data).

See DESIGN.md Section 4 for the substitution rationale: GeoLife, Truck
and Wild-Baboon are not redistributable, so seeded simulators reproduce
the structural characteristics that drive the algorithms' behaviour.
"""

from .base import (
    METERS_PER_DEG_LAT,
    TrajectoryGenerator,
    dataset_names,
    get_dataset,
    local_xy_to_latlon,
    make_trajectory,
    meters_to_degrees,
    register_dataset,
)
from .geolife import GeoLifeLike
from .truck import TruckLike
from .baboon import BaboonLike
from .synthetic import FigureEight, PlantedMotifWalk, RandomWalk, nonuniform_variant

__all__ = [
    "BaboonLike",
    "FigureEight",
    "GeoLifeLike",
    "METERS_PER_DEG_LAT",
    "PlantedMotifWalk",
    "RandomWalk",
    "TrajectoryGenerator",
    "TruckLike",
    "dataset_names",
    "get_dataset",
    "local_xy_to_latlon",
    "make_trajectory",
    "meters_to_degrees",
    "nonuniform_variant",
    "register_dataset",
]
