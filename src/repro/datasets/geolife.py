"""GeoLife-like pedestrian GPS simulator.

The real GeoLife dataset (Zheng et al., Microsoft Research) records
people's daily movement with heterogeneous GPS loggers: routes between
a small set of anchor places (home, office, shops) are repeated across
days, the sampling period changes between devices and activities
(1 s - 60 s), samples go missing, and positions carry a few metres of
jitter.  The paper's Figure 1 motif -- the same commute on two
different days -- is exactly the structure this generator plants.

The generator simulates a pedestrian alternating between anchor places
along slightly noisy piecewise-straight routes.  Because routes repeat
across simulated days, motifs (low-DFD subtrajectory pairs) exist at
many scales, matching the pruning-friendly structure of the real data.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..trajectory import Trajectory
from .base import TrajectoryGenerator, local_xy_to_latlon, register_dataset

#: Beijing-ish origin, matching GeoLife's dominant collection area.
_ORIGIN_LAT = 39.9042
_ORIGIN_LON = 116.4074


@register_dataset
class GeoLifeLike(TrajectoryGenerator):
    """Pedestrian daily-routine simulator with GeoLife-like sampling."""

    name = "geolife"
    description = (
        "pedestrian commuting between anchor places; repeated daily routes, "
        "varying sampling period (1-60 s), dropped samples, GPS jitter"
    )

    #: Walking speed range (m/s).
    speed_range = (1.0, 1.8)
    #: Per-segment sampling periods (seconds) to rotate through.
    sampling_periods = (1.0, 5.0, 15.0, 60.0)
    #: Fraction of samples dropped (missing GPS fixes).
    drop_fraction = 0.05
    #: GPS jitter standard deviation (metres).
    jitter_m = 4.0
    #: Number of anchor places in the routine.
    n_anchors = 6
    #: Extent of the anchor layout (metres).
    extent_m = 3000.0

    def _generate(self, n: int, rng: np.random.Generator) -> Trajectory:
        anchors = rng.uniform(-self.extent_m, self.extent_m, size=(self.n_anchors, 2))
        # A small routine of anchor-to-anchor legs, repeated like days.
        routine: List[int] = [0, 1, 2, 1, 0]
        extra = rng.permutation(self.n_anchors).tolist()
        routine = routine + extra + routine  # revisits guarantee motifs

        xs: List[np.ndarray] = []
        ts: List[np.ndarray] = []
        t = 0.0
        produced = 0
        leg = 0
        # Generate with headroom; dropping samples shrinks the stream.
        target = int(n * (1.0 + self.drop_fraction) + 16)
        while produced < target:
            a = anchors[routine[leg % len(routine)]]
            b = anchors[routine[(leg + 1) % len(routine)]]
            leg += 1
            span = np.linalg.norm(b - a)
            if span < 1.0:
                continue
            speed = rng.uniform(*self.speed_range)
            period = float(rng.choice(self.sampling_periods))
            duration = span / speed
            # Cap the samples per leg so a long leg at a fast sampling
            # rate cannot swallow the whole budget: the mixture of
            # sampling periods must be visible within n samples.
            k = int(np.clip(duration / period, 2, 60))
            duration = k * period
            frac = np.linspace(0.0, 1.0, k, endpoint=False)
            pts = a[None, :] + frac[:, None] * (b - a)[None, :]
            # Route noise: a gentle, smooth wobble around the straight leg.
            wobble = rng.normal(0.0, 8.0, size=(k, 2)).cumsum(axis=0) * 0.05
            pts = pts + wobble
            stamps = t + frac * duration
            t += duration + rng.uniform(30.0, 600.0)  # pause at the anchor
            xs.append(pts)
            ts.append(stamps)
            produced += k
        xy = np.vstack(xs)
        stamps = np.concatenate(ts)
        # Missing samples: drop a random fraction (GeoLife gaps).
        keep = rng.random(xy.shape[0]) >= self.drop_fraction
        keep[:2] = True
        xy = xy[keep][:n]
        stamps = stamps[keep][:n]
        # GPS jitter in metres.
        xy = xy + rng.normal(0.0, self.jitter_m, size=xy.shape)
        latlon = local_xy_to_latlon(xy, _ORIGIN_LAT, _ORIGIN_LON)
        return Trajectory(
            latlon, stamps, crs="latlon", trajectory_id=f"geolife-sim-{self.seed}"
        )
