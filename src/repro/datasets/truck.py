"""Truck-like fleet GPS simulator.

The real Truck dataset (chorochronos.org) tracks 50 concrete trucks
around the Athens metropolitan area over 33 days: vehicles leave a
depot, drive road-constrained routes to construction sites and return.
The distinguishing structure is *road-network constraint* (axis-aligned
driving on a street grid) and heavy *route repetition* (the same
depot-to-site run many times a day), with a coarse, fairly regular
sampling period (~30 s).

The simulator drives a truck on a Manhattan street grid between a depot
and a handful of sites, snapping movement to grid edges, which yields
the long straight segments and right-angle turns the symbolic baseline
(Figure 4) reacts to, and the repeated deliveries that create motifs.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..trajectory import Trajectory
from .base import TrajectoryGenerator, local_xy_to_latlon, register_dataset

#: Athens-ish origin.
_ORIGIN_LAT = 37.9838
_ORIGIN_LON = 23.7275


@register_dataset
class TruckLike(TrajectoryGenerator):
    """Depot-to-site delivery simulator on a Manhattan street grid."""

    name = "truck"
    description = (
        "delivery trucks on a street grid; depot-site-depot loops, "
        "~30 s sampling, route repetition"
    )

    #: Street grid spacing (metres).
    block_m = 250.0
    #: Grid size (blocks per side).
    grid_size = 14
    #: Driving speed range (m/s).
    speed_range = (7.0, 14.0)
    #: Sampling period (seconds) with small per-sample noise.
    period_s = 30.0
    #: Number of construction sites served from the depot.
    n_sites = 4
    #: GPS jitter (metres); trucks' receivers are decent.
    jitter_m = 6.0

    def _generate(self, n: int, rng: np.random.Generator) -> Trajectory:
        half = self.grid_size // 2
        depot = (0, 0)
        sites = [
            (int(rng.integers(-half, half + 1)), int(rng.integers(-half, half + 1)))
            for _ in range(self.n_sites)
        ]
        xs: List[np.ndarray] = []
        produced = 0
        site_order = 0
        while produced < n + 4:
            site = sites[site_order % len(sites)]
            site_order += 1
            for a, b in ((depot, site), (site, depot)):
                path = self._grid_route(a, b)
                pts = self._drive(path, rng)
                xs.append(pts)
                produced += pts.shape[0]
        xy = np.vstack(xs)[:n]
        xy = xy + rng.normal(0.0, self.jitter_m, size=xy.shape)
        periods = self.period_s * rng.uniform(0.9, 1.1, size=n)
        stamps = np.concatenate([[0.0], np.cumsum(periods[:-1])])
        latlon = local_xy_to_latlon(xy, _ORIGIN_LAT, _ORIGIN_LON)
        return Trajectory(
            latlon, stamps, crs="latlon", trajectory_id=f"truck-sim-{self.seed}"
        )

    def _grid_route(self, a: Tuple[int, int], b: Tuple[int, int]) -> List[Tuple[int, int]]:
        """L-shaped Manhattan route between two grid intersections."""
        route = [a]
        x, y = a
        step_x = 1 if b[0] > x else -1
        while x != b[0]:
            x += step_x
            route.append((x, y))
        step_y = 1 if b[1] > y else -1
        while y != b[1]:
            y += step_y
            route.append((x, y))
        return route

    def _drive(self, route: List[Tuple[int, int]], rng: np.random.Generator) -> np.ndarray:
        """Sample positions along the grid route at the truck's speed."""
        corners = np.asarray(route, dtype=np.float64) * self.block_m
        if corners.shape[0] < 2:
            return corners
        speed = rng.uniform(*self.speed_range)
        spacing = speed * self.period_s
        pts: List[np.ndarray] = []
        for k in range(corners.shape[0] - 1):
            a, b = corners[k], corners[k + 1]
            seg = np.linalg.norm(b - a)
            steps = max(int(seg / spacing), 1)
            frac = np.arange(steps) / steps
            pts.append(a[None, :] + frac[:, None] * (b - a)[None, :])
        pts.append(corners[-1:])
        return np.vstack(pts)
