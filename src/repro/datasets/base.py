"""Synthetic dataset generator framework.

The paper evaluates on three real datasets (GeoLife, Truck,
Wild-Baboon).  None of them is redistributable or downloadable in an
offline environment, so this package provides seeded generators that
reproduce the *characteristics the algorithms are sensitive to*:

* spatial self-similarity (repeated routes -> motifs to discover and
  small early ``bsf`` values, which drive pruning effectiveness);
* sampling behaviour (uniform 1 Hz collars vs. bursty, gappy GPS logs);
* geographic coordinate ranges and realistic speeds.

Every generator is deterministic given its seed, making the benchmark
figures reproducible run to run.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Type

import numpy as np

from ..errors import DatasetError
from ..trajectory import Trajectory

#: Metres per degree of latitude (WGS-84 mean).
METERS_PER_DEG_LAT = 111_320.0


def meters_to_degrees(dx_m: float, dy_m: float, lat: float):
    """Convert a local metre offset to (dlat, dlon) degrees at ``lat``."""
    dlat = dy_m / METERS_PER_DEG_LAT
    dlon = dx_m / (METERS_PER_DEG_LAT * math.cos(math.radians(lat)))
    return dlat, dlon


def local_xy_to_latlon(xy_m: np.ndarray, origin_lat: float, origin_lon: float) -> np.ndarray:
    """Vectorised conversion of local metres to (lat, lon) degrees."""
    lat = origin_lat + xy_m[:, 1] / METERS_PER_DEG_LAT
    lon = origin_lon + xy_m[:, 0] / (
        METERS_PER_DEG_LAT * np.cos(np.radians(origin_lat))
    )
    return np.column_stack([lat, lon])


class TrajectoryGenerator:
    """Base class: seeded generator producing one trajectory of length n."""

    #: Registry key, e.g. ``"geolife"``.
    name: str = "abstract"
    #: Dataset description used by the CLI.
    description: str = ""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def generate(self, n: int) -> Trajectory:
        """Produce a trajectory with exactly ``n`` points."""
        if n < 2:
            raise DatasetError("n must be at least 2")
        rng = np.random.default_rng(self.seed)
        traj = self._generate(n, rng)
        if traj.n != n:
            raise DatasetError(
                f"{type(self).__name__} produced {traj.n} points, wanted {n}"
            )
        return traj

    def generate_pair(self, n: int):
        """Two independent trajectories (for the cross-trajectory variant)."""
        first = type(self)(seed=self.seed).generate(n)
        second = type(self)(seed=self.seed + 10_007).generate(n)
        return first, second

    def _generate(self, n: int, rng: np.random.Generator) -> Trajectory:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[TrajectoryGenerator]] = {}


def register_dataset(cls: Type[TrajectoryGenerator]) -> Type[TrajectoryGenerator]:
    """Class decorator adding a generator to the registry."""
    _REGISTRY[cls.name] = cls
    return cls


def get_dataset(name: str, seed: int = 0) -> TrajectoryGenerator:
    """Instantiate a registered generator by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return cls(seed=seed)


def dataset_names():
    """Sorted names of all registered datasets."""
    return sorted(_REGISTRY)


def make_trajectory(
    name: str, n: int, seed: int = 0, generator: Optional[TrajectoryGenerator] = None
) -> Trajectory:
    """Convenience wrapper: one call to get a dataset trajectory."""
    gen = generator if generator is not None else get_dataset(name, seed=seed)
    return gen.generate(n)
