"""Fork-shared metrics registry (counters, gauges, latency histograms).

The serving stack runs as a tree of processes -- a fleet master, its
pre-forked service workers, and each worker's engine pool children --
and every one of them produces telemetry.  This module gives them a
single set of aggregates without any cross-process locking on the hot
path, in the spirit of ``prometheus_client``'s multiprocess mode:

* All series live in one ``fork``-context shared double array carved
  into fixed-size *process slots*.  A process claims a slot once (the
  only cross-process lock, held at claim time), then increments its
  own slot's cells with nothing but a per-process ``threading.Lock``
  -- no other process ever writes those cells.
* Reads merge: a counter's value is the sum of its cell across every
  slot plus the *archive* slot (slot 0), into which a claimer folds
  the counts of a dead process before reusing its slot.  Totals are
  therefore monotone across worker crashes and pool rebuilds, exactly
  what a Prometheus scraper expects.
* Cell offsets are assigned at registration time in registration
  order, so series **must** be registered deterministically before the
  first fork -- i.e. at module scope, the same discipline
  :mod:`repro.faults` imposes on failpoint arming.  Labelled families
  pre-declare their full child set for the same reason.

Histograms use fixed log-scaled latency buckets
(:data:`LATENCY_BUCKETS`) stored as per-bucket counts plus a sum cell;
:func:`render_prometheus` re-renders them cumulatively in the text
exposition format.
"""

from __future__ import annotations

import bisect
import os
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

try:
    import multiprocessing

    _CTX = multiprocessing.get_context("fork")
except (ImportError, ValueError):  # pragma: no cover - non-POSIX hosts
    _CTX = None

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "render_prometheus",
]

#: Fixed log-scaled latency buckets (seconds): 1 ms doubling to ~16 s.
#: Fixed -- rather than configurable per histogram -- so every process
#: that forked off the registry agrees on the cell layout.
LATENCY_BUCKETS = tuple(0.001 * 2 ** k for k in range(15))

#: Process slots (slot 0 is the archive of dead processes).
DEFAULT_SLOTS = 48

#: Cells per slot; one counter/gauge cell or ``buckets + 2`` per histogram.
DEFAULT_CELLS = 2048

#: Bound on waiting for the shared slot-table semaphore.  A sibling can
#: die *inside* the claim critical section -- ``ProcessPoolExecutor``
#: SIGTERMs every worker of a broken pool, and a process-shared
#: semaphore has no owner tracking, so nothing ever releases it -- and
#: an unbounded acquire would then deadlock the first metric write of
#: every process forked afterwards.  On timeout the claimer disables
#: its own metrics instead of blocking its caller forever.
CLAIM_TIMEOUT = 5.0


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, other uid
        return True
    except OSError:  # pragma: no cover
        return False
    return True


class _LocalPids:
    """Fallback pid table when no ``fork`` context exists (single process)."""

    def __init__(self, n: int) -> None:
        self._data = [0] * n
        self._lock = threading.Lock()

    def get_lock(self):
        return self._lock

    def __getitem__(self, i: int) -> int:
        return self._data[i]

    def __setitem__(self, i: int, value: int) -> None:
        self._data[i] = value


class _Child:
    """Shared plumbing of one concrete series (one label combination)."""

    def __init__(self, registry: "MetricsRegistry", name: str,
                 labels: Tuple[Tuple[str, str], ...], cell: int) -> None:
        self._registry = registry
        self.name = name
        self.labels = labels
        self._cell = cell

    def _add(self, offset: int, amount: float) -> None:
        reg = self._registry
        if not reg.enabled:
            return
        idx = reg._slot_base() + self._cell + offset
        if not reg.enabled:  # claiming a slot may have just degraded us
            return
        with reg._write_lock:
            reg._values[idx] += amount

    def _merged(self, offset: int = 0, *, live_only: bool = False) -> float:
        return self._registry._cell_value(
            self._cell + offset, live_only=live_only
        )

    def local_value(self) -> float:
        """This process's own contribution (its slot only)."""
        reg = self._registry
        return reg._values[reg._slot_base() + self._cell]

    def per_process(self) -> Dict[int, float]:
        """``{pid: value}`` over the live claimed slots."""
        return self._registry._cell_per_process(self._cell)


class Counter(_Child):
    """Monotone counter; merged value survives process death (archive)."""

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._add(0, amount)

    def value(self) -> float:
        return self._merged()


class Gauge(_Child):
    """Point-in-time value; merged reading sums *live* processes only."""

    kind = "gauge"

    def set(self, value: float) -> None:
        reg = self._registry
        if not reg.enabled:
            return
        idx = reg._slot_base() + self._cell
        if not reg.enabled:
            return
        with reg._write_lock:
            reg._values[idx] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._add(0, amount)

    def dec(self, amount: float = 1.0) -> None:
        self._add(0, -amount)

    def value(self) -> float:
        return self._merged(live_only=True)


class Histogram(_Child):
    """Latency histogram over :data:`LATENCY_BUCKETS`.

    Cell layout: ``buckets`` non-cumulative per-bucket counts, then the
    ``+Inf`` overflow count, then the sum of observations.
    """

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 labels: Tuple[Tuple[str, str], ...], cell: int,
                 buckets: Tuple[float, ...]) -> None:
        super().__init__(registry, name, labels, cell)
        self.buckets = buckets

    def observe(self, value: float) -> None:
        reg = self._registry
        if not reg.enabled:
            return
        bucket = bisect.bisect_left(self.buckets, value)
        base = reg._slot_base() + self._cell
        if not reg.enabled:
            return
        nb = len(self.buckets)
        with reg._write_lock:
            reg._values[base + bucket] += 1.0
            reg._values[base + nb + 1] += value

    def bucket_counts(self) -> List[float]:
        """Merged non-cumulative counts, ``+Inf`` bucket last."""
        return [self._merged(i) for i in range(len(self.buckets) + 1)]

    def count(self) -> float:
        return sum(self.bucket_counts())

    def sum(self) -> float:
        return self._merged(len(self.buckets) + 1)

    def value(self) -> float:
        return self.count()


class _Family:
    """One registered metric name and its pre-declared children."""

    def __init__(self, name: str, help: str, kind: str,
                 labelnames: Tuple[str, ...]) -> None:
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames = labelnames
        self.children: Dict[Tuple[str, ...], _Child] = {}

    def labels(self, *values: str, **kv: str) -> _Child:
        if kv:
            values = tuple(str(kv[n]) for n in self.labelnames)
        key = tuple(str(v) for v in values)
        try:
            return self.children[key]
        except KeyError:
            raise KeyError(
                f"{self.name}: label set {key!r} was not pre-declared; "
                "all children must be registered before the first fork"
            ) from None


class MetricsRegistry:
    """A fixed-capacity slab of fork-shared metric cells."""

    def __init__(self, *, slots: int = DEFAULT_SLOTS,
                 cells: int = DEFAULT_CELLS) -> None:
        self._slots = slots
        self._cells = cells
        if _CTX is not None:
            self._values = _CTX.RawArray("d", slots * cells)
            self._pids = _CTX.Array("q", slots)
        else:  # pragma: no cover - non-POSIX hosts
            self._values = [0.0] * (slots * cells)
            self._pids = _LocalPids(slots)
        self._families: Dict[str, _Family] = {}
        self._order: List[str] = []
        self._gauge_cells: set = set()
        self._next_cell = 0
        self._reg_lock = threading.Lock()
        self._write_lock = threading.Lock()
        self._slot: Optional[int] = None
        self._slot_pid: Optional[int] = None
        self.enabled = True
        if hasattr(os, "register_at_fork"):
            os.register_at_fork(after_in_child=self._after_fork_in_child)

    # -- fork / slot management -------------------------------------
    def _after_fork_in_child(self) -> None:
        # A parent thread may have held the write lock at fork time;
        # the child starts fresh and claims its own slot on first use.
        self._write_lock = threading.Lock()
        self._reg_lock = threading.Lock()
        self._slot = None
        self._slot_pid = None

    def _slot_base(self) -> int:
        pid = os.getpid()
        if self._slot_pid != pid:
            self._slot = self._claim_slot(pid)
            self._slot_pid = pid
        return self._slot * self._cells

    def _claim_slot(self, pid: int) -> int:
        lock = self._pids.get_lock()
        if not lock.acquire(timeout=CLAIM_TIMEOUT):
            # The semaphore is orphaned: its holder died mid-claim (a
            # SIGTERMed pool sibling).  Drop this process's metrics
            # rather than hang its first write; slot 0 writes are
            # guarded by ``enabled`` so nothing lands there either.
            self.enabled = False
            return 0
        try:
            for i in range(1, self._slots):
                if self._pids[i] == pid:
                    return i
            # Prefer a never-used slot: claiming one holds the lock for
            # microseconds, while reusing a dead slot folds its cells
            # into the archive first -- milliseconds during which a
            # SIGTERM aimed at this process would orphan the semaphore.
            # Dead slots keep contributing to merged counter reads, so
            # deferring their archive changes no total.
            stale = None
            for i in range(1, self._slots):
                old = self._pids[i]
                if old == 0:
                    self._pids[i] = pid
                    return i
                if stale is None and not _pid_alive(old):
                    stale = i
            if stale is not None:
                self._archive_slot(stale)
                self._pids[stale] = pid
                return stale
        finally:
            lock.release()
        raise RuntimeError(
            f"metrics registry out of process slots ({self._slots})"
        )

    def _archive_slot(self, slot: int) -> None:
        """Fold a dead process's counts into slot 0 so totals stay
        monotone; gauges are simply dropped (the process is gone)."""
        base = slot * self._cells
        for cell in range(self._cells):
            value = self._values[base + cell]
            if value:
                if cell not in self._gauge_cells:
                    self._values[cell] += value
                self._values[base + cell] = 0.0

    # -- merged reads -----------------------------------------------
    def _cell_value(self, cell: int, *, live_only: bool = False) -> float:
        if not live_only:
            return sum(
                self._values[s * self._cells + cell]
                for s in range(self._slots)
            )
        total = 0.0
        for s in range(1, self._slots):
            pid = self._pids[s]
            if pid and _pid_alive(pid):
                total += self._values[s * self._cells + cell]
        return total

    def _cell_per_process(self, cell: int) -> Dict[int, float]:
        out: Dict[int, float] = {}
        for s in range(1, self._slots):
            pid = self._pids[s]
            if pid and _pid_alive(pid):
                out[int(pid)] = self._values[s * self._cells + cell]
        return out

    # -- registration -----------------------------------------------
    def _alloc(self, cells: int) -> int:
        start = self._next_cell
        if start + cells > self._cells:
            raise RuntimeError("metrics registry out of cells")
        self._next_cell = start + cells
        return start

    def _register(self, name: str, help: str, kind: str,
                  labelnames: Tuple[str, ...],
                  labelvalues: Sequence[Tuple[str, ...]],
                  cells_per_child: int, factory):
        with self._reg_lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name} re-registered with a different shape"
                    )
                return family if labelnames else family.children[()]
            family = _Family(name, help, kind, labelnames)
            combos = [tuple(str(v) for v in vals) for vals in labelvalues] \
                if labelnames else [()]
            for combo in combos:
                if len(combo) != len(labelnames):
                    raise ValueError(
                        f"metric {name}: label values {combo!r} do not "
                        f"match label names {labelnames!r}"
                    )
                cell = self._alloc(cells_per_child)
                if kind == "gauge":
                    self._gauge_cells.update(
                        range(cell, cell + cells_per_child)
                    )
                family.children[combo] = factory(
                    self, name, tuple(zip(labelnames, combo)), cell
                )
            self._families[name] = family
            self._order.append(name)
            return family if labelnames else family.children[()]

    def counter(self, name: str, help: str,
                labels: Tuple[str, ...] = (),
                values: Sequence[Tuple[str, ...]] = ()):
        return self._register(name, help, "counter", tuple(labels),
                              values, 1, Counter)

    def gauge(self, name: str, help: str,
              labels: Tuple[str, ...] = (),
              values: Sequence[Tuple[str, ...]] = ()):
        return self._register(name, help, "gauge", tuple(labels),
                              values, 1, Gauge)

    def histogram(self, name: str, help: str,
                  labels: Tuple[str, ...] = (),
                  values: Sequence[Tuple[str, ...]] = ()):
        buckets = LATENCY_BUCKETS

        def factory(reg, nm, lbls, cell):
            return Histogram(reg, nm, lbls, cell, buckets)

        return self._register(name, help, "histogram", tuple(labels),
                              values, len(buckets) + 2, factory)

    # -- introspection ----------------------------------------------
    def get(self, name: str) -> Optional[_Family]:
        return self._families.get(name)

    def families(self) -> Iterable[_Family]:
        return [self._families[name] for name in self._order]


def _fmt(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _label_str(pairs: Iterable[Tuple[str, str]]) -> str:
    rendered = ",".join(
        '{}="{}"'.format(
            k,
            str(v).replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"),
        )
        for k, v in pairs
    )
    return "{" + rendered + "}" if rendered else ""


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry in the Prometheus text exposition format (v0.0.4)."""
    registry = REGISTRY if registry is None else registry
    lines: List[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for combo in sorted(family.children):
            child = family.children[combo]
            if family.kind == "histogram":
                counts = child.bucket_counts()
                running = 0.0
                for bound, count in zip(child.buckets, counts):
                    running += count
                    labels = _label_str(
                        tuple(child.labels) + (("le", repr(bound)),)
                    )
                    lines.append(
                        f"{family.name}_bucket{labels} {_fmt(running)}"
                    )
                running += counts[-1]
                labels = _label_str(tuple(child.labels) + (("le", "+Inf"),))
                lines.append(f"{family.name}_bucket{labels} {_fmt(running)}")
                base = _label_str(child.labels)
                lines.append(f"{family.name}_sum{base} {_fmt(child.sum())}")
                lines.append(
                    f"{family.name}_count{base} {_fmt(running)}"
                )
            else:
                labels = _label_str(child.labels)
                lines.append(f"{family.name}{labels} {_fmt(child.value())}")
    return "\n".join(lines) + "\n"


#: The process tree's default registry.  Created at import time so
#: every fork -- fleet workers, engine pool children -- shares it.
REGISTRY = MetricsRegistry()

if os.environ.get("REPRO_OBS_METRICS", "").lower() in ("0", "false", "off"):
    REGISTRY.enabled = False
