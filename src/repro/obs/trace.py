"""Request tracing: trace context, spans, and a bounded JSONL sink.

A *trace* is one request's causal tree: the service mints (or adopts,
from the ``X-Repro-Trace-Id`` header) a trace id at admission, opens a
root span, and every layer below -- engine phases, snapshot reloads,
pool-worker tasks -- nests child spans under whatever span its thread
currently has open.  Worker processes join an existing trace via
:func:`set_trace` with the ``(trace_id, parent_span_id)`` ref the task
struct carried over the pipe.

Records land in two sinks:

* a bounded in-process ring (the last :data:`RING_CAPACITY` records),
  which feeds the slow-query log and the CLI's ``--trace`` rendering;
* optionally a JSONL file (``REPRO_TRACE_PATH`` or
  :func:`set_trace_path`), appended with ``O_APPEND`` + ``os.write``
  per record so lines from many processes interleave whole and are
  durable the instant they are written.

Span records are written when the span *closes*; events
(:func:`add_event`) are flushed immediately, which is what lets a
failpoint that SIGKILLs its own process still leave its fire in the
trace.  All timestamps are ``time.perf_counter()`` -- monotonic and,
on Linux, comparable across the processes of one boot -- so nothing
here touches the wall clock (RPR004) and trace ids never reach cache
keys (RPR003): the context lives in thread-local state and task refs,
never in request params.
"""

from __future__ import annotations

import collections
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "TRACE_HEADER",
    "add_event",
    "clear_trace",
    "current_trace",
    "format_trace",
    "new_span_id",
    "new_trace_id",
    "recent_records",
    "set_trace",
    "set_trace_path",
    "span",
    "start_trace",
    "trace_enabled",
    "trace_path",
]

#: HTTP header carrying the trace id into and back out of the service.
TRACE_HEADER = "X-Repro-Trace-Id"

#: Ring capacity (records, newest win).
RING_CAPACITY = 4096

_RING: "collections.deque" = collections.deque(maxlen=RING_CAPACITY)
_LOCAL = threading.local()
_STATE = {
    "enabled": os.environ.get("REPRO_OBS_TRACING", "").lower()
    not in ("0", "false", "off"),
    "path": os.environ.get("REPRO_TRACE_PATH") or None,
    "fd": None,
    "fd_pid": None,
}
_FILE_LOCK = threading.Lock()


def _after_fork_in_child() -> None:
    # The inherited fd is shared O_APPEND -- safe -- but the lock may
    # have been held by a parent thread at fork time.
    global _FILE_LOCK
    _FILE_LOCK = threading.Lock()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_after_fork_in_child)


def new_trace_id() -> str:
    return os.urandom(16).hex()


def new_span_id() -> str:
    return os.urandom(8).hex()


def trace_enabled() -> bool:
    return bool(_STATE["enabled"])


def set_enabled(flag: bool) -> None:
    _STATE["enabled"] = bool(flag)


def trace_path() -> Optional[str]:
    return _STATE["path"]


def set_trace_path(path: Optional[str]) -> None:
    """Point the JSONL sink at ``path`` (``None`` disables the file)."""
    with _FILE_LOCK:
        if _STATE["fd"] is not None and _STATE["fd_pid"] == os.getpid():
            try:
                os.close(_STATE["fd"])
            except OSError:  # pragma: no cover
                pass
        _STATE["fd"] = None
        _STATE["fd_pid"] = None
        _STATE["path"] = str(path) if path else None


@dataclass
class Span:
    """One open span; mutate ``attrs`` freely while it is current."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    events: List[dict] = field(default_factory=list)
    links: List[str] = field(default_factory=list)


def _stack() -> List[Span]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _LOCAL.stack = stack
    return stack


def current_trace() -> Optional[Tuple[str, str]]:
    """``(trace_id, span_id)`` of this thread's current span, or the
    remote context installed by :func:`set_trace`, or ``None``."""
    stack = getattr(_LOCAL, "stack", None)
    if stack:
        top = stack[-1]
        return (top.trace_id, top.span_id)
    return getattr(_LOCAL, "ctx", None)


def set_trace(trace_id: str, parent_span_id: Optional[str] = None) -> None:
    """Join an existing trace (worker side of a task ref)."""
    _LOCAL.ctx = (trace_id, parent_span_id)
    _LOCAL.stack = []


def clear_trace() -> None:
    _LOCAL.ctx = None
    _LOCAL.stack = []


def start_trace(trace_id: Optional[str] = None) -> str:
    """Install a fresh root context on this thread; returns the id."""
    trace_id = trace_id or new_trace_id()
    set_trace(trace_id, None)
    return trace_id


def _write(record: dict, *, to_file: bool = True) -> None:
    _RING.append(record)
    path = _STATE["path"]
    if not path or not to_file:
        return
    line = (json.dumps(record, sort_keys=True) + "\n").encode()
    with _FILE_LOCK:
        pid = os.getpid()
        if _STATE["fd"] is None or _STATE["fd_pid"] != pid:
            _STATE["fd"] = os.open(
                path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            _STATE["fd_pid"] = pid
        try:
            os.write(_STATE["fd"], line)
        except OSError:  # pragma: no cover - sink must never break serving
            pass


@contextmanager
def span(name: str, links: Optional[Iterable[str]] = None, **attrs):
    """Open a child span of this thread's current context.

    No-op (yields ``None``) when tracing is disabled or no trace is
    active -- plain engine use stays record-free unless a caller
    started a trace.
    """
    ctx = current_trace() if _STATE["enabled"] else None
    if ctx is None:
        yield None
        return
    sp = Span(
        trace_id=ctx[0],
        span_id=new_span_id(),
        parent_id=ctx[1],
        name=name,
        start=time.perf_counter(),
        attrs=dict(attrs),
        links=list(links or ()),
    )
    stack = _stack()
    stack.append(sp)
    try:
        yield sp
    finally:
        end = time.perf_counter()
        if stack and stack[-1] is sp:
            stack.pop()
        _write({
            "kind": "span",
            "trace": sp.trace_id,
            "span": sp.span_id,
            "parent": sp.parent_id,
            "name": sp.name,
            "pid": os.getpid(),
            "start": sp.start,
            "end": end,
            "dur_s": end - sp.start,
            "attrs": sp.attrs,
            "events": sp.events,
            "links": sp.links,
        })


def add_event(name: str, **attrs) -> None:
    """Record an instantaneous event on the current span.

    Flushed to the JSONL sink immediately (unlike spans, which are
    written on close) so events survive a process killed mid-span.
    """
    if not _STATE["enabled"]:
        return
    ctx = current_trace()
    if ctx is None:
        return
    t = time.perf_counter()
    stack = getattr(_LOCAL, "stack", None)
    if stack:
        stack[-1].events.append({"name": name, "t": t, "attrs": attrs})
    _write({
        "kind": "event",
        "trace": ctx[0],
        "span": ctx[1],
        "name": name,
        "pid": os.getpid(),
        "t": t,
        "attrs": attrs,
    })


def recent_records(trace_id: Optional[str] = None) -> List[dict]:
    """A snapshot of the ring, optionally filtered to one trace."""
    records = list(_RING)
    if trace_id is None:
        return records
    return [r for r in records if r.get("trace") == trace_id]


def format_trace(records: Iterable[dict],
                 trace_id: Optional[str] = None) -> str:
    """Render span records as an indented tree (slow-query log, CLI)."""
    spans = [
        r for r in records
        if r.get("kind") == "span"
        and (trace_id is None or r.get("trace") == trace_id)
    ]
    if not spans:
        return "(no spans recorded)"
    by_id = {r["span"]: r for r in spans}
    children: Dict[Optional[str], List[dict]] = {}
    for r in spans:
        parent = r.get("parent")
        if parent not in by_id:
            parent = None
        children.setdefault(parent, []).append(r)
    for kids in children.values():
        kids.sort(key=lambda r: r.get("start", 0.0))

    lines: List[str] = []

    def walk(record: dict, depth: int) -> None:
        attrs = record.get("attrs") or {}
        extras = "".join(f" {k}={v}" for k, v in sorted(attrs.items()))
        links = record.get("links") or []
        if links:
            extras += " links=" + ",".join(links)
        lines.append(
            "{}{} {:.3f}ms pid={}{}".format(
                "  " * depth, record["name"],
                1e3 * record.get("dur_s", 0.0), record.get("pid"), extras,
            )
        )
        for event in record.get("events") or []:
            eattrs = event.get("attrs") or {}
            erend = "".join(f" {k}={v}" for k, v in sorted(eattrs.items()))
            lines.append("{}· {}{}".format("  " * (depth + 1),
                                           event["name"], erend))
        for child in children.get(record["span"], ()):
            walk(child, depth + 1)

    for root in children.get(None, ()):
        walk(root, 0)
    return "\n".join(lines)
