"""End-to-end observability: fork-shared metrics and request tracing.

``repro.obs`` is the telemetry layer of the serving stack -- stdlib
only, fork-aware, and cheap enough to leave on in production:

* :mod:`repro.obs.metrics` -- typed ``Counter``/``Gauge``/``Histogram``
  series in one fork-shared slab, merged across the fleet master, its
  service workers and every engine pool child, rendered by
  :func:`render_prometheus` for ``GET /metrics``.
* :mod:`repro.obs.trace` -- trace contexts, spans and events recorded
  to a bounded ring plus an optional JSONL file, propagated over HTTP
  via the ``X-Repro-Trace-Id`` header and into pool workers via task
  refs.

:func:`configure` is the one switch operators need: it flips metrics
and tracing independently (the overhead benchmark drives both) and
points the span sink at a file.  The environment equivalents --
``REPRO_OBS_METRICS``, ``REPRO_OBS_TRACING``, ``REPRO_TRACE_PATH`` --
apply at import time, before any fork, which is how the fleet and its
workers end up agreeing without re-plumbing.
"""

from __future__ import annotations

from typing import Optional

from .metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    render_prometheus,
)
from .trace import (
    TRACE_HEADER,
    add_event,
    clear_trace,
    current_trace,
    format_trace,
    new_span_id,
    new_trace_id,
    recent_records,
    set_trace,
    set_trace_path,
    span,
    start_trace,
    trace_enabled,
    trace_path,
)
from . import trace as _trace

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "TRACE_HEADER",
    "add_event",
    "clear_trace",
    "configure",
    "current_trace",
    "format_trace",
    "metrics_enabled",
    "new_span_id",
    "new_trace_id",
    "recent_records",
    "render_prometheus",
    "set_trace",
    "set_trace_path",
    "span",
    "start_trace",
    "trace_enabled",
    "trace_path",
]

_UNSET = object()


def metrics_enabled() -> bool:
    return REGISTRY.enabled


def configure(*, metrics: Optional[bool] = None,
              tracing: Optional[bool] = None,
              trace_path=_UNSET) -> None:
    """Flip the observability pillars at runtime.

    ``metrics``/``tracing`` enable or disable their pillar (``None``
    leaves it alone); ``trace_path`` repoints the JSONL span sink
    (``None`` closes it).  Call before forking workers when possible so
    children inherit the setting.
    """
    if metrics is not None:
        REGISTRY.enabled = bool(metrics)
    if tracing is not None:
        _trace.set_enabled(bool(tracing))
    if trace_path is not _UNSET:
        set_trace_path(trace_path)
