"""Batched, cached, parallel motif discovery (the engine layer).

:class:`MotifEngine` is the production facade over the serial paper
algorithms in :mod:`repro.core`: it caches ground oracles and results
by content fingerprint, partitions single queries' candidate start
pairs across a process pool with best-so-far sharing, fans corpus
batches out one query per worker, scans top-k chunks against a shared
k-th-best threshold, and shards similarity joins over a tile grid --
with dense ground matrices riding named shared-memory segments
(:mod:`repro.engine.shm`) instead of the pool pipe, and answers
byte-identical to the serial algorithms (see ``tests/test_engine.py``
and ``tests/test_parity_randomized.py``).
"""

from .cache import LRUCache, fingerprint_array, fingerprint_points
from .engine import MatrixMotifResult, MotifEngine, default_engine
from .partition import (
    deal_indices,
    plan_chunks,
    plan_strides,
    plan_tiles,
    slice_bounds,
)
from .shm import (
    SharedArrayRef,
    SharedArrayStore,
    SharedMatrixRef,
    SharedMatrixStore,
    shared_memory_available,
)

__all__ = [
    "LRUCache",
    "MatrixMotifResult",
    "MotifEngine",
    "SharedArrayRef",
    "SharedArrayStore",
    "SharedMatrixRef",
    "SharedMatrixStore",
    "deal_indices",
    "default_engine",
    "fingerprint_array",
    "fingerprint_points",
    "plan_chunks",
    "plan_strides",
    "plan_tiles",
    "shared_memory_available",
    "slice_bounds",
]
