"""Batched, cached, parallel motif discovery (the engine layer).

:class:`MotifEngine` is the production facade over the serial paper
algorithms in :mod:`repro.core`: it caches ground oracles and results
by content fingerprint, partitions single queries' candidate start
pairs across a process pool with best-so-far sharing, and fans corpus
batches out one query per worker -- while returning answers
byte-identical to the serial algorithms (see ``tests/test_engine.py``).
"""

from .cache import LRUCache, fingerprint_array, fingerprint_points
from .engine import MatrixMotifResult, MotifEngine, default_engine
from .partition import deal_indices, plan_chunks, slice_bounds

__all__ = [
    "LRUCache",
    "MatrixMotifResult",
    "MotifEngine",
    "deal_indices",
    "default_engine",
    "fingerprint_array",
    "fingerprint_points",
    "plan_chunks",
    "slice_bounds",
]
