"""Batched, cached, parallel motif discovery (the engine layer).

:class:`MotifEngine` is the production facade over the serial paper
algorithms in :mod:`repro.core`: it caches ground oracles and results
by content fingerprint, partitions single queries' candidate start
pairs across a process pool with best-so-far sharing, fans corpus
batches out one query per worker, scans top-k chunks against a shared
k-th-best threshold, and shards similarity joins over candidate-pair
tiles (optionally pruned by a :class:`repro.index.CorpusIndex`) --
with dense ground matrices, bound tables and corpus transport arrays
riding named shared-memory segments (:mod:`repro.engine.shm`) instead
of the pool pipe, and answers byte-identical to the serial algorithms
(see ``tests/test_engine.py`` and ``tests/test_parity_randomized.py``).

The engine itself is layered (PR 4): :mod:`repro.engine.planner` is
the pure query-planning layer (keys, parallelism decisions, partition
layout), :mod:`repro.engine.oracles` the cache layer
(:class:`OracleManager`), :mod:`repro.engine.executor` the execution
backend (:class:`EngineExecutor`: pools, dispatch, shm publication,
transfer accounting) and :mod:`repro.engine.corpus` the
collection-level workload orchestration; :mod:`repro.engine.engine`
is a thin facade over the four.
"""

from .cache import LRUCache, fingerprint_array, fingerprint_points
from .engine import MatrixMotifResult, MotifEngine, default_engine
from .executor import EngineExecutor, fork_context
from .oracles import OracleManager
from .partition import (
    deal_indices,
    plan_chunks,
    plan_strides,
    plan_tiles,
    slice_bounds,
)
from .shm import (
    SharedArrayRef,
    SharedArrayStore,
    SharedMatrixRef,
    SharedMatrixStore,
    shared_memory_available,
)

__all__ = [
    "EngineExecutor",
    "LRUCache",
    "MatrixMotifResult",
    "MotifEngine",
    "OracleManager",
    "SharedArrayRef",
    "SharedArrayStore",
    "SharedMatrixRef",
    "SharedMatrixStore",
    "deal_indices",
    "default_engine",
    "fingerprint_array",
    "fingerprint_points",
    "fork_context",
    "plan_chunks",
    "plan_strides",
    "plan_tiles",
    "shared_memory_available",
    "slice_bounds",
]
