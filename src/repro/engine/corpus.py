"""Corpus workload orchestration: indexed joins, top-k joins, clustering.

The :class:`~repro.engine.MotifEngine` facade delegates its
collection-level workloads here.  Each workload follows one shape:

1. the **planner** derives the content-addressed result key and the
   candidate layout;
2. the **corpus index** (:class:`repro.index.CorpusIndex`) generates
   the candidate pairs the bounds cannot prove apart (indexed paths),
   or the full tile grid stands in (unindexed paths);
3. the **executor** publishes the index's transport arrays once and
   maps candidate-pair chunks across the pool -- every task carries
   refs plus a ``(start, stride)`` share, so nothing corpus-sized is
   pickled (``transfer_info()``'s ``index_bytes_pickled`` stays 0);
4. the per-chunk answers merge into the canonical serial result
   (matches re-sort to left-major order, cascade statistics fold
   additively, top-k heaps merge under the ``(distance, (a, b))``
   total order).

Indexed answers equal unindexed answers exactly -- the index's bounds
are admissible -- which ``tests/test_parity_randomized.py`` sweeps
across worker counts.
"""

from __future__ import annotations

import copy
import dataclasses
import math
from typing import List, Optional, Tuple

import numpy as np

from .. import obs
from ..core.motif import _as_trajectory
from ..distances.ground import get_metric
from ..errors import ReproError
from ..extensions.join import (
    JoinStats,
    _points_getter,
    join_pairs,
    join_top_k,
    merge_join_stats,
    merge_join_topk,
    scan_join_topk,
    similarity_join,
)
from ..index import CorpusIndex, IndexStats
from . import planner
from . import worker as _worker
from .cache import fingerprint_points, metric_key


def _points_list(items) -> List[np.ndarray]:
    """Raw point arrays of a collection (inline task payloads)."""
    return [
        np.asarray(getattr(t, "points", t), dtype=np.float64) for t in items
    ]


def corpus_index_cache_key(fps: tuple, metric) -> tuple:
    """Tables-cache key of one corpus' :class:`CorpusIndex`.

    Shared with the serving layer: :class:`repro.service.MotifService`
    seeds this exact key with a snapshot-restored index so corpus
    queries against a loaded snapshot never rebuild the summaries.
    """
    return ("cindex", fps, metric_key(metric))


def corpus_index_for(engine, items, metric) -> Tuple[CorpusIndex, tuple]:
    """A (cached) :class:`CorpusIndex` over ``items`` under ``metric``.

    Indexes are pure functions of (content, metric), so they ride the
    engine's tables cache -- a serving workload joining the same
    corpora repeatedly builds the summaries once.
    """
    fps = planner.corpus_fingerprint(items)
    return (
        engine._oracles.tables.get_or_build(
            corpus_index_cache_key(fps, metric),
            lambda: CorpusIndex(items, metric),
        ),
        fps,
    )


def _share_corpus(engine, index: CorpusIndex, fps: tuple):
    """Publish one corpus' transport slabs; None -> ship inline.

    A snapshot-restored index already lives in mapped files, so its
    :class:`~repro.store.SnapshotSlabRef` is handed out directly --
    workers re-map the same files (one page cache host-wide) and the
    parent copies nothing into shared memory.
    """
    ref = getattr(index, "slab_ref", None)
    if ref is not None:
        return ref
    return engine._exec.share_index(
        planner.corpus_slab_key(fps), index.transport_slabs()
    )


def _corpus_payloads(left_ref, right_ref, left_pts, right_pts, self_join):
    """The corpus transport fields of one candidate-pair task."""
    if left_ref is not None and (right_ref is not None or self_join):
        return dict(left_ref=left_ref,
                    right_ref=left_ref if self_join else right_ref)
    return dict(left_points=left_pts,
                right_points=None if self_join else right_pts)


# ----------------------------------------------------------------------
# Similarity join
# ----------------------------------------------------------------------
def run_join(engine, left, right, theta, metric, workers, use_index):
    """Exact DFD similarity join; indexed and/or sharded.

    Unindexed: the PR 2 tile grid over both collections.  Indexed: the
    corpus index generates candidate pairs, the executor deals them
    round-robin into chunks whose tasks carry only refs, and the
    per-chunk cascades fold into statistics identical to the serial
    ``similarity_join(index=True)`` -- for every worker count.
    """
    if theta < 0:  # one validation for both paths, same exception type
        raise ValueError("theta must be non-negative")
    resolved = get_metric(metric)
    mode = planner.normalize_index_mode(use_index)
    key = planner.join_result_key(left, right, resolved, theta, mode)

    def as_answer(out):
        # Copies: a caller mutating the matches list or stats must
        # not poison the cached canonical answer.
        matches, stats = out
        return list(matches), copy.deepcopy(stats)

    cached = engine._oracles.result(key)
    if cached is not None:
        return as_answer(cached)
    if mode and len(left) and len(right):
        out = _indexed_join(engine, left, right, theta, metric, resolved,
                            workers, "tree" if mode == "tree" else "grid")
    else:
        out = _tiled_join(engine, left, right, theta, metric, workers)
    engine._oracles.put_result(key, out)
    return as_answer(out)


def _tiled_join(engine, left, right, theta, metric, workers):
    """The unindexed path: shard the full pair grid into tiles."""
    exec_ = engine._exec
    plan = planner.plan_join(
        len(left), len(right),
        workers=workers,
        chunks_per_worker=exec_.chunks_per_worker,
        can_shard=exec_.can_shard(workers),
    )
    if not plan.sharded:
        return similarity_join(left, right, theta, metric)
    tasks = [
        _worker.JoinTask(
            left=[left[i] for i in left_idx],
            right=[right[i] for i in right_idx],
            theta=theta,
            metric=metric,
            left_offset=int(left_idx[0]),
            right_offset=int(right_idx[0]),
        )
        for left_idx, right_idx in plan.tiles
    ]
    with exec_.scan_lock:  # pool use is engine-wide exclusive
        with obs.span("engine.dispatch", tasks=len(tasks)):
            parts = exec_.map_tasks(tasks, workers, _worker.join_tile)
    matches: List[Tuple[int, int]] = []
    tile_stats = []
    for part_matches, part_stats in parts:
        matches.extend(part_matches)
        tile_stats.append(part_stats)
    matches.sort()  # serial order: left-major, then right
    return matches, merge_join_stats(tile_stats)


def _indexed_join(engine, left, right, theta, metric, resolved, workers,
                  mode="grid"):
    """The indexed path: candidate pairs -> sharded pair cascade.

    ``mode`` picks the candidate generator (flat endpoint grid or the
    hierarchical dual-tree walk); everything downstream of the
    candidate list -- stride dealing, the pair cascade, the merge --
    is mode-independent, which is why tree-mode matches are
    byte-identical to grid-mode matches.
    """
    exec_ = engine._exec
    index_left, fps_left = corpus_index_for(engine, left, resolved)
    index_right, fps_right = corpus_index_for(engine, right, resolved)
    self_join = fps_left == fps_right
    # Candidate sets are pure functions of (corpora, metric, theta,
    # generator mode); serving workloads re-join the same collections,
    # so they ride the tables cache next to the indexes themselves.
    with obs.span("engine.index", mode=mode) as _sp:
        pairs, index_stats = engine._oracles.tables.get_or_build(
            ("cpairs", fps_left, fps_right, metric_key(resolved),
             float(theta), mode),
            lambda: index_left.candidate_pairs(index_right, theta, mode=mode),
        )
        if _sp is not None:
            _sp.attrs["candidates"] = int(len(pairs))
    n_chunks = planner.n_chunks_for(workers, exec_.chunks_per_worker)
    if not exec_.can_shard(workers) or len(pairs) < 2 or n_chunks < 2:
        matches, stats = join_pairs(
            _points_getter(left), _points_getter(right),
            pairs, theta, resolved,
        )
    else:
        with exec_.scan_lock:
            try:
                exec_.shm.begin_batch()
                left_ref = _share_corpus(engine, index_left, fps_left)
                right_ref = (
                    left_ref if self_join
                    else _share_corpus(engine, index_right, fps_right)
                )
                pairs_ref = exec_.share_index(
                    planner.pairs_slab_key(fps_left, fps_right, resolved,
                                           theta, mode),
                    {"pairs": pairs},
                )
                corpus_payload = _corpus_payloads(
                    left_ref, right_ref,
                    _points_list(left), _points_list(right), self_join,
                )
                tasks = [
                    _worker.PairsJoinTask(
                        theta=theta,
                        metric=metric,
                        pairs=None if pairs_ref is not None
                        else pairs[start::stride],
                        pairs_ref=pairs_ref,
                        pair_start=start if pairs_ref is not None else 0,
                        pair_stride=stride if pairs_ref is not None else 1,
                        **corpus_payload,
                    )
                    for start, stride in planner.plan_pair_strides(
                        len(pairs), workers, exec_.chunks_per_worker
                    )
                ]
                with obs.span("engine.dispatch", tasks=len(tasks)):
                    parts = exec_.map_tasks(tasks, workers,
                                            _worker.pairs_join_tile)
            finally:
                exec_.shm.trim()
        matches = []
        tile_stats = []
        for part_matches, part_stats in parts:
            matches.extend(part_matches)
            tile_stats.append(part_stats)
        matches.sort()
        stats = merge_join_stats(tile_stats)
    stats.pairs_total = len(left) * len(right)
    stats.pruned_index = stats.pairs_total - len(pairs)
    stats.details["index"] = index_stats.as_dict()
    return matches, stats


def _shard_offsets(shards) -> List[int]:
    """Global index offset of each shard in a contiguous shard list."""
    offsets = [0]
    for items in shards:
        offsets.append(offsets[-1] + len(items))
    return offsets


def _merge_index_details(parts) -> Optional[dict]:
    """Key-wise sum of per-shard-pair ``IndexStats.as_dict`` payloads.

    Every index counter is additive over a partition of the pair grid,
    so ``summary_builds == 0`` remains the observable all-shards-served
    -from-snapshot signature after the merge.
    """
    merged: Optional[dict] = None
    for part in parts:
        detail = part.details.get("index")
        if detail is None:
            continue
        if merged is None:
            merged = dict(detail)
        else:
            for key, value in detail.items():
                merged[key] = merged.get(key, 0) + value
    return merged


def _shard_block_bound(engine, left, right, resolved) -> float:
    """Admissible DFD lower bound over an entire (left, right) block.

    The root node of each shard's tree aggregates the whole shard, so
    one vectorised root-pair bound plus one representative DP lower
    -bounds every cross-shard trajectory pair -- O(1) per block, built
    from summaries a snapshot-restored shard already carries.
    """
    index_left, _ = corpus_index_for(engine, left, resolved)
    index_right, _ = corpus_index_for(engine, right, resolved)
    left_tree = index_left.ensure_tree()
    right_tree = index_right.ensure_tree()
    root_lb = float(left_tree.pair_lower_bounds(right_tree, [0], [0])[0])
    return max(root_lb, left_tree.rep_pair_bound(right_tree, 0, 0))


def _skipped_block_stats(n_pairs: int) -> JoinStats:
    """The statistics of a shard block pruned before scattering.

    Every pair is accounted as index-pruned (one root-node visit, one
    root-node prune) so the additive merge still covers the full pair
    grid -- and ``summary_builds`` stays 0, preserving the
    snapshot-served signature.
    """
    index_stats = IndexStats(
        pairs_total=n_pairs,
        pruned_grid=n_pairs,
        nodes_visited=1,
        nodes_pruned=1,
    )
    return JoinStats(
        pairs_total=n_pairs,
        pruned_index=n_pairs,
        details={"index": index_stats.as_dict()},
    )


def run_sharded_join(engine, left_shards, right_shards, theta, metric,
                     workers, use_index):
    """Scatter a similarity join across shard pairs; merge exactly.

    Each (left shard, right shard) block runs the ordinary
    :func:`run_join` (riding its per-block result cache), local match
    indices shift by the shards' global offsets, and the union re-sorts
    to the serial left-major order -- the cascade is exact per pair, so
    the merged matches equal the unsharded join's.  Statistics fold
    additively (:func:`merge_join_stats`); index accounting sums
    key-wise so a snapshot-served scatter still reports
    ``summary_builds == 0``.

    In tree mode, provably-far shard *blocks* are skipped before any
    scatter: the shard trees' root-pair bound exceeding ``theta``
    (strictly) proves every cross pair exceeds it too, so the block
    contributes no matches and only O(1) work.  Skips are reported in
    ``details["shards"]["blocks_skipped"]``.
    """
    mode = planner.normalize_index_mode(use_index)
    resolved = get_metric(metric)
    left_offsets = _shard_offsets(left_shards)
    right_offsets = _shard_offsets(right_shards)
    matches: List[Tuple[int, int]] = []
    stat_parts = []
    blocks_skipped = 0
    for i, left in enumerate(left_shards):
        for j, right in enumerate(right_shards):
            if mode == "tree" and len(left) and len(right):
                if _shard_block_bound(engine, left, right, resolved) > theta:
                    blocks_skipped += 1
                    stat_parts.append(
                        _skipped_block_stats(len(left) * len(right))
                    )
                    continue
            part_matches, part_stats = run_join(
                engine, left, right, theta, metric, workers, use_index
            )
            loff, roff = left_offsets[i], right_offsets[j]
            matches.extend((a + loff, b + roff) for a, b in part_matches)
            stat_parts.append(part_stats)
    matches.sort()
    stats = merge_join_stats(stat_parts)
    index_detail = _merge_index_details(stat_parts)
    if index_detail is not None:
        stats.details["index"] = index_detail
    shard_info = {"left": len(left_shards), "right": len(right_shards)}
    if mode == "tree":
        shard_info["blocks_skipped"] = blocks_skipped
    stats.details["shards"] = shard_info
    return matches, stats


def run_sharded_join_top_k(engine, left_shards, right_shards, k, metric,
                           workers, use_index):
    """The k closest pairs across shard blocks, merged canonically.

    Any pair in the global answer ranks within its own block's top k,
    so per-block answers (global-indexed) merge exactly under the
    ``(distance, (a, b))`` total order -- the same
    :func:`merge_join_topk` reducer the PR 2 chunked scan uses, applied
    one level up.

    In tree mode the blocks are visited in ascending root-pair-bound
    order and a block whose bound strictly exceeds the running k-th
    best distance is skipped outright: none of its pairs can displace
    an already-merged entry, and ties at the k-th distance survive
    because only a *strict* excess prunes.
    """
    mode = planner.normalize_index_mode(use_index)
    left_offsets = _shard_offsets(left_shards)
    right_offsets = _shard_offsets(right_shards)
    blocks = [
        (i, j) for i in range(len(left_shards))
        for j in range(len(right_shards))
    ]
    if mode == "tree":
        resolved = get_metric(metric)
        blocks.sort(key=lambda ij: (
            _shard_block_bound(
                engine, left_shards[ij[0]], right_shards[ij[1]], resolved
            ) if len(left_shards[ij[0]]) and len(right_shards[ij[1]])
            else -math.inf,
            ij,
        ))
    parts = []
    merged: List = []
    for i, j in blocks:
        left, right = left_shards[i], right_shards[j]
        if (mode == "tree" and len(left) and len(right)
                and len(merged) >= k
                and _shard_block_bound(engine, left, right, resolved)
                > merged[-1][0]):
            continue
        entries = run_join_top_k(
            engine, left, right, k, metric, workers, use_index
        )
        loff, roff = left_offsets[i], right_offsets[j]
        parts.append([
            (dist, (a + loff, b + roff)) for dist, (a, b) in entries
        ])
        merged = merge_join_topk(parts, k)
    return merged


# ----------------------------------------------------------------------
# Top-k closest pairs
# ----------------------------------------------------------------------
def run_join_top_k(engine, left, right, k, metric, workers, use_index):
    """The ``k`` closest (left, right) pairs by exact DFD, ascending.

    The answer is canonical under ``(distance, (a, b))``, so the
    result cache is shared by every path.  Indexed scans consume the
    pair grid in ascending index-lower-bound order and stop at the
    first bound beyond the evolving k-th best; sharded scans exchange
    the k-th best through the engine's shared threshold and merge
    per-chunk heaps exactly.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    resolved = get_metric(metric)
    key = planner.join_topk_result_key(left, right, resolved, k)
    cached = engine._oracles.result(key)
    if cached is not None:
        return list(cached)
    mode = planner.normalize_index_mode(use_index)
    if mode == "tree" and len(left) and len(right):
        entries = _tree_join_topk(
            engine, left, right, k, metric, resolved, workers
        )
        engine._oracles.put_result(key, entries)
        return list(entries)
    exec_ = engine._exec
    pairs = lbs = None
    use_index = bool(mode) and bool(len(left)) and bool(len(right))
    if use_index:
        index_left, _ = corpus_index_for(engine, left, resolved)
        index_right, _ = corpus_index_for(engine, right, resolved)
        pairs, lbs = index_left.ordered_pairs(index_right)
    n_chunks = planner.n_chunks_for(workers, exec_.chunks_per_worker)
    n_pairs = len(left) * len(right)
    if not exec_.can_shard(workers) or n_pairs < 2 or n_chunks < 2:
        if use_index:
            entries = scan_join_topk(
                _points_getter(left), _points_getter(right),
                pairs, k, resolved, bounds=lbs, ordered=True,
            )
        else:
            entries = join_top_k(left, right, k, resolved)
    else:
        if pairs is None:
            n_right = len(right)
            a_idx, b_idx = np.divmod(
                np.arange(n_pairs, dtype=np.int64), n_right
            )
            pairs = np.stack([a_idx, b_idx], axis=1)
        entries = _sharded_join_topk(
            engine, left, right, pairs, lbs, k, metric, resolved, workers
        )
    entries = list(entries)
    engine._oracles.put_result(key, entries)
    return list(entries)


def _tree_join_topk(engine, left, right, k, metric, resolved, workers):
    """Top-k closest pairs via best-first dual-tree enumeration.

    A head draw from the :class:`TreePairCursor` (a few multiples of
    ``k``, cheapest lower bounds first) seeds a provisional k-th best
    ``kth0``; the cursor then drains only the pairs whose monotone
    bound does not strictly exceed it.  Any pair the cursor withholds
    has ``lb > kth0 >= final k-th distance``, so it cannot appear in
    the answer (ties at the k-th distance carry ``lb <= kth0`` and
    survive) -- the merged heap is byte-identical to the flat scan's.
    The n x n pair grid is never materialised.
    """
    exec_ = engine._exec
    index_left, _ = corpus_index_for(engine, left, resolved)
    index_right, _ = corpus_index_for(engine, right, resolved)
    cursor = index_left.pair_cursor(index_right)
    head_pairs, head_lbs = cursor.take(max(4 * k, 64))
    head_entries = scan_join_topk(
        _points_getter(left), _points_getter(right),
        head_pairs, k, resolved, bounds=head_lbs, ordered=True,
    )
    kth0 = head_entries[k - 1][0] if len(head_entries) >= k else math.inf
    rest_pairs, rest_lbs = cursor.take_within(kth0)
    if not len(rest_pairs):
        return list(head_entries)
    n_chunks = planner.n_chunks_for(workers, exec_.chunks_per_worker)
    if not exec_.can_shard(workers) or len(rest_pairs) < 2 or n_chunks < 2:
        rest_entries = scan_join_topk(
            _points_getter(left), _points_getter(right),
            rest_pairs, k, resolved, bounds=rest_lbs, ordered=True,
            kth0=kth0,
        )
    else:
        rest_entries = _sharded_join_topk(
            engine, left, right, rest_pairs, rest_lbs, k, metric, resolved,
            workers, kth0=kth0, mode=("tree", int(k)),
        )
    return merge_join_topk([list(head_entries), list(rest_entries)], k)


def _sharded_join_topk(engine, left, right, pairs, lbs, k, metric, resolved,
                       workers, *, kth0=math.inf, mode="grid"):
    """Deal the (ordered) pair list into chunks sharing the k-th best."""
    exec_ = engine._exec
    index_left, fps_left = corpus_index_for(engine, left, resolved)
    index_right, fps_right = corpus_index_for(engine, right, resolved)
    self_join = fps_left == fps_right
    with exec_.scan_lock:
        try:
            exec_.shm.begin_batch()
            left_ref = _share_corpus(engine, index_left, fps_left)
            right_ref = (
                left_ref if self_join
                else _share_corpus(engine, index_right, fps_right)
            )
            slabs = {"pairs": pairs}
            if lbs is not None:
                slabs["lbs"] = lbs
            pairs_ref = exec_.share_index(
                planner.topk_pairs_slab_key(
                    fps_left, fps_right, resolved, lbs is not None, mode
                ),
                slabs,
            )
            corpus_payload = _corpus_payloads(
                left_ref, right_ref, _points_list(left), _points_list(right),
                self_join,
            )
            tasks = [
                _worker.JoinTopKChunkTask(
                    k=int(k),
                    metric=metric,
                    seed_kth=float(kth0),
                    pairs=None if pairs_ref is not None
                    else pairs[start::stride],
                    pairs_ref=pairs_ref,
                    pair_start=start if pairs_ref is not None else 0,
                    pair_stride=stride if pairs_ref is not None else 1,
                    pair_lbs=(
                        None if pairs_ref is not None or lbs is None
                        else lbs[start::stride]
                    ),
                    sync_every=exec_.bsf_sync_every,
                    **corpus_payload,
                )
                for start, stride in planner.plan_pair_strides(
                    len(pairs), workers, exec_.chunks_per_worker
                )
            ]

            def inline(tasks):
                # Thread the k-th best between chunks the way the shared
                # value does across processes.
                out = []
                kth_carry = math.inf
                for task in tasks:
                    entries = _worker.join_topk_chunk(
                        dataclasses.replace(
                            task, seed_kth=min(task.seed_kth, kth_carry)
                        )
                    )
                    if len(entries) == task.k:
                        kth_carry = min(kth_carry, entries[-1][0])
                    out.append(entries)
                return out

            parts = exec_.dispatch_chunks(
                tasks, workers, _worker.join_topk_chunk, inline
            )
        finally:
            exec_.shm.trim()
    return merge_join_topk(parts, k)


# ----------------------------------------------------------------------
# Range and k-nearest-neighbour queries
# ----------------------------------------------------------------------
def run_range(engine, query, corpus, radius, metric, use_index):
    """All corpus trajectories within exact DFD ``radius`` of ``query``.

    Returns ``(matches, stats)`` where matches are ``(index,
    distance)`` pairs ascending by corpus index -- byte-identical to
    the brute-force scan whether the tree traversal prunes or not
    (bounds are admissible; only strict excess prunes, so ties at the
    radius survive).  Results are content-addressed the same way joins
    are, so repeated queries replay from the oracle cache.
    """
    if not len(corpus):
        return [], IndexStats()
    resolved = get_metric(metric)
    use_tree = bool(planner.normalize_index_mode(use_index))
    key = planner.range_result_key(query, corpus, resolved, radius, use_tree)
    cached = engine._oracles.result(key)
    if cached is not None:
        matches, stats = cached
        return list(matches), copy.deepcopy(stats)
    index, _ = corpus_index_for(engine, corpus, resolved)
    matches, stats = index.range_scan(query, radius, use_tree=use_tree)
    engine._oracles.put_result(key, (list(matches), copy.deepcopy(stats)))
    return matches, stats


def run_knn(engine, query, corpus, k, metric, use_index):
    """The ``k`` nearest corpus trajectories to ``query`` by exact DFD.

    Returns ``(neighbors, stats)`` with neighbors as ``(distance,
    index)`` ascending -- the canonical order ``sorted()[:k]`` yields,
    ties broken by corpus index, reproduced exactly by the best-first
    tree traversal.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if not len(corpus):
        return [], IndexStats()
    resolved = get_metric(metric)
    use_tree = bool(planner.normalize_index_mode(use_index))
    key = planner.knn_result_key(query, corpus, resolved, k, use_tree)
    cached = engine._oracles.result(key)
    if cached is not None:
        neighbors, stats = cached
        return list(neighbors), copy.deepcopy(stats)
    index, _ = corpus_index_for(engine, corpus, resolved)
    neighbors, stats = index.knn_scan(query, k, use_tree=use_tree)
    engine._oracles.put_result(key, (list(neighbors), copy.deepcopy(stats)))
    return neighbors, stats


# ----------------------------------------------------------------------
# Window clustering
# ----------------------------------------------------------------------
def run_cluster(engine, trajectory, *, window_length, theta, stride,
                min_cluster_size, metric, workers, use_index,
                with_stats=False):
    """Window clustering through the engine's tiled candidate path.

    The serial extension enumerates all O(W^2) non-overlapping window
    pairs in Python; here the same pair list is (optionally) pruned by
    a window-level :class:`CorpusIndex` and cascaded across the pool in
    candidate-pair chunks, with the one trajectory's windows riding a
    single published transport segment.  The surviving edge set is
    identical (the bounds are admissible and the cascade exact), and
    edges union in sorted order -- the exact union-find evolution of
    the serial loop -- so the clusters are too.  ``with_stats`` returns
    ``(clusters, info)`` where ``info`` carries the window counts, the
    index's :meth:`IndexStats.as_dict` accounting and the folded
    cascade statistics (the CLI's ``cluster --stats``).
    """
    from ..extensions.clustering import (
        clusters_from_edges,
        cluster_subtrajectories,
        window_pair_grid,
        window_starts,
    )

    traj = _as_trajectory(trajectory)
    resolved = get_metric(metric, crs=traj.crs)
    exec_ = engine._exec
    if workers < 2 and not use_index and not with_stats:
        return cluster_subtrajectories(
            traj, window_length=window_length, theta=theta, stride=stride,
            min_cluster_size=min_cluster_size, metric=resolved,
        )
    starts = window_starts(traj.n, window_length, stride, theta)
    windows = [traj.points[s:s + window_length] for s in starts]
    pair_grid = window_pair_grid(starts, window_length)
    index_stats = None
    cascade_stats = None

    def answer(clusters, candidates):
        if not with_stats:
            return clusters
        info = {
            "windows": len(starts),
            "pairs_total": int(len(pair_grid)),
            "candidates": int(len(candidates)),
            "index": None if index_stats is None else index_stats.as_dict(),
        }
        if cascade_stats is not None:
            info["cascade"] = {
                "pruned_endpoint": cascade_stats.pruned_endpoint,
                "pruned_bbox": cascade_stats.pruned_bbox,
                "pruned_hausdorff": cascade_stats.pruned_hausdorff,
                "decisions": cascade_stats.decisions,
                "matches": cascade_stats.matches,
            }
        return clusters, info

    if not len(pair_grid):
        # No candidate edges, but singleton components still exist
        # (min_cluster_size=1 reports every window) -- same as serial.
        return answer(
            clusters_from_edges(starts, [], window_length, min_cluster_size),
            [],
        )
    mode = planner.normalize_index_mode(use_index)
    if mode:
        fp = (
            "cwindex", fingerprint_points(traj), int(window_length),
            int(stride), metric_key(resolved),
        )
        windex = engine._oracles.tables.get_or_build(
            fp, lambda: CorpusIndex(windows, resolved)
        )
        candidates, index_stats = windex.candidate_pairs(
            None, theta, pairs=pair_grid,
            mode="tree" if mode == "tree" else "grid",
        )
    else:
        windex = CorpusIndex(windows, resolved)
        candidates = pair_grid
    n_chunks = planner.n_chunks_for(workers, exec_.chunks_per_worker)
    if not exec_.can_shard(workers) or len(candidates) < 2 or n_chunks < 2:
        edges, cascade_stats = join_pairs(
            _points_getter(windows), _points_getter(windows),
            candidates, theta, resolved,
        )
    else:
        fps = ("windows", fingerprint_points(traj), int(window_length),
               int(stride))
        with exec_.scan_lock:
            try:
                exec_.shm.begin_batch()
                corpus_ref = exec_.share_index(
                    planner.corpus_slab_key(fps), windex.transport_slabs()
                )
                pairs_ref = exec_.share_index(
                    planner.pairs_slab_key(fps + (mode,),
                                           fps, resolved, theta),
                    {"pairs": candidates},
                )
                tasks = [
                    _worker.PairsJoinTask(
                        theta=theta,
                        metric=resolved,
                        pairs=None if pairs_ref is not None
                        else candidates[start::stride_],
                        pairs_ref=pairs_ref,
                        pair_start=start if pairs_ref is not None else 0,
                        pair_stride=stride_ if pairs_ref is not None else 1,
                        left_points=None if corpus_ref is not None
                        else windows,
                        left_ref=corpus_ref,
                    )
                    for start, stride_ in planner.plan_pair_strides(
                        len(candidates), workers, exec_.chunks_per_worker
                    )
                ]
                with obs.span("engine.dispatch", tasks=len(tasks)):
                    parts = exec_.map_tasks(tasks, workers,
                                            _worker.pairs_join_tile)
            finally:
                exec_.shm.trim()
        edges = []
        tile_stats = []
        for part_matches, part_stats in parts:
            edges.extend(part_matches)
            tile_stats.append(part_stats)
        cascade_stats = merge_join_stats(tile_stats)
    edges.sort()  # serial discovery order -> identical union-find state
    return answer(
        clusters_from_edges(starts, edges, window_length, min_cluster_size),
        candidates,
    )


# ----------------------------------------------------------------------
# Corpus batches (discover_many transport + warm oracles)
# ----------------------------------------------------------------------
def warm_refs_for(engine, pending, parsed, metric, algorithm, options):
    """Shared ``dG`` handles for a batch of corpus queries.

    A query rides the warm path only when that is genuinely cheaper
    than letting its worker build the oracle itself:

    * its dense oracle is *already* in the parent's cache (the serving
      case -- prior discover/top-k/join calls paid for it), or
    * the same trajectory (pair) appears more than once among the
      pending queries, so one parent-side build amortises across
      workers -- but never for lazy-oracle algorithms (GTM*), whose
      O(n)-space contract a forced dense O(n^2) build would break.

    Cold unique queries return ``None`` and keep the old behavior
    (each worker computes its own ``dG`` concurrently), so a cold
    corpus sweep is never serialised behind the parent.
    """
    from collections import Counter

    from ..core.motif import _make_algorithm
    from ..core.gtm_star import GTMStar

    if not engine._exec.use_shared_memory():
        return [None] * len(pending)
    probe = algorithm
    if isinstance(algorithm, str):
        probe = _make_algorithm(algorithm, **options)
    lazy = isinstance(probe, GTMStar)
    keys = []
    for idx in pending:
        traj_a, traj_b = parsed[idx]
        resolved = get_metric(metric, crs=traj_a.crs)
        keys.append(planner.dense_oracle_key(traj_a, traj_b, resolved))
    counts = Counter(keys)
    refs = []
    built: dict = {}
    for idx, key in zip(pending, keys):
        dense = engine._oracles.oracles.get(key) or built.get(key)
        if dense is None:
            if lazy or counts[key] < 2:
                refs.append(None)
                continue
            traj_a, traj_b = parsed[idx]
            resolved = get_metric(metric, crs=traj_a.crs)
            dense, key = engine._oracles.dense_oracle(traj_a, traj_b, resolved)
            built[key] = dense
        refs.append(engine._exec.share_dense(key, dense))
    return refs


def batch_transport(engine, pending, parsed):
    """Publish a batch's trajectories once; per-query transport specs.

    Returns ``(corpus_ref, specs)`` where ``specs[i]`` is the
    ``(a_spec, b_spec)`` pair of ``pending[i]`` -- or ``(None, None)``
    when shared memory is unavailable and tasks must carry the
    trajectories inline (today's path).
    """
    inline = (None, [(None, None)] * len(pending))
    if not engine._exec.use_shared_memory():
        return inline
    items: List = []
    specs = []
    for idx in pending:
        traj_a, traj_b = parsed[idx]
        a_spec = (len(items), traj_a.crs, traj_a.trajectory_id)
        items.append(traj_a)
        b_spec = None
        if traj_b is not None:
            b_spec = (len(items), traj_b.crs, traj_b.trajectory_id)
            items.append(traj_b)
        specs.append((a_spec, b_spec))
    try:
        # Transport is best-effort: a batch the index cannot hold as
        # one corpus (e.g. mixed dimensionality -- every query is
        # independent, so that is a legal batch) ships inline instead.
        index = CorpusIndex(items, "euclidean")
    except ReproError:
        return inline
    ref = engine._exec.share_index(
        planner.corpus_slab_key(planner.corpus_fingerprint(items)),
        index.transport_slabs(),
    )
    if ref is None:
        return inline
    return ref, specs
