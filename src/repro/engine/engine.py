"""The :class:`MotifEngine` facade: cached, batched, parallel discovery.

The serial algorithms in :mod:`repro.core` answer one query on one
trajectory.  Production workloads look different: the same trajectories
are queried repeatedly (serving), many trajectories are queried at once
(corpus analytics), and multi-core hosts sit idle while a single
best-first loop runs.  The engine closes that gap with three layers:

1. **Caching** -- ground matrices, lazy oracles, bound tables and whole
   results are cached by content fingerprint (:mod:`repro.engine.cache`),
   so repeated discover/top-k/join calls stop recomputing ``dG``.
2. **Partitioned search** -- for one query with ``workers > 1``, the
   candidate start pairs are dealt round-robin from the bound-sorted
   order into chunks (:mod:`repro.engine.partition`) and scanned across
   a process pool with best-so-far sharing (:mod:`repro.engine.worker`).
   The scan establishes the exact motif distance ``d*``; a serial
   *witness-resolution* re-run seeded with ``d*`` (maximal pruning, so
   it expands only the irreducible ``lb <= d*`` frontier) then returns
   the serial algorithm's exact witness -- identical indices and
   distance, even under ties.  Parity is enforced by
   ``tests/test_engine.py``.
3. **Batched APIs** -- :meth:`MotifEngine.discover_many` runs whole
   queries in parallel workers (embarrassingly parallel, each worker
   executing the unmodified serial code) and deduplicates identical
   queries within a batch.

The engine is exact by construction: every answer either comes from the
serial algorithm directly or from a resolution pass of that same serial
algorithm seeded with a proven threshold.
"""

from __future__ import annotations

import copy
import math
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from typing import List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.bounds import BoundTables, relaxed_subset_bounds
from ..core.brute import MotifTimeout
from ..core.gtm_star import GTMStar
from ..core.motif import MotifResult, _as_trajectory, _make_algorithm
from ..core.problem import SearchSpace, cross_space, self_space
from ..core.stats import PhaseTimer, SearchStats
from ..distances.ground import (
    DenseGroundMatrix,
    GroundMetric,
    LazyGroundMatrix,
    get_metric,
)
from ..errors import ReproError
from ..trajectory import Trajectory
from .cache import LRUCache, fingerprint_array, fingerprint_points, metric_key
from .partition import plan_chunks
from . import worker as _worker


class MatrixMotifResult(NamedTuple):
    """Answer of a matrix-level query (no trajectory views to build)."""

    distance: float
    indices: Tuple[int, int, int, int]
    stats: SearchStats


def _fork_context():
    import multiprocessing as mp

    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


class MotifEngine:
    """Batched, cached, parallel motif discovery facade.

    Parameters
    ----------
    workers:
        Default worker count.  ``1`` runs everything serially in
        process; ``> 1`` partitions single queries across a process
        pool and fans corpus batches out one query per worker.
    algorithm:
        Default algorithm (name or instance) when a call does not pick
        one; ``"gtm_star"`` mirrors the paper's recommendation for
        large inputs.
    oracle_cache_size / tables_cache_size / result_cache_size:
        LRU capacities (entries) of the ground-oracle, bound-table and
        result caches; ``0`` disables the respective cache.
    chunks_per_worker:
        Chunks dealt per worker for partitioned single-query search.
        More chunks mean more best-so-far synchronisation points at
        slightly more scheduling overhead.
    executor:
        ``"process"`` (default) uses a fork-context process pool;
        ``"inline"`` runs chunk tasks sequentially in-process, which
        exercises the exact same partition/resolution machinery
        deterministically (used by tests and as the automatic fallback
        where fork is unavailable).
    """

    def __init__(
        self,
        workers: int = 1,
        algorithm: Union[str, object] = "gtm_star",
        *,
        oracle_cache_size: int = 64,
        tables_cache_size: int = 64,
        result_cache_size: int = 256,
        chunks_per_worker: int = 3,
        executor: str = "process",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be at least 1")
        if executor not in ("process", "inline"):
            raise ValueError("executor must be 'process' or 'inline'")
        self.workers = int(workers)
        self.algorithm = algorithm
        self.chunks_per_worker = int(chunks_per_worker)
        self.executor = executor
        self._oracles = LRUCache(oracle_cache_size)
        self._tables = LRUCache(tables_cache_size)
        self._results = LRUCache(result_cache_size)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0
        self._shared_bsf = None
        # The shared best-so-far Value is engine-wide; serialise the
        # chunked-scan sections so two threads sharing one engine
        # cannot cross-contaminate each other's thresholds.
        self._scan_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def discover(
        self,
        trajectory: Union[Trajectory, np.ndarray],
        second: Optional[Union[Trajectory, np.ndarray]] = None,
        *,
        min_length: int,
        algorithm: Union[str, object, None] = None,
        metric: Union[str, GroundMetric, None] = None,
        workers: Optional[int] = None,
        seed: Optional[Tuple[float, Optional[Tuple[int, int, int, int]]]] = None,
        cacheable: bool = True,
        **algorithm_options,
    ) -> MotifResult:
        """Discover the motif of one trajectory (or a cross pair).

        Identical in semantics to :func:`repro.core.discover_motif`;
        adds oracle/result caching, ``workers`` (partitioned search)
        and ``seed`` (an external ``(bsf, best)`` warm start, e.g. from
        streaming maintenance -- forces the serial path).
        """
        traj_a = _as_trajectory(trajectory)
        traj_b = None if second is None else _as_trajectory(second)
        resolved_metric = get_metric(metric, crs=traj_a.crs)
        workers = self.workers if workers is None else max(1, int(workers))
        algorithm = self.algorithm if algorithm is None else algorithm

        result_key = None
        if cacheable and seed is None and isinstance(algorithm, str):
            result_key = (
                "discover",
                fingerprint_points(traj_a),
                None if traj_b is None else fingerprint_points(traj_b),
                metric_key(resolved_metric),
                int(min_length),
                algorithm.lower(),
                tuple(sorted(algorithm_options.items())),
            )
            cached = self._results.get(result_key)
            if cached is not None:
                return cached

        if traj_b is None:
            space = self_space(traj_a.n, min_length)
        else:
            space = cross_space(traj_a.n, traj_b.n, min_length)

        distance, best, stats = self._search(
            space,
            algorithm,
            algorithm_options,
            traj_a=traj_a,
            traj_b=traj_b,
            metric=resolved_metric,
            workers=workers,
            seed=seed,
        )
        i, ie, j, je = best
        result = MotifResult(
            traj_a.subtrajectory(i, ie),
            (traj_a if traj_b is None else traj_b).subtrajectory(j, je),
            float(distance),
            stats,
        )
        if result_key is not None:
            self._results.put(result_key, result)
        return result

    def discover_matrix(
        self,
        matrix: np.ndarray,
        *,
        min_length: int,
        algorithm: Union[str, object, None] = None,
        workers: Optional[int] = None,
        mode: str = "self",
        **algorithm_options,
    ) -> MatrixMotifResult:
        """Search a precomputed ground matrix (paper-style ``dG``).

        Used for parity testing against hand-decoded matrices (the
        paper's Figure 5) and for workloads that own their distance
        computation.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        workers = self.workers if workers is None else max(1, int(workers))
        algorithm = self.algorithm if algorithm is None else algorithm
        n_rows, n_cols = matrix.shape
        if mode == "self":
            space = self_space(n_rows, min_length)
            if n_rows != n_cols:
                raise ReproError("self-mode matrix must be square")
        else:
            space = cross_space(n_rows, n_cols, min_length)
        distance, best, stats = self._search(
            space,
            algorithm,
            algorithm_options,
            matrix=matrix,
            workers=workers,
        )
        return MatrixMotifResult(float(distance), best, stats)

    def discover_many(
        self,
        items: Sequence,
        *,
        min_length: int,
        algorithm: Union[str, object, None] = None,
        metric: Union[str, GroundMetric, None] = None,
        workers: Optional[int] = None,
        dedupe: bool = True,
        **algorithm_options,
    ) -> List[MotifResult]:
        """Discover motifs for a corpus of queries, in order.

        Each item is a trajectory (self mode) or an ``(a, b)`` pair
        (cross mode).  With ``workers > 1`` whole queries run in
        parallel worker processes, each executing the unmodified serial
        algorithm -- results are byte-identical to a serial loop.
        Identical queries within the batch are searched once
        (``dedupe``), and the result cache is consulted per query.
        """
        workers = self.workers if workers is None else max(1, int(workers))
        algorithm = self.algorithm if algorithm is None else algorithm
        parsed = [self._parse_item(item) for item in items]

        # Resolve each query to its result-cache key (content
        # fingerprints), shared with discover() so a batch both
        # consults and warms the serving cache.
        keys: List[Optional[tuple]] = []
        for traj_a, traj_b in parsed:
            if dedupe and isinstance(algorithm, str):
                resolved = get_metric(metric, crs=traj_a.crs)
                keys.append((
                    "discover",
                    fingerprint_points(traj_a),
                    None if traj_b is None else fingerprint_points(traj_b),
                    metric_key(resolved),
                    int(min_length),
                    algorithm.lower(),
                    tuple(sorted(algorithm_options.items())),
                ))
            else:
                keys.append(None)

        results: List[Optional[MotifResult]] = [None] * len(parsed)
        first_of: dict = {}
        duplicates: List[Tuple[int, int]] = []  # (index, canonical index)
        pending: List[int] = []
        for idx, key in enumerate(keys):
            if key is not None:
                cached = self._results.get(key)
                if cached is not None:
                    results[idx] = cached
                    continue
                if key in first_of:
                    duplicates.append((idx, first_of[key]))
                    continue
                first_of[key] = idx
            pending.append(idx)

        run_parallel = (
            workers > 1
            and self.executor == "process"
            and len(pending) > 1
            and _fork_context() is not None
        )
        if run_parallel:
            tasks = [
                _worker.QueryTask(
                    trajectory=parsed[idx][0],
                    second=parsed[idx][1],
                    min_length=int(min_length),
                    algorithm=algorithm,
                    metric=metric,
                    options=tuple(sorted(algorithm_options.items())),
                )
                for idx in pending
            ]
            with self._scan_lock:  # pool use is engine-wide exclusive
                pool = self._get_pool(workers)
                for idx, result in zip(
                    pending, pool.map(_worker.run_query, tasks)
                ):
                    results[idx] = result
                    if keys[idx] is not None:
                        self._results.put(keys[idx], result)
        else:
            for idx in pending:
                traj_a, traj_b = parsed[idx]
                results[idx] = self.discover(
                    traj_a,
                    traj_b,
                    min_length=min_length,
                    algorithm=algorithm,
                    metric=metric,
                    workers=workers,
                    **algorithm_options,
                )
        for idx, canonical in duplicates:
            results[idx] = results[canonical]
        return results  # type: ignore[return-value]

    def top_k(
        self,
        trajectory: Union[Trajectory, np.ndarray],
        second: Optional[Union[Trajectory, np.ndarray]] = None,
        *,
        min_length: int,
        k: int = 5,
        metric: Union[str, GroundMetric, None] = None,
    ):
        """Top-k subset-distinct motifs through the shared oracle cache."""
        from ..extensions.topk import top_k_from_oracle

        traj_a = _as_trajectory(trajectory)
        traj_b = None if second is None else _as_trajectory(second)
        resolved = get_metric(metric, crs=traj_a.crs)
        key = (
            "topk",
            fingerprint_points(traj_a),
            None if traj_b is None else fingerprint_points(traj_b),
            metric_key(resolved),
            int(min_length),
            int(k),
        )
        cached = self._results.get(key)
        if cached is not None:
            return cached
        space = (
            self_space(traj_a.n, min_length)
            if traj_b is None
            else cross_space(traj_a.n, traj_b.n, min_length)
        )
        oracle, _ = self._dense_oracle(traj_a, traj_b, resolved)
        stats = SearchStats(algorithm="topk", mode=space.mode, xi=space.xi)
        ranked = top_k_from_oracle(traj_a, traj_b, space, oracle, k, stats)
        self._results.put(key, ranked)
        return ranked

    def join(
        self,
        left: Sequence,
        right: Sequence,
        theta: float,
        metric: Union[str, GroundMetric] = "euclidean",
        workers: Optional[int] = None,
    ):
        """DFD similarity join, chunking the left collection over workers."""
        from ..extensions.join import merge_join_stats, similarity_join

        workers = self.workers if workers is None else max(1, int(workers))
        n_chunks = min(workers, len(left)) if len(left) else 1
        if (
            workers == 1
            or n_chunks < 2
            or self.executor != "process"
            or _fork_context() is None
        ):
            return similarity_join(left, right, theta, metric)
        splits = np.array_split(np.arange(len(left)), n_chunks)
        tasks = [
            _worker.JoinTask(
                left=[left[i] for i in part],
                right=right,
                theta=theta,
                metric=metric,
                offset=int(part[0]),
            )
            for part in splits
            if len(part)
        ]
        matches: List[Tuple[int, int]] = []
        chunk_stats = []
        with self._scan_lock:  # pool use is engine-wide exclusive
            pool = self._get_pool(workers)
            for part_matches, part_stats in pool.map(_worker.join_chunk, tasks):
                matches.extend(part_matches)
                chunk_stats.append(part_stats)
        return matches, merge_join_stats(chunk_stats)

    def cluster(self, trajectory, **kwargs):
        """Subtrajectory clustering (delegates to the extension)."""
        from ..extensions.clustering import cluster_subtrajectories

        return cluster_subtrajectories(trajectory, **kwargs)

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def cache_info(self) -> dict:
        """Hit/miss/size accounting of the three engine caches."""
        return {
            "oracle": self._oracles.info(),
            "tables": self._tables.info(),
            "results": self._results.info(),
        }

    def clear_caches(self) -> None:
        self._oracles.clear()
        self._tables.clear()
        self._results.clear()

    def close(self) -> None:
        """Shut the worker pool down (caches stay usable)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_workers = 0

    def __enter__(self) -> "MotifEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Search orchestration
    # ------------------------------------------------------------------
    def _search(
        self,
        space: SearchSpace,
        algorithm,
        options: dict,
        *,
        traj_a: Optional[Trajectory] = None,
        traj_b: Optional[Trajectory] = None,
        metric: Optional[GroundMetric] = None,
        matrix: Optional[np.ndarray] = None,
        workers: int = 1,
        seed: Optional[tuple] = None,
    ):
        """Common core of discover()/discover_matrix().

        Returns ``(distance, best, stats)``.  The parallel path runs
        the chunked distance scan, then always defers to the seeded
        serial algorithm for the witness (exactness + parity).
        """
        algo = _make_algorithm(algorithm, **options)
        stats = SearchStats(
            mode=space.mode, n_rows=space.n_rows, n_cols=space.n_cols, xi=space.xi
        )
        started = time.perf_counter()
        # The chunked scan proves an *exact* threshold; seeding an
        # approximate search with it would change its semantics, so
        # approximate variants stay on the serial path.
        parallel = (
            workers > 1
            and seed is None
            and float(getattr(algo, "approx_factor", 1.0)) == 1.0
        )

        d_star = math.inf
        if parallel:
            dense, okey = (
                self._dense_oracle(traj_a, traj_b, metric)
                if matrix is None
                else self._matrix_oracle(matrix)
            )
            d_star = self._chunked_distance(
                dense, okey, space, algo, stats, workers, started
            )
            # `timeout` is one whole-query budget: the chunks shared an
            # absolute deadline anchored at `started`; hand the
            # resolution pass only what remains (a shallow copy keeps a
            # caller-owned algorithm instance untouched).
            budget = getattr(algo, "timeout", None)
            if budget is not None:
                remaining = float(budget) - (time.perf_counter() - started)
                if remaining <= 0:
                    raise MotifTimeout(
                        f"engine search exceeded {budget:.1f}s "
                        "during the chunk scan"
                    )
                algo = copy.copy(algo)
                algo.timeout = remaining

        with PhaseTimer(stats, "time_precompute"):
            oracle = self._serial_oracle(algo, traj_a, traj_b, metric, matrix)
        bsf0, best0 = (math.inf, None) if seed is None else seed
        if d_star < bsf0:
            bsf0, best0 = d_star, None
        distance, best = algo.search(oracle, space, stats, bsf0=bsf0, best0=best0)
        stats.time_total = time.perf_counter() - started
        if best is None:
            raise ReproError(
                "search finished without a witness pair; this indicates a bug"
            )
        if parallel:
            stats.algorithm = f"engine[{stats.algorithm} x{workers}]"
        return float(distance), best, stats

    def _chunked_distance(
        self,
        dense: DenseGroundMatrix,
        okey,
        space: SearchSpace,
        algo,
        stats,
        workers,
        started_at: float,
    ) -> float:
        """Exact motif distance via the partitioned chunk scan.

        Every chunk shares one absolute deadline (``started_at`` +
        the algorithm's timeout), so a timed-out query never exceeds
        its budget chunk-by-chunk.  The scan's work is recorded in the
        dedicated ``scan_*`` stats fields; the serial counters stay
        reserved for the resolution pass so the paper-figure
        accounting is not double-counted.
        """
        tables = self._bound_tables(okey, space, dense)
        bounds = relaxed_subset_bounds(space, dense, tables)
        chunks = plan_chunks(bounds, workers * self.chunks_per_worker)
        timeout = getattr(algo, "timeout", None)
        tasks = [
            _worker.ChunkTask(
                matrix=dense.array,
                space=space,
                bounds=chunk,
                cmin=tables.cmin,
                rmin=tables.rmin,
                timeout=timeout,
                started_at=started_at,
            )
            for chunk in chunks
        ]
        results = self._run_chunks(tasks, workers)
        d_star = math.inf
        for res in results:
            d_star = min(d_star, res.bsf)
            stats.scan_subsets_expanded += res.subsets_expanded
            stats.scan_cells_expanded += res.cells_expanded
        return d_star

    def _run_chunks(self, tasks, workers) -> List[_worker.ChunkResult]:
        """Execute chunk tasks on the pool, inline on fallback.

        Inline execution still threads the best-so-far between chunks
        (sequentially), so it exercises identical pruning semantics.
        """
        ctx = _fork_context()
        if self.executor == "process" and ctx is not None:
            try:
                with self._scan_lock:
                    pool = self._get_pool(workers)
                    with self._shared_bsf.get_lock():
                        self._shared_bsf.value = math.inf
                    return list(pool.map(_worker.scan_chunk, tasks))
            except OSError:  # pragma: no cover - fork/pipe failure
                self.close()
        best_so_far = math.inf
        out = []
        for task in tasks:
            res = _worker.scan_chunk(
                _worker.ChunkTask(
                    matrix=task.matrix,
                    space=task.space,
                    bounds=task.bounds,
                    cmin=task.cmin,
                    rmin=task.rmin,
                    timeout=task.timeout,
                    started_at=task.started_at,
                    seed_bsf=best_so_far,
                )
            )
            best_so_far = min(best_so_far, res.bsf)
            out.append(res)
        return out

    def _get_pool(self, workers: int) -> ProcessPoolExecutor:
        ctx = _fork_context()
        if ctx is None:
            raise ReproError("process executor requires a fork-capable platform")
        if self._pool is not None and self._pool_workers != workers:
            self.close()
        if self._pool is None:
            self._shared_bsf = ctx.Value("d", math.inf)
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=ctx,
                initializer=_worker.init_worker,
                initargs=(self._shared_bsf,),
            )
            self._pool_workers = workers
        return self._pool

    # ------------------------------------------------------------------
    # Oracles and tables
    # ------------------------------------------------------------------
    def _dense_oracle(self, traj_a, traj_b, metric):
        """Cached dense ground matrix for a trajectory (pair)."""
        fp_a = fingerprint_points(traj_a)
        fp_b = None if traj_b is None else fingerprint_points(traj_b)
        key = ("dense", fp_a, fp_b, metric_key(metric))

        def build():
            points_b = traj_a.points if traj_b is None else traj_b.points
            return DenseGroundMatrix(metric.pairwise(traj_a.points, points_b))

        return self._oracles.get_or_build(key, build), key

    def _matrix_oracle(self, matrix: np.ndarray):
        key = ("matrix", fingerprint_array(matrix))
        return self._oracles.get_or_build(
            key, lambda: DenseGroundMatrix(matrix)
        ), key

    def _lazy_oracle(self, traj_a, traj_b, metric, cache_rows: int):
        key = (
            "lazy",
            fingerprint_points(traj_a),
            None if traj_b is None else fingerprint_points(traj_b),
            metric_key(metric),
            int(cache_rows),
        )

        def build():
            return LazyGroundMatrix(
                traj_a.points,
                None if traj_b is None else traj_b.points,
                metric=metric,
                cache_rows=cache_rows,
            )

        return self._oracles.get_or_build(key, build)

    def _serial_oracle(self, algo, traj_a, traj_b, metric, matrix):
        """The oracle the plain serial path would build (parity).

        Mirrors :func:`repro.core.motif._build_oracle`: GTM* gets the
        lazy row oracle, everything else the dense matrix.
        """
        if matrix is not None:
            oracle, _ = self._matrix_oracle(matrix)
            return oracle
        if isinstance(algo, GTMStar):
            return self._lazy_oracle(traj_a, traj_b, metric, algo.cache_rows)
        oracle, _ = self._dense_oracle(traj_a, traj_b, metric)
        return oracle

    def _bound_tables(self, okey, space: SearchSpace, dense) -> BoundTables:
        key = ("tables", okey, space.mode, space.xi)
        return self._tables.get_or_build(
            key, lambda: BoundTables.build(space, dense)
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _parse_item(item):
        """One discover_many item -> (traj_a, traj_b or None)."""
        if isinstance(item, tuple) and len(item) == 2:
            return _as_trajectory(item[0]), _as_trajectory(item[1])
        return _as_trajectory(item), None


#: Process-wide shared engine (lazy); used by the CLI and extensions.
_DEFAULT_ENGINE: Optional[MotifEngine] = None


def default_engine() -> MotifEngine:
    """The process-wide shared :class:`MotifEngine` (workers=1)."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = MotifEngine()
    return _DEFAULT_ENGINE
